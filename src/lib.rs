//! # sime-placement
//!
//! A Rust reproduction of *"Evaluating Parallel Simulated Evolution
//! Strategies for VLSI Cell Placement"* (Sait, Ali & Zaidi, IPDPS 2006).
//!
//! This facade crate re-exports the whole workspace so that applications can
//! depend on a single crate:
//!
//! * [`netlist`] — circuit model, synthetic ISCAS-89-like benchmark suite,
//!   text netlist format ([`vlsi_netlist`]),
//! * [`place`] — row-based placement, multiobjective cost functions and the
//!   fuzzy quality measure µ(s) ([`vlsi_place`]),
//! * [`sime`] — the serial Simulated Evolution engine ([`sime_core`]),
//! * [`cluster`] — the simulated message-passing cluster ([`cluster_sim`]),
//! * [`parallel`] — the Type I / II / III parallel strategies
//!   ([`sime_parallel`]),
//! * [`baselines`] — SA / GA / TS comparison placers ([`metaheuristics`]).
//!
//! ## Quickstart
//!
//! ```
//! use sime_placement::prelude::*;
//! use std::sync::Arc;
//!
//! // A small synthetic circuit (the named paper circuits are also available
//! // through `paper_circuit(PaperCircuit::S1196)` etc.).
//! let netlist = Arc::new(
//!     CircuitGenerator::new(GeneratorConfig::sized("quick", 120, 1)).generate(),
//! );
//!
//! // Serial SimE with the paper's default operators, 20 iterations.
//! let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, 8, 20);
//! let engine = SimEEngine::new(netlist, config);
//! let result = engine.run();
//! assert!(result.best_mu() > 0.0 && result.best_mu() <= 1.0);
//! ```

#![warn(missing_docs)]

pub use cluster_sim as cluster;
pub use metaheuristics as baselines;
pub use sime_core as sime;
pub use sime_parallel as parallel;
pub use vlsi_netlist as netlist;
pub use vlsi_place as place;

/// One-stop prelude bringing the most frequently used types of every
/// sub-crate into scope.
pub mod prelude {
    pub use cluster_sim::prelude::*;
    pub use metaheuristics::prelude::*;
    pub use sime_core::prelude::*;
    pub use sime_parallel::prelude::*;
    pub use vlsi_netlist::prelude::*;
    pub use vlsi_place::prelude::*;
}
