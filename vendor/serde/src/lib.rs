//! Vendored facade over the workspace's no-op serde derive shims.
//!
//! `use serde::{Serialize, Deserialize}` resolves to the derive macros from
//! the sibling `serde_derive` shim (enabled through the `derive` feature,
//! matching the real crate's feature name). The derives expand to nothing —
//! see `vendor/serde_derive` for the rationale.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
