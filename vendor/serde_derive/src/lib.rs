//! Vendored no-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives serde traits on its config and report types so that
//! downstream users of the real `serde` can persist them, but no code inside
//! this repository serialises anything yet. Because the build environment has
//! no crates.io access, these derives expand to nothing: the types still
//! compile and behave identically, and swapping in the real `serde` later is
//! a Cargo.toml-only change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
