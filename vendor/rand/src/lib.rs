//! Vendored, API-compatible subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate, providing exactly the surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small shim instead of the real crate. The subset covers:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `gen_ratio`,
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64`,
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The algorithms are straightforward and deterministic but are **not**
//! bit-compatible with the upstream crate; within this workspace all
//! randomness flows through these implementations, so results remain
//! reproducible run-to-run and machine-to-machine.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniformly distributed raw words.
pub trait RngCore {
    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled from the "standard" distribution by
/// [`Rng::gen`]: uniform over all values for integers and `bool`, uniform in
/// `[0, 1)` for floats.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $next:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              u64 => next_u64, usize => next_u64,
              i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// Types with a uniform sampler over a finite range, used by
/// [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply method with
/// rejection, so small bounds carry no modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain request: a raw draw is already uniform.
                    return <$t as StandardSample>::sample_standard(rng);
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty => $sample:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

uniform_float!(f32 => f32, f64 => f64);

/// Range argument accepted by [`Rng::gen_range`]: `lo..hi` or `lo..=hi`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (see [`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as StandardSample>::sample_standard(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator > denominator"
        );
        uniform_u64_below(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for every generator in this
    /// workspace).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// same way for every generator so seeds stay portable across types.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood) — a solid seed expander.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the sequence.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// A tiny deterministic generator for exercising the trait plumbing.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(2..=8u32);
            assert!((2..=8).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = XorShift(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShift(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut rng = XorShift(9);
        assert!((0..100).all(|_| rng.gen_ratio(5, 5)));
        assert!((0..100).all(|_| !rng.gen_ratio(0, 5)));
    }
}
