//! Vendored ChaCha-based random number generators, mirroring the subset of
//! the [`rand_chacha`](https://docs.rs/rand_chacha/0.3) crate this workspace
//! uses: [`ChaCha8Rng`] (plus the 12- and 20-round variants) implementing the
//! workspace [`rand::RngCore`] and [`rand::SeedableRng`] traits.
//!
//! This is a real ChaCha keystream generator (D. J. Bernstein's block
//! function with a 64-bit block counter), so the statistical quality matches
//! the upstream crate even though the word-for-word output stream is not
//! guaranteed to be bit-identical to it. All randomness in this workspace
//! flows through this implementation, so experiments stay reproducible.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// One ChaCha quarter round on the 16-word state.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha keystream generator with a compile-time round count.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Stream/nonce words (state words 14..16).
    stream: [u32; 2],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 means "exhausted".
    index: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    /// Generates the next output block into `self.block`.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream[0];
        state[15] = self.stream[1];

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            stream: [0, 0],
            block: [0; 16],
            index: 16,
        }
    }
}

/// ChaCha with 8 rounds — the fast variant used throughout this workspace.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds (the original cipher's round count).
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn chacha20_known_block_structure() {
        // With an all-zero key the first block must still be non-degenerate.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let words: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert!(words.iter().any(|&w| w != 0));
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(
            sorted.len() > 12,
            "block words should be almost all distinct"
        );
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should cover both tails");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..21 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
