//! Vendored mini property-testing harness exposing the subset of the
//! [`proptest`](https://docs.rs/proptest/1) surface this workspace uses:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`, with
//!   an optional `#![proptest_config(...)]` header),
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//!   and strategy tuples,
//! * [`prelude::any`] for integers/bools, [`collection::vec()`], [`bool::ANY`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Compared to the real crate there is **no shrinking**, but a failing case
//! is still actionable: the runner re-derives the case's RNG stream, prints
//! the case index, the seed and the `Debug` rendering of every generated
//! argument (truncated past [`MAX_INPUT_DEBUG_LEN`] bytes), then resumes the
//! panic. Cases are generated from a ChaCha8 stream seeded from the test
//! name, so failures are deterministic and reproducible.

/// Test-runner configuration (the `ProptestConfig` of the real crate).
pub mod test_runner {
    /// Number of cases to run per property, plus room for future knobs.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// How many random cases each property executes.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Strategies: how to generate values for property arguments.
pub mod strategy {
    use rand::Rng;
    use std::ops::Range;

    /// The RNG driving all generation (deterministic per test + case).
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (the `prop_map` combinator).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy producing a fixed value (the `Just` of the real crate).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::SampleUniform + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_via_standard {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )+};
    }

    arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::{Strategy, TestRng};

    /// The whole-domain strategy for `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen(rng)
        }
    }

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;
}

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Deterministically derives the per-test base seed from the test's name.
pub fn fnv1a_seed(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Longest `Debug` rendering of one generated input printed on failure;
/// anything longer (a whole netlist, a large vector) is truncated with a
/// marker so CI logs stay readable.
pub const MAX_INPUT_DEBUG_LEN: usize = 2048;

/// Renders one generated value for the failure report, truncating oversized
/// `Debug` output.
pub fn render_input(name: &str, value: &dyn std::fmt::Debug) -> String {
    let mut rendered = format!("{value:?}");
    if rendered.len() > MAX_INPUT_DEBUG_LEN {
        // Truncate on a char boundary, then mark the cut.
        let mut cut = MAX_INPUT_DEBUG_LEN;
        while !rendered.is_char_boundary(cut) {
            cut -= 1;
        }
        rendered.truncate(cut);
        rendered.push_str("… <truncated>");
    }
    format!("    {name} = {rendered}\n")
}

/// Prints the failure report for one case: which case failed, under which
/// derived seed, and the regenerated input values. Called by the
/// [`proptest!`] runner after the body panicked, right before the panic is
/// resumed — the assertion message (printed by the panic hook at unwind
/// time) and this report together identify the failing input exactly.
pub fn report_failure(test_name: &str, case: u64, seed: u64, inputs: &str) {
    eprintln!(
        "proptest failure in `{test_name}`, case {case} (derived seed {seed:#018x})\n\
         regenerated inputs:\n{inputs}\
         (deterministic: rerun the test to reproduce this exact case)"
    );
}

/// Asserts a condition inside a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests.
///
/// Supports the proptest surface used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let base = $crate::fnv1a_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut rng = <$crate::strategy::TestRng as $crate::__SeedableRng>::seed_from_u64(seed);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    // Run the body under catch_unwind so a failing case can
                    // be reported with its inputs. The values were moved
                    // into the body, so the report regenerates them from
                    // the same derived seed — generation is deterministic.
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || { $body },
                    ));
                    if let Err(panic) = outcome {
                        let mut rng = <$crate::strategy::TestRng as $crate::__SeedableRng>::seed_from_u64(seed);
                        let mut inputs = ::std::string::String::new();
                        $(
                            {
                                let value = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                                inputs.push_str(&$crate::render_input(stringify!($arg), &value));
                            }
                        )+
                        $crate::report_failure(
                            concat!(module_path!(), "::", stringify!($name)),
                            case,
                            seed,
                            &inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// One-stop imports for property tests.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, bool)> {
        (1usize..50, crate::bool::ANY).prop_map(|(n, b)| (n * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            n in 3usize..9,
            xs in prop::collection::vec(0.0f64..1.0, 2..20),
            flag in prop::bool::ANY,
            seed in any::<u64>(),
        ) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(xs.len() >= 2 && xs.len() < 20);
            for x in &xs {
                prop_assert!((0.0..1.0).contains(x));
            }
            let _ = (flag, seed);
        }

        #[test]
        fn prop_map_applies((n, _b) in arb_pair()) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!((2..100).contains(&n));
        }
    }

    #[test]
    fn seeds_differ_between_names() {
        assert_ne!(crate::fnv1a_seed("a"), crate::fnv1a_seed("b"));
    }

    #[test]
    fn render_input_formats_and_truncates() {
        assert_eq!(crate::render_input("n", &42u32), "    n = 42\n");
        let rendered = crate::render_input("xs", &vec![7u64; 4096]);
        assert!(rendered.len() < crate::MAX_INPUT_DEBUG_LEN + 64);
        assert!(rendered.ends_with("… <truncated>\n"));
        // Truncation must not split a multi-byte char.
        let wide = "é".repeat(crate::MAX_INPUT_DEBUG_LEN);
        let rendered = crate::render_input("s", &wide);
        assert!(rendered.ends_with("… <truncated>\n"));
    }

    mod failing_case_reporting {
        use crate::prelude::*;

        // Expand a deliberately failing property without the #[test]
        // attribute (the meta slot is used for a doc comment instead), so
        // this module can call it and observe the panic.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// Always fails on the first case.
            fn always_fails(n in 10usize..20, flag in prop::bool::ANY) {
                let _ = flag;
                assert!(n >= 20, "deliberate failure for n = {n}");
            }
        }

        #[test]
        fn failing_cases_still_panic_with_the_original_message() {
            // The report itself goes to stderr (visible in CI logs); what
            // must hold programmatically: the original panic is resumed
            // unchanged, so the test harness sees the real assertion.
            let err = std::panic::catch_unwind(always_fails).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("deliberate failure"), "{msg}");
        }

        #[test]
        fn passing_properties_are_unaffected() {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn passes(n in 0usize..5) {
                    prop_assert!(n < 5);
                }
            }
            passes();
        }
    }
}
