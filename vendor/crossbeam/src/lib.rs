//! Vendored subset of [`crossbeam`](https://docs.rs/crossbeam/0.8) covering
//! `crossbeam::channel::{unbounded, Sender, Receiver}` plus a [`lane`]
//! module in the spirit of `crossbeam::deque` (worker-owned queues with
//! stealing), shaped for the persistent-worker pool in `cluster-sim`.
//!
//! The build environment has no crates.io access, so the channel is
//! implemented here over `std` primitives: an MPMC queue guarded by a
//! `Mutex<VecDeque>` with a `Condvar` for blocking receives. Semantics match
//! the crossbeam surface this workspace relies on — clonable senders *and*
//! receivers, FIFO per queue, and disconnect errors once the other side is
//! fully dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent value is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Enqueues `value` at the **front** of the queue, waking one blocked
        /// receiver. A crossbeam extension (real crossbeam has no priority
        /// lane): the worker pool uses it to keep nested sub-jobs ahead of
        /// queued top-level jobs.
        pub fn send_front(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_front(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they can observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Blocks until a value is available, every sender is dropped, or
        /// `timeout` elapses, whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self.shared.ready.wait_timeout(state, remaining).unwrap();
                state = guard;
                if result.timed_out() && state.items.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeues a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

pub mod lane {
    //! Persistent work lanes — the vendored stand-in for
    //! `crossbeam::deque::{Worker, Stealer, Injector}`, collapsed into one
    //! handle type shaped for the `cluster-sim` worker pool.
    //!
    //! A [`WorkLane`] is a long-lived double-ended queue with one *primary*
    //! producer (the pool's dispatcher), one *primary* consumer (the worker
    //! thread that owns the lane and parks on it), and any number of
    //! occasional thieves (other workers helping while they wait on an
    //! epoch). Unlike `crossbeam::deque`, thieves take from the **front**,
    //! same as the owner: the pool pushes nested sub-jobs to the front so
    //! that *whoever* picks up work next — owner or thief — runs the
    //! priority jobs before queued top-level jobs. All operations are a
    //! single short critical section on the lane's mutex, which is what
    //! makes the interleaving model below exhaustively checkable: any
    //! concurrent execution is equivalent to *some* serialisation of
    //! complete lane operations (see `lane_handoff_interleavings_are_exact`
    //! in the tests).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        closed: bool,
    }

    /// Why a pop returned without an item.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum PopError {
        /// The lane is currently empty (and still open, for blocking pops:
        /// the timeout elapsed first).
        Empty,
        /// The lane is closed **and** drained; no item will ever arrive.
        Closed,
    }

    impl fmt::Display for PopError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                PopError::Empty => f.write_str("popping from an empty lane"),
                PopError::Closed => f.write_str("popping from a closed and drained lane"),
            }
        }
    }

    impl std::error::Error for PopError {}

    /// A clonable handle to one persistent work lane. See the
    /// [module docs](self).
    pub struct WorkLane<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for WorkLane<T> {
        fn clone(&self) -> Self {
            WorkLane {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Default for WorkLane<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> WorkLane<T> {
        /// An empty, open lane.
        pub fn new() -> Self {
            WorkLane {
                shared: Arc::new(Shared {
                    state: Mutex::new(State {
                        items: VecDeque::new(),
                        closed: false,
                    }),
                    ready: Condvar::new(),
                }),
            }
        }

        /// Enqueues at the back (normal priority), waking the parked owner.
        /// Hands the value back if the lane is closed.
        pub fn push_back(&self, value: T) -> Result<(), T> {
            self.push_inner(value, false)
        }

        /// Enqueues at the **front** (priority: nested sub-jobs jump queued
        /// top-level jobs), waking the parked owner. Hands the value back if
        /// the lane is closed.
        pub fn push_front(&self, value: T) -> Result<(), T> {
            self.push_inner(value, true)
        }

        fn push_inner(&self, value: T, front: bool) -> Result<(), T> {
            let mut state = self.shared.state.lock().unwrap();
            if state.closed {
                return Err(value);
            }
            if front {
                state.items.push_front(value);
            } else {
                state.items.push_back(value);
            }
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Dequeues from the front if an item is immediately available.
        /// Items still drain after [`WorkLane::close`]; `Closed` is only
        /// reported once the lane is both closed and empty.
        pub fn try_pop(&self) -> Result<T, PopError> {
            let mut state = self.shared.state.lock().unwrap();
            match state.items.pop_front() {
                Some(item) => Ok(item),
                None if state.closed => Err(PopError::Closed),
                None => Err(PopError::Empty),
            }
        }

        /// Blocks until an item arrives, the lane closes (and drains), or
        /// `timeout` elapses — whichever comes first. `Empty` means the
        /// timeout fired with the lane still open.
        pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.closed {
                    return Err(PopError::Closed);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(PopError::Empty);
                };
                let (guard, _) = self.shared.ready.wait_timeout(state, remaining).unwrap();
                state = guard;
            }
        }

        /// Blocks until an item arrives or the lane closes and drains. The
        /// owner's parking primitive.
        pub fn pop(&self) -> Result<T, PopError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.closed {
                    return Err(PopError::Closed);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Closes the lane: future pushes are rejected, queued items still
        /// drain, and every parked consumer is woken to observe the close.
        pub fn close(&self) {
            let mut state = self.shared.state.lock().unwrap();
            state.closed = true;
            drop(state);
            self.shared.ready.notify_all();
        }

        /// Number of queued items right now (advisory — may be stale by the
        /// time the caller acts on it).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().items.len()
        }

        /// Whether the lane is currently empty (advisory, like
        /// [`WorkLane::len`]).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> fmt::Debug for WorkLane<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("WorkLane { .. }")
        }
    }
}

#[cfg(test)]
mod lane_tests {
    use super::lane::{PopError, WorkLane};
    use std::collections::VecDeque;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_for_back_pushes_priority_for_front_pushes() {
        let lane = WorkLane::new();
        lane.push_back(1).unwrap();
        lane.push_back(2).unwrap();
        lane.push_front(9).unwrap();
        assert_eq!(lane.try_pop(), Ok(9));
        assert_eq!(lane.try_pop(), Ok(1));
        assert_eq!(lane.try_pop(), Ok(2));
        assert_eq!(lane.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn close_rejects_pushes_but_drains_queued_items() {
        let lane = WorkLane::new();
        lane.push_back(1).unwrap();
        lane.close();
        assert_eq!(lane.push_back(2), Err(2));
        assert_eq!(lane.push_front(3), Err(3));
        assert_eq!(lane.try_pop(), Ok(1));
        assert_eq!(lane.try_pop(), Err(PopError::Closed));
        assert_eq!(lane.pop(), Err(PopError::Closed));
    }

    #[test]
    fn pop_blocks_until_an_item_or_the_close_arrives() {
        let lane = WorkLane::new();
        let consumer = {
            let lane = lane.clone();
            thread::spawn(move || {
                let first = lane.pop();
                let second = lane.pop();
                (first, second)
            })
        };
        thread::sleep(Duration::from_millis(10));
        lane.push_back(42).unwrap();
        thread::sleep(Duration::from_millis(10));
        lane.close();
        assert_eq!(consumer.join().unwrap(), (Ok(42), Err(PopError::Closed)));
    }

    #[test]
    fn pop_timeout_reports_empty_on_expiry() {
        let lane = WorkLane::<u8>::new();
        assert_eq!(
            lane.pop_timeout(Duration::from_millis(5)),
            Err(PopError::Empty)
        );
        lane.push_back(7).unwrap();
        assert_eq!(lane.pop_timeout(Duration::from_millis(5)), Ok(7));
    }

    /// The loom-style check for the queue handoff. Every lane operation is
    /// one complete critical section on the lane's single mutex, so *any*
    /// concurrent execution of producer / owner / thief is observationally
    /// equal to some interleaving of whole operations. This test therefore
    /// enumerates **all** interleavings of a three-party script (producer:
    /// pushes + close; owner and thief: pops) — 12!/(6!·3!·3!) = 18480
    /// schedules — replays each against a reference deque model, and
    /// asserts exactly-once delivery, front-priority, and close semantics
    /// on every schedule. That is the same exhaustive-model guarantee a
    /// `loom` test gives for this lock-level design.
    #[test]
    fn lane_handoff_interleavings_are_exact() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        enum Op {
            PushBack(u32),
            PushFront(u32),
            Close,
            Pop, // owner and thief pops are the same lane operation
        }

        // Producer script: a mix of priorities around a close; consumers:
        // three pops each (enough to drain and to observe Empty/Closed).
        let producer = [
            Op::PushBack(1),
            Op::PushFront(2),
            Op::PushBack(3),
            Op::PushFront(4),
            Op::PushBack(5),
            Op::Close,
        ];
        let owner = [Op::Pop, Op::Pop, Op::Pop];
        let thief = [Op::Pop, Op::Pop, Op::Pop];

        // Enumerate every merge of the three scripts (preserving each
        // script's internal order) via an explicit stack of cursors.
        let mut schedules = 0usize;
        let mut stack: Vec<(usize, usize, usize, Vec<usize>)> = vec![(0, 0, 0, Vec::new())];
        while let Some((p, o, t, order)) = stack.pop() {
            if p == producer.len() && o == owner.len() && t == thief.len() {
                schedules += 1;
                // Replay this schedule against the real lane and a model.
                let lane = WorkLane::new();
                let mut model: VecDeque<u32> = VecDeque::new();
                let mut model_closed = false;
                let (mut pi, mut oi, mut ti) = (0usize, 0usize, 0usize);
                let mut delivered: Vec<u32> = Vec::new();
                for &party in &order {
                    let op = match party {
                        0 => {
                            let op = producer[pi];
                            pi += 1;
                            op
                        }
                        1 => {
                            let op = owner[oi];
                            oi += 1;
                            op
                        }
                        _ => {
                            let op = thief[ti];
                            ti += 1;
                            op
                        }
                    };
                    match op {
                        Op::PushBack(v) => {
                            let expect = if model_closed {
                                Err(v)
                            } else {
                                model.push_back(v);
                                Ok(())
                            };
                            assert_eq!(lane.push_back(v), expect);
                        }
                        Op::PushFront(v) => {
                            let expect = if model_closed {
                                Err(v)
                            } else {
                                model.push_front(v);
                                Ok(())
                            };
                            assert_eq!(lane.push_front(v), expect);
                        }
                        Op::Close => {
                            lane.close();
                            model_closed = true;
                        }
                        Op::Pop => {
                            let expect = match model.pop_front() {
                                Some(v) => Ok(v),
                                None if model_closed => Err(PopError::Closed),
                                None => Err(PopError::Empty),
                            };
                            let got = lane.try_pop();
                            assert_eq!(got, expect, "schedule {order:?}");
                            if let Ok(v) = got {
                                delivered.push(v);
                            }
                        }
                    }
                }
                // Exactly-once: nothing delivered twice, and whatever was
                // pushed but not delivered is still queued (drainable).
                let mut seen = delivered.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), delivered.len(), "duplicate delivery");
                let mut rest = Vec::new();
                while let Ok(v) = lane.try_pop() {
                    rest.push(v);
                }
                assert_eq!(delivered.len() + rest.len(), 5, "lost item");
                continue;
            }
            if p < producer.len() {
                let mut next = order.clone();
                next.push(0);
                stack.push((p + 1, o, t, next));
            }
            if o < owner.len() {
                let mut next = order.clone();
                next.push(1);
                stack.push((p, o + 1, t, next));
            }
            if t < thief.len() {
                let mut next = order.clone();
                next.push(2);
                stack.push((p, o, t + 1, next));
            }
        }
        assert_eq!(
            schedules, 18480,
            "interleaving enumeration must be exhaustive"
        );
    }

    /// The condvar-wakeup side the serialisation argument cannot cover:
    /// real threads, blocking pops, concurrent stealing. Every item must be
    /// delivered exactly once across owner and thief, and both must observe
    /// the close.
    #[test]
    fn concurrent_handoff_delivers_exactly_once() {
        const ITEMS: u64 = 10_000;
        let lane = WorkLane::new();
        let owner = {
            let lane = lane.clone();
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = lane.pop() {
                    got.push(v);
                }
                got
            })
        };
        let thief = {
            let lane = lane.clone();
            thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match lane.try_pop() {
                        Ok(v) => got.push(v),
                        Err(PopError::Closed) => break,
                        Err(PopError::Empty) => thread::yield_now(),
                    }
                }
                got
            })
        };
        for i in 0..ITEMS {
            if i % 7 == 0 {
                lane.push_front(i).unwrap();
            } else {
                lane.push_back(i).unwrap();
            }
        }
        lane.close();
        let mut all = owner.join().unwrap();
        all.extend(thief.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use std::thread;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_front_jumps_the_queue() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.send_front(9).unwrap();
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(rx);
        assert!(tx.send_front(0).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = (0..100).map(|_| rx.recv().unwrap()).sum();
        producer.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn cloned_senders_all_deliver() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u64> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
