//! Vendored subset of [`crossbeam`](https://docs.rs/crossbeam/0.8) covering
//! `crossbeam::channel::{unbounded, Sender, Receiver}`.
//!
//! The build environment has no crates.io access, so the channel is
//! implemented here over `std` primitives: an MPMC queue guarded by a
//! `Mutex<VecDeque>` with a `Condvar` for blocking receives. Semantics match
//! the crossbeam surface this workspace relies on — clonable senders *and*
//! receivers, FIFO per queue, and disconnect errors once the other side is
//! fully dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent value is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Enqueues `value` at the **front** of the queue, waking one blocked
        /// receiver. A crossbeam extension (real crossbeam has no priority
        /// lane): the worker pool uses it to keep nested sub-jobs ahead of
        /// queued top-level jobs.
        pub fn send_front(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_front(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they can observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Blocks until a value is available, every sender is dropped, or
        /// `timeout` elapses, whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self.shared.ready.wait_timeout(state, remaining).unwrap();
                state = guard;
                if result.timed_out() && state.items.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeues a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use std::thread;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_front_jumps_the_queue() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.send_front(9).unwrap();
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(rx);
        assert!(tx.send_front(0).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = (0..100).map(|_| rx.recv().unwrap()).sum();
        producer.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn cloned_senders_all_deliver() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u64> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
