//! Vendored minimal benchmark harness exposing the subset of the
//! [`criterion`](https://docs.rs/criterion/0.5) surface this workspace uses:
//! [`Criterion::benchmark_group`], group `measurement_time` / `sample_size` /
//! `bench_function` / `finish`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], plus the [`criterion_group!`] and
//! [`criterion_main!`] macros (benches are declared with `harness = false`).
//!
//! Statistics are intentionally simple — per-sample wall-clock timing with
//! mean / median / min reporting — but the measurement loop structure
//! (warm-up, then timed samples under a measurement-time budget) mirrors
//! criterion so numbers are comparable run-to-run on one machine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    /// Default measurement budget per benchmark.
    measurement_time: Duration,
    /// Default number of timed samples per benchmark.
    sample_size: usize,
    /// Optional substring filter from the command line.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(2),
            sample_size: 30,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (only a positional substring filter is
    /// honoured, mirroring `cargo bench -- <filter>`).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            criterion: self,
            name,
            measurement_time: None,
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measurement_time = self.measurement_time;
        let sample_size = self.sample_size;
        self.run_one(id, measurement_time, sample_size, f);
        self
    }

    fn run_one<F>(&self, id: &str, measurement_time: Duration, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            measurement_time,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    measurement_time: Option<Duration>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = Some(time);
        self
    }

    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.as_ref());
        let measurement_time = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(&full_id, measurement_time, sample_size, f);
        self
    }

    /// Ends the group (reporting happens per-benchmark in this shim).
    pub fn finish(self) {}
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; this shim always re-runs setup per batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per setup in real criterion.
    SmallInput,
    /// Large inputs: few iterations per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run a few times and estimate the per-call cost so each
        // timed sample aggregates enough calls to be measurable.
        let warmup_start = Instant::now();
        black_box(routine());
        black_box(routine());
        let per_call = warmup_start.elapsed() / 2;
        let calls_per_sample = Self::calls_per_sample(per_call);

        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..calls_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / calls_per_sample);
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let warmup_start = Instant::now();
        black_box(routine(input));
        let per_call = warmup_start.elapsed();
        // Inputs for a whole sample are materialised up front (so setup cost
        // stays outside the timed region); keep the batch small enough that a
        // heavyweight setup cannot balloon memory, and honour PerIteration.
        let calls_per_sample = match size {
            BatchSize::PerIteration => 1,
            BatchSize::LargeInput => Self::calls_per_sample(per_call).min(16),
            BatchSize::SmallInput => Self::calls_per_sample(per_call).min(1024),
        };

        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..calls_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / calls_per_sample);
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Aggregates calls so one timed sample lasts roughly a millisecond.
    fn calls_per_sample(per_call: Duration) -> u32 {
        const TARGET: Duration = Duration::from_millis(1);
        if per_call.is_zero() {
            return 1000;
        }
        (TARGET.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 100_000) as u32
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "  {id:<50} mean {:>12} median {:>12} min {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(median),
            fmt_duration(min),
            sorted.len()
        );
    }
}

/// Formats a duration with adaptive units the way criterion reports do.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_collect_samples() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(50),
            sample_size: 5,
            filter: None,
        };
        let mut group = c.benchmark_group("shim");
        group
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            sample_size: 3,
            filter: None,
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            sample_size: 3,
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran, "filtered benchmark must not run");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
