//! Type II — domain decomposition by placement rows.
//!
//! Following Figures 4 and 5 of the paper, the placement rows are partitioned
//! among the processors; every processor runs the full SimE iteration
//! (evaluation, selection, allocation) restricted to the cells in — and the
//! slots of — its own rows, and the master merges the partial placements and
//! re-partitions at the end of every iteration. All SimE operators, including
//! allocation, are thereby parallelised, which is why this is the only
//! strategy that yields real speed-ups; the price is the restricted freedom
//! of cell movement (a cell can only move within its current partition's rows
//! in a given iteration), which slows convergence and can cost final quality.
//!
//! Two row-allocation patterns are implemented:
//!
//! * [`RowPattern::Fixed`] — the pattern of Kling & Banerjee's ESP paper:
//!   in even iterations each processor receives a contiguous slice of
//!   `K / m` rows, in odd iterations processor `j` receives rows
//!   `j, j + m, j + 2m, …`, so any cell can reach any row position in at most
//!   two iterations.
//! * [`RowPattern::Random`] — the authors' variation: rows are shuffled and
//!   dealt to the processors anew every iteration.

use crate::report::{StrategyOutcome, BYTES_PER_CELL};
use cluster_sim::machine::Workload;
use cluster_sim::timeline::{ClusterConfig, ClusterTimeline};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sime_core::engine::SimEEngine;
use sime_core::profile::ProfileReport;
use vlsi_netlist::CellId;
use vlsi_place::layout::Placement;

/// How rows are assigned to processors each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowPattern {
    /// Alternating contiguous-slice / strided assignment (Kling & Banerjee).
    Fixed,
    /// Fresh random assignment every iteration (Sait, Ali & Zaidi, ISCAS'05).
    Random,
}

impl RowPattern {
    /// Short label used by the benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            RowPattern::Fixed => "fixed",
            RowPattern::Random => "random",
        }
    }
}

/// Configuration of a Type II run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Type2Config {
    /// Number of processors, 2–5 in the paper.
    pub ranks: usize,
    /// Number of SimE iterations (the paper adds iterations as processors are
    /// added: 4000 + 500·(p−2) for two objectives, 5000 + 1000·(p−2)+1000 for
    /// three).
    pub iterations: usize,
    /// Row-allocation pattern.
    pub pattern: RowPattern,
}

/// Computes the row assignment for one iteration: `assignment[r]` is the list
/// of row indices owned by processor `r`.
pub fn row_assignment<RNG: rand::Rng + ?Sized>(
    pattern: RowPattern,
    num_rows: usize,
    ranks: usize,
    iteration: usize,
    rng: &mut RNG,
) -> Vec<Vec<usize>> {
    let mut assignment = vec![Vec::new(); ranks];
    match pattern {
        RowPattern::Fixed => {
            if iteration % 2 == 0 {
                // balanced contiguous slices of ~K/m rows
                for row in 0..num_rows {
                    assignment[row * ranks / num_rows].push(row);
                }
            } else {
                // strided: processor j gets rows j, j+m, j+2m, ...
                for row in 0..num_rows {
                    assignment[row % ranks].push(row);
                }
            }
        }
        RowPattern::Random => {
            let mut rows: Vec<usize> = (0..num_rows).collect();
            rows.shuffle(rng);
            for (i, row) in rows.into_iter().enumerate() {
                assignment[i % ranks].push(row);
            }
            for part in assignment.iter_mut() {
                part.sort_unstable();
            }
        }
    }
    assignment
}

/// Runs the Type II parallel SimE strategy.
pub fn run_type2(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type2Config,
) -> StrategyOutcome {
    assert!(config.ranks >= 2, "Type II needs at least two processors");
    assert_eq!(
        cluster.ranks, config.ranks,
        "cluster configuration and strategy configuration disagree on the rank count"
    );
    let num_rows = engine.config().num_rows;
    assert!(
        num_rows >= config.ranks,
        "each processor needs at least one row"
    );

    let netlist = engine.evaluator().netlist().clone();
    let num_cells = netlist.num_cells();
    let placement_bytes = BYTES_PER_CELL * num_cells as u64 + 8 * num_rows as u64;

    let mut timeline = ClusterTimeline::new(cluster);
    let mut master_rng = ChaCha8Rng::seed_from_u64(engine.config().seed);
    let mut placement = engine.initial_placement(&mut master_rng);
    let mut rank_rngs: Vec<ChaCha8Rng> = (0..config.ranks)
        .map(|r| ChaCha8Rng::seed_from_u64(engine.config().seed ^ ((r as u64 + 1) << 32)))
        .collect();
    // One scratch per simulated processor (plus one for the master's merge
    // evaluation) keeps the shared engine immutable and `Send + Sync`.
    let mut rank_scratch: Vec<_> = (0..config.ranks).map(|_| engine.new_scratch()).collect();
    let mut master_scratch = engine.new_scratch();

    let mut best_placement = placement.clone();
    let mut best_cost = engine.evaluator().evaluate(&placement);
    let mut mu_history = Vec::with_capacity(config.iterations);

    for iteration in 0..config.iterations {
        // Master: generate the row assignment and broadcast placement + rows.
        let assignment = row_assignment(
            config.pattern,
            num_rows,
            config.ranks,
            iteration,
            &mut master_rng,
        );
        timeline.broadcast_tree(0, placement_bytes);

        // Every processor runs a full SimE iteration on its rows. The
        // computation is executed locally (sequentially) and charged to the
        // processor's virtual clock.
        let mut merged_rows: Vec<Vec<CellId>> =
            (0..num_rows).map(|r| placement.row(r).to_vec()).collect();
        let mut bytes_per_rank = vec![0u64; config.ranks];

        for (rank, rows) in assignment.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let owned: Vec<CellId> = netlist
                .cell_ids()
                .filter(|&c| rows.contains(&placement.row_of(c)))
                .collect();
            let frozen = engine.frozen_mask_from_owned(&owned);

            let mut local = placement.clone();
            let mut profile = ProfileReport::new();
            let (_avg, _selected, alloc_stats) = engine.iterate(
                &mut local,
                &mut rank_scratch[rank],
                &mut rank_rngs[rank],
                &mut profile,
                &frozen,
                rows,
            );

            // Charge the partition's evaluation plus its allocation work.
            let eval = crate::report::partition_evaluation_workload(engine, &owned);
            timeline.charge_compute(rank, &eval);
            timeline.charge_compute(
                rank,
                &Workload {
                    net_evaluations: alloc_stats.net_evaluations as u64,
                    misc_operations: owned.len() as u64 * 8,
                },
            );

            // Extract the partial placement rows this processor owns.
            for &row in rows {
                merged_rows[row] = local.row(row).to_vec();
            }
            bytes_per_rank[rank] = owned.len() as u64 * BYTES_PER_CELL;
        }

        // Slaves send their partial rows back; the master reconstructs the
        // complete solution.
        timeline.gather(0, &bytes_per_rank);
        placement = Placement::from_rows(&netlist, merged_rows);
        timeline.charge_compute(0, &Workload::misc(num_cells as u64));

        let cost = engine.cost_with(&placement, &mut master_scratch);
        mu_history.push(cost.mu);
        if cost.mu > best_cost.mu {
            best_cost = cost;
            best_placement = placement.clone();
        }
    }

    StrategyOutcome {
        best_placement,
        best_cost,
        modeled_seconds: timeline.makespan(),
        comm: timeline.stats(),
        iterations: config.iterations,
        mu_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::run_serial_baseline;
    use sime_core::engine::SimEConfig;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn engine(iterations: usize) -> SimEEngine {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("type2_test", 160, 11)).generate(),
        );
        SimEEngine::new(
            nl,
            SimEConfig::paper_defaults(Objectives::WirelengthPower, 10, iterations),
        )
    }

    #[test]
    fn fixed_pattern_alternates_slice_and_stride() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let even = row_assignment(RowPattern::Fixed, 10, 5, 0, &mut rng);
        assert_eq!(even[0], vec![0, 1]);
        assert_eq!(even[4], vec![8, 9]);
        let odd = row_assignment(RowPattern::Fixed, 10, 5, 1, &mut rng);
        assert_eq!(odd[0], vec![0, 5]);
        assert_eq!(odd[3], vec![3, 8]);
    }

    #[test]
    fn row_assignments_partition_the_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            for iteration in 0..4 {
                for ranks in 2..=5 {
                    let a = row_assignment(pattern, 11, ranks, iteration, &mut rng);
                    assert_eq!(a.len(), ranks);
                    let mut all: Vec<usize> = a.iter().flatten().copied().collect();
                    all.sort_unstable();
                    assert_eq!(all, (0..11).collect::<Vec<_>>(), "{pattern:?} it={iteration} p={ranks}");
                }
            }
        }
    }

    #[test]
    fn random_pattern_changes_between_iterations() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = row_assignment(RowPattern::Random, 12, 4, 0, &mut rng);
        let b = row_assignment(RowPattern::Random, 12, 4, 1, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn type2_produces_a_legal_placement_and_reasonable_quality() {
        let engine = engine(8);
        let outcome = run_type2(
            &engine,
            ClusterConfig::paper_cluster(3),
            Type2Config {
                ranks: 3,
                iterations: 8,
                pattern: RowPattern::Random,
            },
        );
        outcome
            .best_placement
            .validate(engine.evaluator().netlist())
            .unwrap();
        assert!(outcome.best_mu() > 0.0 && outcome.best_mu() <= 1.0);
        assert_eq!(outcome.mu_history.len(), 8);
    }

    #[test]
    fn type2_is_faster_than_serial_per_iteration() {
        // The paper's central Table 2/3 finding: domain decomposition divides
        // the allocation workload, so the modeled parallel runtime for the
        // same iteration count is well below the serial runtime.
        let engine = engine(6);
        let baseline = run_serial_baseline(&engine, &ClusterConfig::paper_cluster(2).compute);
        let outcome = run_type2(
            &engine,
            ClusterConfig::paper_cluster(4),
            Type2Config {
                ranks: 4,
                iterations: 6,
                pattern: RowPattern::Random,
            },
        );
        assert!(
            outcome.modeled_seconds < baseline.modeled_seconds,
            "Type II at p=4 should beat serial: {} vs {}",
            outcome.modeled_seconds,
            baseline.modeled_seconds
        );
    }

    #[test]
    fn type2_speedup_grows_with_processors() {
        let engine = engine(5);
        let t2 = run_type2(
            &engine,
            ClusterConfig::paper_cluster(2),
            Type2Config {
                ranks: 2,
                iterations: 5,
                pattern: RowPattern::Random,
            },
        )
        .modeled_seconds;
        let t5 = run_type2(
            &engine,
            ClusterConfig::paper_cluster(5),
            Type2Config {
                ranks: 5,
                iterations: 5,
                pattern: RowPattern::Random,
            },
        )
        .modeled_seconds;
        assert!(
            t5 < t2,
            "five processors should be faster than two: {t5} vs {t2}"
        );
    }

    #[test]
    fn both_patterns_produce_legal_placements() {
        let engine = engine(4);
        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            let outcome = run_type2(
                &engine,
                ClusterConfig::paper_cluster(2),
                Type2Config {
                    ranks: 2,
                    iterations: 4,
                    pattern,
                },
            );
            outcome
                .best_placement
                .validate(engine.evaluator().netlist())
                .unwrap();
        }
    }

    #[test]
    fn type2_run_is_deterministic() {
        let engine = engine(4);
        let cfg = Type2Config {
            ranks: 3,
            iterations: 4,
            pattern: RowPattern::Random,
        };
        let a = run_type2(&engine, ClusterConfig::paper_cluster(3), cfg);
        let b = run_type2(&engine, ClusterConfig::paper_cluster(3), cfg);
        assert_eq!(a.best_cost.wirelength, b.best_cost.wirelength);
        assert_eq!(a.modeled_seconds, b.modeled_seconds);
        assert_eq!(a.comm.messages, b.comm.messages);
    }

    #[test]
    #[should_panic(expected = "at least two processors")]
    fn rejects_single_rank() {
        let engine = engine(1);
        run_type2(
            &engine,
            ClusterConfig::paper_cluster(1),
            Type2Config {
                ranks: 1,
                iterations: 1,
                pattern: RowPattern::Fixed,
            },
        );
    }
}
