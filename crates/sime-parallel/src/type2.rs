//! Type II — domain decomposition by placement rows.
//!
//! Following Figures 4 and 5 of the paper, the placement rows are partitioned
//! among the processors; every processor runs the full SimE iteration
//! (evaluation, selection, allocation) restricted to the cells in — and the
//! slots of — its own rows, and the master merges the partial placements and
//! re-partitions at the end of every iteration. All SimE operators, including
//! allocation, are thereby parallelised, which is why this is the only
//! strategy that yields real speed-ups; the price is the restricted freedom
//! of cell movement (a cell can only move within its current partition's rows
//! in a given iteration), which slows convergence and can cost final quality.
//!
//! Two row-allocation patterns are implemented:
//!
//! * [`RowPattern::Fixed`] — the pattern of Kling & Banerjee's ESP paper:
//!   in even iterations each processor receives a contiguous slice of
//!   `K / m` rows, in odd iterations processor `j` receives rows
//!   `j, j + m, j + 2m, …`, so any cell can reach any row position in at most
//!   two iterations.
//! * [`RowPattern::Random`] — the authors' variation: rows are shuffled and
//!   dealt to the processors anew every iteration.
//!
//! Each processor's iteration is an independent task over its own RNG stream
//! and scratch; under the `Threaded` backend the tasks of one iteration run
//! on real OS threads, and the master's merge consumes the partial rows in
//! rank order so the rebuilt placement is identical on every backend.
//!
//! ```
//! use cluster_sim::timeline::ClusterConfig;
//! use sime_core::engine::{SimEConfig, SimEEngine};
//! use sime_parallel::exec::Threaded;
//! use sime_parallel::type2::{run_type2, run_type2_on, RowPattern, Type2Config};
//! use std::sync::Arc;
//! use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
//! use vlsi_place::cost::Objectives;
//!
//! let netlist = Arc::new(
//!     CircuitGenerator::new(GeneratorConfig::sized("type2_doc", 120, 2)).generate(),
//! );
//! let engine = SimEEngine::new(netlist, SimEConfig::fast(Objectives::WirelengthPower, 6, 3));
//! let config = Type2Config { ranks: 3, iterations: 3, pattern: RowPattern::Random };
//! let modeled = run_type2(&engine, ClusterConfig::paper_cluster(3), config);
//! let threaded = run_type2_on(&engine, ClusterConfig::paper_cluster(3), config, &Threaded::new(2));
//! assert_eq!(modeled.best_mu().to_bits(), threaded.best_mu().to_bits());
//! assert_eq!(modeled.comm, threaded.comm);
//! ```

use crate::control::{FreeRun, RunControl};
use crate::exec::{ExecBackend, Modeled, Task};
use crate::report::{StrategyOutcome, BYTES_PER_CELL};
use cluster_sim::machine::Workload;
use cluster_sim::timeline::{ClusterConfig, ClusterTimeline};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sime_core::allocation::AllocationStats;
use sime_core::engine::{SimEEngine, SimEScratch};
use sime_core::parallel::EvalContext;
use sime_core::profile::ProfileReport;
use std::sync::Arc;
use std::time::Instant;
use vlsi_netlist::CellId;
use vlsi_place::layout::Placement;

/// How rows are assigned to processors each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowPattern {
    /// Alternating contiguous-slice / strided assignment (Kling & Banerjee).
    Fixed,
    /// Fresh random assignment every iteration (Sait, Ali & Zaidi, ISCAS'05).
    Random,
}

impl RowPattern {
    /// Short label used by the benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            RowPattern::Fixed => "fixed",
            RowPattern::Random => "random",
        }
    }
}

/// Configuration of a Type II run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Type2Config {
    /// Number of processors, 2–5 in the paper.
    pub ranks: usize,
    /// Number of SimE iterations (the paper adds iterations as processors are
    /// added: 4000 + 500·(p−2) for two objectives, 5000 + 1000·(p−2)+1000 for
    /// three).
    pub iterations: usize,
    /// Row-allocation pattern.
    pub pattern: RowPattern,
}

/// Computes the row assignment for one iteration: `assignment[r]` is the list
/// of row indices owned by processor `r`.
pub fn row_assignment<RNG: rand::Rng + ?Sized>(
    pattern: RowPattern,
    num_rows: usize,
    ranks: usize,
    iteration: usize,
    rng: &mut RNG,
) -> Vec<Vec<usize>> {
    let mut assignment = vec![Vec::new(); ranks];
    match pattern {
        RowPattern::Fixed => {
            if iteration.is_multiple_of(2) {
                // balanced contiguous slices of ~K/m rows
                for row in 0..num_rows {
                    assignment[row * ranks / num_rows].push(row);
                }
            } else {
                // strided: processor j gets rows j, j+m, j+2m, ...
                for row in 0..num_rows {
                    assignment[row % ranks].push(row);
                }
            }
        }
        RowPattern::Random => {
            let mut rows: Vec<usize> = (0..num_rows).collect();
            rows.shuffle(rng);
            for (i, row) in rows.into_iter().enumerate() {
                assignment[i % ranks].push(row);
            }
            for part in assignment.iter_mut() {
                part.sort_unstable();
            }
        }
    }
    assignment
}

/// Per-rank state that persists across iterations: the rank's private RNG
/// stream and its allocation scratch. Moved into the rank's task at fan-out
/// and returned with the task result at the merge.
struct RankState {
    rng: ChaCha8Rng,
    scratch: SimEScratch,
}

/// What one rank's task sends back: its state, the contents of the rows it
/// owned after its local iteration, and the allocation work it performed.
type RankOutput = (RankState, Vec<(usize, Vec<CellId>)>, AllocationStats);

/// Runs the Type II parallel SimE strategy on the default [`Modeled`] backend.
pub fn run_type2(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type2Config,
) -> StrategyOutcome {
    run_type2_on(engine, cluster, config, &Modeled)
}

/// Runs the Type II parallel SimE strategy on an explicit execution backend.
///
/// Per-rank iterations are independent tasks over seed-derived private RNG
/// streams (`seed ^ ((rank + 1) << 32)`); the master merges the returned rows
/// in rank order, so both backends — and any worker count — produce bitwise
/// identical outcomes.
pub fn run_type2_on(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type2Config,
    backend: &dyn ExecBackend,
) -> StrategyOutcome {
    run_type2_ctl(engine, cluster, config, backend, &FreeRun)
}

/// [`run_type2_on`] with a [`RunControl`]: the control observes every
/// completed iteration and may end the run at that boundary (see the
/// [`crate::control`] docs for the exact call point and the prefix-bitwise
/// guarantee). [`StrategyOutcome::iterations`] reports the iterations that
/// actually ran.
pub fn run_type2_ctl(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type2Config,
    backend: &dyn ExecBackend,
    control: &dyn RunControl,
) -> StrategyOutcome {
    assert!(config.ranks >= 2, "Type II needs at least two processors");
    assert_eq!(
        cluster.ranks, config.ranks,
        "cluster configuration and strategy configuration disagree on the rank count"
    );
    let num_rows = engine.config().num_rows;
    assert!(
        num_rows >= config.ranks,
        "each processor needs at least one row"
    );
    let started = Instant::now();
    let executor = backend.executor();
    let pool = executor.pool();
    let eval_chunks = executor.effective_eval_chunks(backend);

    let netlist = engine.evaluator().netlist().clone();
    let num_cells = netlist.num_cells();
    let placement_bytes = BYTES_PER_CELL * num_cells as u64 + 8 * num_rows as u64;
    let shared = Arc::new(engine.clone());

    let mut timeline = ClusterTimeline::new(cluster);
    let mut master_rng = ChaCha8Rng::seed_from_u64(engine.config().seed);
    let mut placement = engine.initial_placement(&mut master_rng);
    // One private RNG stream + scratch per simulated processor (plus one
    // scratch for the master's merge evaluation); the shared engine stays
    // immutable and `Send + Sync`.
    let mut rank_state: Vec<Option<RankState>> = (0..config.ranks)
        .map(|r| {
            Some(RankState {
                rng: ChaCha8Rng::seed_from_u64(engine.config().seed ^ ((r as u64 + 1) << 32)),
                scratch: engine.new_scratch(),
            })
        })
        .collect();
    let mut master_scratch = engine.new_scratch();
    // The master's merge evaluation rebuilds a fresh placement object every
    // iteration, so its cost refresh is always a *full* (every-net) pass —
    // the widest refresh in any driver. Fan it out over the pool.
    let master_ctx = EvalContext::from_pool(pool.as_deref(), eval_chunks);

    let mut best_placement = placement.clone();
    let mut best_cost = engine.evaluator().evaluate(&placement);
    let mut mu_history = Vec::with_capacity(config.iterations);

    for iteration in 0..config.iterations {
        // Master: generate the row assignment and broadcast placement + rows.
        let assignment = row_assignment(
            config.pattern,
            num_rows,
            config.ranks,
            iteration,
            &mut master_rng,
        );
        timeline.broadcast_tree(0, placement_bytes);

        // Fan out: every processor runs a full SimE iteration on its rows.
        // The master determines each rank's owned cells and frozen mask from
        // the pre-iteration placement (it has to, to price the work), then
        // hands the rank its task.
        let mut merged_rows: Vec<Vec<CellId>> =
            (0..num_rows).map(|r| placement.row(r).to_vec()).collect();
        let mut bytes_per_rank = vec![0u64; config.ranks];
        let mut tasks: Vec<Task<RankOutput>> = Vec::new();
        let mut task_meta: Vec<(usize, Workload, usize)> = Vec::new();

        for (rank, rows) in assignment.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let owned: Vec<CellId> = netlist
                .cell_ids()
                .filter(|&c| rows.contains(&placement.row_of(c)))
                .collect();
            let frozen = engine.frozen_mask_from_owned(&owned);
            let eval_work = crate::report::partition_evaluation_workload(engine, &owned);
            bytes_per_rank[rank] = owned.len() as u64 * BYTES_PER_CELL;
            task_meta.push((rank, eval_work, owned.len()));

            let mut state = rank_state[rank].take().expect("rank state in flight");
            let engine = Arc::clone(&shared);
            let mut local = placement.clone();
            let rows = rows.clone();
            let pool = pool.clone();
            tasks.push(Box::new(move || {
                let ctx = EvalContext::from_pool(pool.as_deref(), eval_chunks);
                let mut profile = ProfileReport::new();
                let (_avg, _selected, alloc_stats) = engine.iterate_on(
                    &mut local,
                    &mut state.scratch,
                    &mut state.rng,
                    &mut profile,
                    &frozen,
                    &rows,
                    &ctx,
                );
                let out_rows = rows.iter().map(|&r| (r, local.row(r).to_vec())).collect();
                (state, out_rows, alloc_stats)
            }) as Task<RankOutput>);
        }

        // Merge in rank order (the tasks were built in rank order and the
        // executor returns results in submission order).
        let results = executor.run_tasks(tasks);
        for ((rank, eval_work, owned_len), (state, out_rows, alloc_stats)) in
            task_meta.into_iter().zip(results)
        {
            rank_state[rank] = Some(state);
            // Charge the partition's evaluation plus its allocation work.
            timeline.charge_compute(rank, &eval_work);
            timeline.charge_compute(
                rank,
                &Workload {
                    net_evaluations: alloc_stats.net_evaluations as u64,
                    misc_operations: owned_len as u64 * 8,
                },
            );
            for (row, cells) in out_rows {
                merged_rows[row] = cells;
            }
        }

        // Slaves send their partial rows back; the master reconstructs the
        // complete solution.
        timeline.gather(0, &bytes_per_rank);
        placement = Placement::from_rows(&netlist, merged_rows);
        timeline.charge_compute(0, &Workload::misc(num_cells as u64));

        let cost = engine.cost_with_on(&placement, &mut master_scratch, &master_ctx);
        mu_history.push(cost.mu);
        if cost.mu > best_cost.mu {
            best_cost = cost;
            best_placement = placement.clone();
        }
        if !control.keep_going(iteration, cost.mu, best_cost.mu) {
            break;
        }
    }

    let iterations_run = mu_history.len();
    StrategyOutcome {
        best_placement,
        best_cost,
        modeled_seconds: timeline.makespan(),
        comm: timeline.stats(),
        iterations: iterations_run,
        mu_history,
        wall_seconds: started.elapsed().as_secs_f64(),
        backend: backend.label(),
        eval_chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Threaded;
    use crate::report::run_serial_baseline;
    use sime_core::engine::SimEConfig;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn engine(iterations: usize) -> SimEEngine {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("type2_test", 160, 11)).generate(),
        );
        SimEEngine::new(
            nl,
            SimEConfig::paper_defaults(Objectives::WirelengthPower, 10, iterations),
        )
    }

    #[test]
    fn fixed_pattern_alternates_slice_and_stride() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let even = row_assignment(RowPattern::Fixed, 10, 5, 0, &mut rng);
        assert_eq!(even[0], vec![0, 1]);
        assert_eq!(even[4], vec![8, 9]);
        let odd = row_assignment(RowPattern::Fixed, 10, 5, 1, &mut rng);
        assert_eq!(odd[0], vec![0, 5]);
        assert_eq!(odd[3], vec![3, 8]);
    }

    #[test]
    fn row_assignments_partition_the_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            for iteration in 0..4 {
                for ranks in 2..=5 {
                    let a = row_assignment(pattern, 11, ranks, iteration, &mut rng);
                    assert_eq!(a.len(), ranks);
                    let mut all: Vec<usize> = a.iter().flatten().copied().collect();
                    all.sort_unstable();
                    assert_eq!(
                        all,
                        (0..11).collect::<Vec<_>>(),
                        "{pattern:?} it={iteration} p={ranks}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_pattern_changes_between_iterations() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = row_assignment(RowPattern::Random, 12, 4, 0, &mut rng);
        let b = row_assignment(RowPattern::Random, 12, 4, 1, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn type2_produces_a_legal_placement_and_reasonable_quality() {
        let engine = engine(8);
        let outcome = run_type2(
            &engine,
            ClusterConfig::paper_cluster(3),
            Type2Config {
                ranks: 3,
                iterations: 8,
                pattern: RowPattern::Random,
            },
        );
        outcome
            .best_placement
            .validate(engine.evaluator().netlist())
            .unwrap();
        assert!(outcome.best_mu() > 0.0 && outcome.best_mu() <= 1.0);
        assert_eq!(outcome.mu_history.len(), 8);
    }

    #[test]
    fn type2_backends_agree_bitwise() {
        let engine = engine(5);
        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            let config = Type2Config {
                ranks: 4,
                iterations: 5,
                pattern,
            };
            let modeled = run_type2(&engine, ClusterConfig::paper_cluster(4), config);
            for workers in [1, 3] {
                let threaded = run_type2_on(
                    &engine,
                    ClusterConfig::paper_cluster(4),
                    config,
                    &Threaded::new(workers),
                );
                assert_eq!(
                    modeled.best_cost.wirelength.to_bits(),
                    threaded.best_cost.wirelength.to_bits(),
                    "{pattern:?} workers={workers}"
                );
                assert_eq!(modeled.modeled_seconds, threaded.modeled_seconds);
                assert_eq!(modeled.comm, threaded.comm);
                for (a, b) in modeled.mu_history.iter().zip(&threaded.mu_history) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                for row in 0..engine.config().num_rows {
                    assert_eq!(
                        modeled.best_placement.row(row),
                        threaded.best_placement.row(row)
                    );
                }
            }
        }
    }

    #[test]
    fn type2_intra_rank_chunks_agree_bitwise() {
        let engine = engine(4);
        let config = Type2Config {
            ranks: 3,
            iterations: 4,
            pattern: RowPattern::Random,
        };
        let modeled = run_type2(&engine, ClusterConfig::paper_cluster(3), config);
        for chunks in [2, 3] {
            let intra = run_type2_on(
                &engine,
                ClusterConfig::paper_cluster(3),
                config,
                &Threaded::new(2).with_eval_chunks(chunks),
            );
            assert_eq!(intra.eval_chunks, chunks);
            assert_eq!(
                modeled.best_cost.wirelength.to_bits(),
                intra.best_cost.wirelength.to_bits()
            );
            assert_eq!(modeled.modeled_seconds, intra.modeled_seconds);
            assert_eq!(modeled.comm, intra.comm);
            for row in 0..engine.config().num_rows {
                assert_eq!(
                    modeled.best_placement.row(row),
                    intra.best_placement.row(row)
                );
            }
        }
    }

    #[test]
    fn type2_is_faster_than_serial_per_iteration() {
        // The paper's central Table 2/3 finding: domain decomposition divides
        // the allocation workload, so the modeled parallel runtime for the
        // same iteration count is well below the serial runtime.
        let engine = engine(6);
        let baseline = run_serial_baseline(&engine, &ClusterConfig::paper_cluster(2).compute);
        let outcome = run_type2(
            &engine,
            ClusterConfig::paper_cluster(4),
            Type2Config {
                ranks: 4,
                iterations: 6,
                pattern: RowPattern::Random,
            },
        );
        assert!(
            outcome.modeled_seconds < baseline.modeled_seconds,
            "Type II at p=4 should beat serial: {} vs {}",
            outcome.modeled_seconds,
            baseline.modeled_seconds
        );
    }

    #[test]
    fn type2_speedup_grows_with_processors() {
        let engine = engine(5);
        let t2 = run_type2(
            &engine,
            ClusterConfig::paper_cluster(2),
            Type2Config {
                ranks: 2,
                iterations: 5,
                pattern: RowPattern::Random,
            },
        )
        .modeled_seconds;
        let t5 = run_type2(
            &engine,
            ClusterConfig::paper_cluster(5),
            Type2Config {
                ranks: 5,
                iterations: 5,
                pattern: RowPattern::Random,
            },
        )
        .modeled_seconds;
        assert!(
            t5 < t2,
            "five processors should be faster than two: {t5} vs {t2}"
        );
    }

    #[test]
    fn both_patterns_produce_legal_placements() {
        let engine = engine(4);
        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            let outcome = run_type2(
                &engine,
                ClusterConfig::paper_cluster(2),
                Type2Config {
                    ranks: 2,
                    iterations: 4,
                    pattern,
                },
            );
            outcome
                .best_placement
                .validate(engine.evaluator().netlist())
                .unwrap();
        }
    }

    #[test]
    fn type2_cancelled_run_is_a_bitwise_prefix() {
        use crate::control::CancelAfter;
        let engine = engine(6);
        let cfg = Type2Config {
            ranks: 3,
            iterations: 6,
            pattern: RowPattern::Random,
        };
        let full = run_type2(&engine, ClusterConfig::paper_cluster(3), cfg);
        let cut = run_type2_ctl(
            &engine,
            ClusterConfig::paper_cluster(3),
            cfg,
            &Modeled,
            &CancelAfter(3),
        );
        assert_eq!(cut.iterations, 4, "stops after the boundary iteration");
        assert_eq!(cut.mu_history.len(), 4);
        for (a, b) in cut.mu_history.iter().zip(&full.mu_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn type2_run_is_deterministic() {
        let engine = engine(4);
        let cfg = Type2Config {
            ranks: 3,
            iterations: 4,
            pattern: RowPattern::Random,
        };
        let a = run_type2(&engine, ClusterConfig::paper_cluster(3), cfg);
        let b = run_type2(&engine, ClusterConfig::paper_cluster(3), cfg);
        assert_eq!(a.best_cost.wirelength, b.best_cost.wirelength);
        assert_eq!(a.modeled_seconds, b.modeled_seconds);
        assert_eq!(a.comm.messages, b.comm.messages);
    }

    #[test]
    #[should_panic(expected = "at least two processors")]
    fn rejects_single_rank() {
        let engine = engine(1);
        run_type2(
            &engine,
            ClusterConfig::paper_cluster(1),
            Type2Config {
                ranks: 1,
                iterations: 1,
                pattern: RowPattern::Fixed,
            },
        );
    }
}
