//! Run control: progress observation and cooperative cancellation.
//!
//! Every strategy driver in this crate runs a fixed per-iteration loop; the
//! `run_typeN_ctl` entry points thread a [`RunControl`] through that loop,
//! calling [`RunControl::keep_going`] exactly once **after** each completed
//! iteration (the µ value of the iteration has been pushed to the history and
//! the best-so-far bookkeeping has run). The callback is the strategy's only
//! cancellation point: returning `false` stops the run *before* the next
//! iteration starts, so a cancelled run's trajectory is a bitwise-exact
//! prefix of the uncancelled run's trajectory — no RNG stream is read past
//! the boundary, no partial iteration is observable.
//!
//! Observation never influences the run: the callback receives copies of the
//! iteration index and µ values and has no channel back into the engine
//! other than the boolean. This is what lets the `sime-server` job engine
//! stream progress from live runs while the golden registry keeps holding —
//! a job that runs to completion is bit-identical to the batch path whether
//! or not anyone watched it.
//!
//! ```
//! use sime_parallel::control::{CancelToken, FreeRun, RunControl};
//!
//! // The default control never stops a run.
//! assert!(FreeRun.keep_going(7, 0.5, 0.6));
//!
//! // A token stops the run at the first iteration boundary after `cancel`.
//! let token = CancelToken::new();
//! assert!(token.keep_going(0, 0.5, 0.5));
//! token.cancel();
//! assert!(!token.keep_going(1, 0.6, 0.6));
//! assert!(token.is_cancelled());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Observer + cancellation hook for one strategy run. See the
/// [module docs](self) for the exact call point and determinism argument.
pub trait RunControl: Sync {
    /// Called once after every completed iteration with the iteration index
    /// (0-based), the iteration's µ(s) and the best µ(s) seen so far.
    /// Returning `false` ends the run before the next iteration.
    fn keep_going(&self, iteration: usize, mu: f64, best_mu: f64) -> bool;
}

/// The no-op control: observe nothing, never cancel. `run_typeN_on`
/// delegates to `run_typeN_ctl` with this, so the pre-existing entry points
/// are bit-for-bit unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct FreeRun;

impl RunControl for FreeRun {
    fn keep_going(&self, _iteration: usize, _mu: f64, _best_mu: f64) -> bool {
        true
    }
}

/// A shareable cancellation flag: any thread may call [`CancelToken::cancel`]
/// and the run stops at its next iteration boundary. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; the run stops before its next iteration.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

impl RunControl for CancelToken {
    fn keep_going(&self, _iteration: usize, _mu: f64, _best_mu: f64) -> bool {
        !self.is_cancelled()
    }
}

/// Combines a cancellation token with a progress callback — the shape the
/// job engine uses: the callback streams µ-checkpoints to a client while the
/// token remains the jobs' cancellation lever.
pub struct ObservedRun<'a> {
    token: &'a CancelToken,
    observer: Box<dyn Fn(usize, f64, f64) + Sync + Send + 'a>,
}

impl<'a> ObservedRun<'a> {
    /// A control that invokes `observer(iteration, mu, best_mu)` after every
    /// iteration and stops when `token` is cancelled.
    pub fn new(
        token: &'a CancelToken,
        observer: impl Fn(usize, f64, f64) + Sync + Send + 'a,
    ) -> Self {
        ObservedRun {
            token,
            observer: Box::new(observer),
        }
    }
}

impl RunControl for ObservedRun<'_> {
    fn keep_going(&self, iteration: usize, mu: f64, best_mu: f64) -> bool {
        (self.observer)(iteration, mu, best_mu);
        !self.token.is_cancelled()
    }
}

/// A control that stops the run after iteration `cancel_after` completes —
/// the deterministic cancellation point the job-schedule proptests replay
/// against the serial oracle (both sides truncate at the same boundary, so
/// even cancelled trajectories compare bitwise).
#[derive(Debug, Clone, Copy)]
pub struct CancelAfter(pub usize);

impl RunControl for CancelAfter {
    fn keep_going(&self, iteration: usize, _mu: f64, _best_mu: f64) -> bool {
        iteration < self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn free_run_never_stops() {
        for i in 0..10 {
            assert!(FreeRun.keep_going(i, 0.0, 0.0));
        }
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(a.keep_going(0, 0.1, 0.1));
        b.cancel();
        assert!(!a.keep_going(1, 0.1, 0.1));
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn observed_run_sees_every_iteration_and_honours_the_token() {
        let token = CancelToken::new();
        let seen = Mutex::new(Vec::new());
        let control = ObservedRun::new(&token, |i, mu, best| {
            seen.lock().unwrap().push((i, mu, best));
        });
        assert!(control.keep_going(0, 0.25, 0.25));
        assert!(control.keep_going(1, 0.5, 0.5));
        token.cancel();
        // The observer still sees the boundary the cancellation lands on.
        assert!(!control.keep_going(2, 0.4, 0.5));
        assert_eq!(
            *seen.lock().unwrap(),
            vec![(0, 0.25, 0.25), (1, 0.5, 0.5), (2, 0.4, 0.5)]
        );
    }

    #[test]
    fn cancel_after_stops_exactly_at_its_boundary() {
        let control = CancelAfter(2);
        assert!(control.keep_going(0, 0.0, 0.0));
        assert!(control.keep_going(1, 0.0, 0.0));
        assert!(!control.keep_going(2, 0.0, 0.0));
    }
}
