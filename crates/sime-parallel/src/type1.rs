//! Type I — low-level parallelization (distributed cost & goodness
//! evaluation).
//!
//! Following Figures 2 and 3 of the paper, every iteration proceeds as:
//!
//! 1. the master broadcasts the current placement to all slaves,
//! 2. every processor (master included) computes the partial costs and the
//!    goodness of the cells in its partition — the partition is by cells, so
//!    nets spanning partitions are evaluated by several processors
//!    (duplicate work), and cells' goodness needs the wirelength of fan-in
//!    nets, which is what forces those duplicates,
//! 3. the slaves send their partial goodness vectors back to the master,
//! 4. the master runs Selection and Allocation exactly as the serial
//!    algorithm does, via [`SimEEngine::select_and_allocate`].
//!
//! Because the search operators run unchanged on the master with the gathered
//! goodness vector — which is bitwise identical to a serial evaluation — the
//! search trajectory and the final solution quality are identical to the
//! serial algorithm; only the runtime differs. The modeled runtime comes from
//! a [`ClusterTimeline`]; under the `Threaded` backend the per-partition
//! evaluation tasks of step 2 additionally run on real OS threads.
//!
//! ```
//! use cluster_sim::timeline::ClusterConfig;
//! use sime_core::engine::{SimEConfig, SimEEngine};
//! use sime_parallel::exec::Threaded;
//! use sime_parallel::type1::{run_type1, run_type1_on, Type1Config};
//! use std::sync::Arc;
//! use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
//! use vlsi_place::cost::Objectives;
//!
//! let netlist = Arc::new(
//!     CircuitGenerator::new(GeneratorConfig::sized("type1_doc", 120, 1)).generate(),
//! );
//! let engine = SimEEngine::new(netlist, SimEConfig::fast(Objectives::WirelengthPower, 6, 3));
//! let config = Type1Config { ranks: 3, iterations: 3 };
//! let modeled = run_type1(&engine, ClusterConfig::paper_cluster(3), config);
//! let threaded = run_type1_on(&engine, ClusterConfig::paper_cluster(3), config, &Threaded::new(2));
//! // The determinism contract: backends agree bit for bit.
//! assert_eq!(modeled.best_mu().to_bits(), threaded.best_mu().to_bits());
//! assert_eq!(modeled.modeled_seconds, threaded.modeled_seconds);
//! ```

use crate::control::{FreeRun, RunControl};
use crate::exec::{ExecBackend, Modeled, Task};
use crate::report::{
    partition_evaluation_workload, StrategyOutcome, BYTES_PER_CELL, BYTES_PER_GOODNESS,
};
use cluster_sim::machine::Workload;
use cluster_sim::timeline::{ClusterConfig, ClusterTimeline};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sime_core::engine::SimEEngine;
use sime_core::parallel::{chunk_ranges, EvalContext};
use sime_core::profile::ProfileReport;
use std::sync::Arc;
use std::time::Instant;
use vlsi_netlist::CellId;
use vlsi_place::layout::Placement;

/// Configuration of a Type I run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Type1Config {
    /// Number of processors (master + slaves), 2–5 in the paper.
    pub ranks: usize,
    /// Number of SimE iterations.
    pub iterations: usize,
}

/// Reusable buffers for one partition's evaluation task: the sparse
/// net-length buffer and its fill mask. One instance per simulated slave,
/// moved into the slave's task at fan-out and returned with its result, so
/// the per-iteration evaluation stays allocation-free (matching the E7
/// kernel discipline on the serial path).
struct EvalScratch {
    lengths: Vec<f64>,
    filled: Vec<bool>,
    /// Per-chunk goodness output buffers of the intra-rank parallel read-off
    /// (reused across iterations, like the engine's `SimEScratch`).
    chunk_goodness: Vec<Vec<f64>>,
}

impl EvalScratch {
    fn new(num_nets: usize) -> Self {
        EvalScratch {
            lengths: vec![0.0; num_nets],
            filled: vec![false; num_nets],
            chunk_goodness: Vec::new(),
        }
    }
}

/// What one slave's evaluation task sends back: the partition's combined
/// goodness values and the slave's reusable buffers.
type EvalOutput = (Vec<f64>, EvalScratch);

/// Computes the combined goodness of one cell partition under `placement` —
/// the work one Type I processor performs in step 2 of every iteration.
///
/// Fills a sparse net-length buffer with exactly the nets the partition's
/// cells depend on (incident nets, plus the nets of stored critical paths
/// through the cells when the delay objective is active) using the same
/// per-net estimator as the full evaluation, then reads each cell's goodness
/// off that buffer. The result is bitwise identical to the corresponding
/// entries of a dense [`GoodnessEvaluator::all_goodness`] pass — the property
/// the Type I determinism argument rests on.
///
/// [`GoodnessEvaluator::all_goodness`]: vlsi_place::goodness::GoodnessEvaluator::all_goodness
pub fn partition_goodness(
    engine: &SimEEngine,
    placement: &Placement,
    cells: &[CellId],
) -> Vec<f64> {
    let mut scratch = EvalScratch::new(engine.evaluator().netlist().num_nets());
    partition_goodness_with(
        engine,
        placement,
        cells,
        &mut scratch,
        &EvalContext::serial(),
    )
}

/// [`partition_goodness`] over caller-owned buffers (the allocation-free
/// variant the strategy loop uses). Stale `lengths` entries from earlier
/// calls are never read: every net a cell's goodness touches is (re)filled
/// for the current placement before the goodness pass.
///
/// Under a chunked [`EvalContext`] the sparse net-length fill stays serial
/// (it deduplicates through the `filled` mask) and the per-cell goodness
/// read-off fans out in index-contiguous chunks of the partition, merged in
/// chunk order — bitwise identical to the serial read-off for any chunk
/// count (DESIGN.md §4, intra-rank extension).
fn partition_goodness_with(
    engine: &SimEEngine,
    placement: &Placement,
    cells: &[CellId],
    scratch: &mut EvalScratch,
    ctx: &EvalContext<'_>,
) -> Vec<f64> {
    let goodness = engine.goodness();
    let evaluator = goodness.evaluator();
    let netlist = evaluator.netlist();
    scratch.filled.fill(false);
    for &cell in cells {
        for &net in netlist.nets_of_cell(cell) {
            if !scratch.filled[net.index()] {
                scratch.filled[net.index()] = true;
                scratch.lengths[net.index()] = evaluator.net_length(placement, net);
            }
        }
        for &pi in goodness.paths_of_cell(cell) {
            for &net in &evaluator.paths()[pi as usize].nets {
                if !scratch.filled[net.index()] {
                    scratch.filled[net.index()] = true;
                    scratch.lengths[net.index()] = evaluator.net_length(placement, net);
                }
            }
        }
    }
    match ctx.fan_out() {
        None => cells
            .iter()
            .map(|&cell| {
                goodness
                    .cell_goodness_from_lengths(cell, &scratch.lengths)
                    .combined
            })
            .collect(),
        Some((pool, chunks)) => {
            let ranges = chunk_ranges(cells.len(), chunks);
            if scratch.chunk_goodness.len() < ranges.len() {
                scratch.chunk_goodness.resize_with(ranges.len(), Vec::new);
            }
            let lengths: &[f64] = &scratch.lengths;
            let chunks_used = ranges.len();
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = scratch.chunk_goodness[..chunks_used]
                .iter_mut()
                .zip(ranges)
                .map(|(buf, range)| {
                    Box::new(move || {
                        buf.clear();
                        buf.extend(cells[range].iter().map(|&cell| {
                            goodness.cell_goodness_from_lengths(cell, lengths).combined
                        }));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped_tasks(tasks);
            let mut out = Vec::with_capacity(cells.len());
            for buf in &scratch.chunk_goodness[..chunks_used] {
                out.extend_from_slice(buf);
            }
            out
        }
    }
}

/// Runs the Type I parallel SimE strategy on the default [`Modeled`] backend.
///
/// The engine's RNG seed determines the (serial-equivalent) search
/// trajectory; `cluster` describes the simulated machine.
pub fn run_type1(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type1Config,
) -> StrategyOutcome {
    run_type1_on(engine, cluster, config, &Modeled)
}

/// Runs the Type I parallel SimE strategy on an explicit execution backend.
///
/// Both backends produce bitwise-identical outcomes (see the determinism
/// contract in [`crate::exec`]); the threaded backend executes the
/// per-partition evaluation tasks on real OS threads.
pub fn run_type1_on(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type1Config,
    backend: &dyn ExecBackend,
) -> StrategyOutcome {
    run_type1_ctl(engine, cluster, config, backend, &FreeRun)
}

/// [`run_type1_on`] with a [`RunControl`]: the control observes every
/// completed iteration and may end the run at that boundary (see the
/// [`crate::control`] docs for the exact call point and the prefix-bitwise
/// guarantee). [`StrategyOutcome::iterations`] reports the iterations that
/// actually ran.
pub fn run_type1_ctl(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type1Config,
    backend: &dyn ExecBackend,
    control: &dyn RunControl,
) -> StrategyOutcome {
    assert!(
        config.ranks >= 2,
        "Type I needs a master and at least one slave"
    );
    assert_eq!(
        cluster.ranks, config.ranks,
        "cluster configuration and strategy configuration disagree on the rank count"
    );
    let started = Instant::now();
    let executor = backend.executor();
    let pool = executor.pool();
    let eval_chunks = executor.effective_eval_chunks(backend);

    let netlist = engine.evaluator().netlist().clone();
    let num_cells = netlist.num_cells();
    let placement_bytes = BYTES_PER_CELL * num_cells as u64;

    // Static cell partition (contiguous blocks, as in the paper's
    // implementation); the master holds partition 0. Tasks capture the engine
    // behind an Arc so the same closures run inline or on pool threads.
    let shared = Arc::new(engine.clone());
    let cells: Vec<CellId> = netlist.cell_ids().collect();
    let chunk = num_cells.div_ceil(config.ranks);
    let partitions: Vec<Arc<Vec<CellId>>> =
        cells.chunks(chunk).map(|c| Arc::new(c.to_vec())).collect();
    let partition_work: Vec<Workload> = (0..config.ranks)
        .map(|r| {
            partitions
                .get(r)
                .map(|p| partition_evaluation_workload(engine, p))
                .unwrap_or_default()
        })
        .collect();
    let mut eval_scratch: Vec<Option<EvalScratch>> = (0..partitions.len())
        .map(|_| Some(EvalScratch::new(netlist.num_nets())))
        .collect();
    let goodness_bytes: Vec<u64> = (0..config.ranks)
        .map(|r| {
            partitions
                .get(r)
                .map_or(0, |p| p.len() as u64 * BYTES_PER_GOODNESS)
        })
        .collect();

    let mut timeline = ClusterTimeline::new(cluster);
    let mut rng = ChaCha8Rng::seed_from_u64(engine.config().seed);
    let mut placement = engine.initial_placement(&mut rng);
    // The master mutates one placement in place across iterations, so its
    // scratch's net-length cache stays on the delta path.
    let mut scratch = engine.new_scratch();
    let mut goodness = vec![0.0f64; num_cells];

    let mut best_placement = placement.clone();
    let mut best_cost = engine.evaluator().evaluate(&placement);
    let mut mu_history = Vec::with_capacity(config.iterations);

    // Fraction of the allocation's goodness-gain calculations that concern
    // cells outside the master's partition and therefore have to be
    // recomputed at the master (Section 6.1: "additional cost calculations
    // may be required when calculating the goodness gains for those cells
    // which are not the members of partition at the master node").
    let extra_master_fraction = 0.5 * (1.0 - 1.0 / config.ranks as f64);

    for iteration in 0..config.iterations {
        // 1. Broadcast the current placement (binomial tree, as MPI_Bcast in
        //    MPICH 1.x does).
        timeline.broadcast_tree(0, placement_bytes);

        // 2. Distributed evaluation: one task per partition (the duplicates
        //    across partitions are inherent to the partitioning). Each slave
        //    carries its reusable buffers through the task and hands them
        //    back with the result.
        let snapshot = Arc::new(placement.clone());
        let tasks: Vec<Task<EvalOutput>> = partitions
            .iter()
            .zip(eval_scratch.iter_mut())
            .map(|(partition, slot)| {
                let engine = Arc::clone(&shared);
                let snapshot = Arc::clone(&snapshot);
                let partition = Arc::clone(partition);
                let mut scratch = slot.take().expect("evaluation scratch in flight");
                let pool = pool.clone();
                Box::new(move || {
                    let ctx = EvalContext::from_pool(pool.as_deref(), eval_chunks);
                    let part =
                        partition_goodness_with(&engine, &snapshot, &partition, &mut scratch, &ctx);
                    (part, scratch)
                }) as Task<EvalOutput>
            })
            .collect();
        let partial = executor.run_tasks(tasks);
        for (rank, work) in partition_work.iter().enumerate() {
            timeline.charge_compute(rank, work);
        }

        // 3. Gather the partial goodness vectors at the master; partitions
        //    are contiguous chunks in cell-id order, so the merge is a
        //    concatenation in rank order.
        timeline.gather(0, &goodness_bytes);
        let mut next = 0usize;
        for (rank, (part, scratch)) in partial.into_iter().enumerate() {
            goodness[next..next + part.len()].copy_from_slice(&part);
            next += part.len();
            eval_scratch[rank] = Some(scratch);
        }

        // 4. The master runs Selection and Allocation exactly as the serial
        //    algorithm does, driven by the gathered goodness vector. Only the
        //    selection and allocation work is charged to the master, plus the
        //    extra cost recalculations for non-partition cells.
        let mut profile = ProfileReport::new();
        let master_ctx = EvalContext::from_pool(pool.as_deref(), eval_chunks);
        let (selected, alloc_stats) = engine.select_and_allocate_on(
            &mut placement,
            &mut scratch,
            &goodness,
            &mut rng,
            &mut profile,
            &[],
            &[],
            &master_ctx,
        );
        let alloc_evals = alloc_stats.net_evaluations as f64;
        timeline.charge_compute(
            0,
            &Workload {
                net_evaluations: (alloc_evals * (1.0 + extra_master_fraction)) as u64,
                misc_operations: (num_cells + selected * 16) as u64,
            },
        );

        // The post-iteration cost refresh rides the same epoch machinery as
        // the rest of the master's work: the wide delta left by the
        // allocation pass fans its per-net recomputations over the pool
        // (bitwise identical to the serial refresh).
        let cost = engine.cost_with_on(&placement, &mut scratch, &master_ctx);
        mu_history.push(cost.mu);
        if cost.mu > best_cost.mu {
            best_cost = cost;
            best_placement = placement.clone();
        }
        if !control.keep_going(iteration, cost.mu, best_cost.mu) {
            break;
        }
    }

    let iterations_run = mu_history.len();
    StrategyOutcome {
        best_placement,
        best_cost,
        modeled_seconds: timeline.makespan(),
        comm: timeline.stats(),
        iterations: iterations_run,
        mu_history,
        wall_seconds: started.elapsed().as_secs_f64(),
        backend: backend.label(),
        eval_chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Threaded;
    use crate::report::{modeled_serial_seconds, run_serial_baseline};
    use sime_core::engine::SimEConfig;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn engine(iterations: usize) -> SimEEngine {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("type1_test", 150, 7)).generate(),
        );
        SimEEngine::new(
            nl,
            SimEConfig::paper_defaults(Objectives::WirelengthPower, 8, iterations),
        )
    }

    #[test]
    fn type1_quality_matches_serial_quality() {
        // Type I does not change the search behaviour, so with the same seed
        // and iteration count the best quality equals the serial run's.
        let engine = engine(6);
        let serial = engine.run();
        let outcome = run_type1(
            &engine,
            ClusterConfig::paper_cluster(3),
            Type1Config {
                ranks: 3,
                iterations: 6,
            },
        );
        assert!((outcome.best_mu() - serial.best_cost.mu).abs() < 1e-12);
        assert!((outcome.best_cost.wirelength - serial.best_cost.wirelength).abs() < 1e-9);
    }

    #[test]
    fn type1_trajectory_is_bitwise_serial() {
        // Stronger than quality equality: the gathered-goodness master path
        // reproduces the serial per-iteration µ trace to the bit.
        let engine = engine(5);
        let serial = engine.run();
        let outcome = run_type1(
            &engine,
            ClusterConfig::paper_cluster(4),
            Type1Config {
                ranks: 4,
                iterations: 5,
            },
        );
        assert_eq!(serial.history.len(), outcome.mu_history.len());
        for (h, &mu) in serial.history.iter().zip(&outcome.mu_history) {
            assert_eq!(h.mu.to_bits(), mu.to_bits());
        }
    }

    #[test]
    fn type1_backends_agree_bitwise() {
        let engine = engine(4);
        let config = Type1Config {
            ranks: 3,
            iterations: 4,
        };
        let modeled = run_type1(&engine, ClusterConfig::paper_cluster(3), config);
        for workers in [1, 2, 4] {
            let threaded = run_type1_on(
                &engine,
                ClusterConfig::paper_cluster(3),
                config,
                &Threaded::new(workers),
            );
            assert_eq!(threaded.backend, format!("threaded({workers})"));
            assert_eq!(
                modeled.best_cost.mu.to_bits(),
                threaded.best_cost.mu.to_bits()
            );
            assert_eq!(modeled.modeled_seconds, threaded.modeled_seconds);
            assert_eq!(modeled.comm, threaded.comm);
            for (a, b) in modeled.mu_history.iter().zip(&threaded.mu_history) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn type1_intra_rank_chunks_agree_bitwise() {
        // The EvalParallelism knob must change nothing but wall-clock: the
        // chunked partition read-off and the master's chunked trial scoring
        // reproduce the modeled trajectory to the bit.
        let engine = engine(4);
        let config = Type1Config {
            ranks: 3,
            iterations: 4,
        };
        let modeled = run_type1(&engine, ClusterConfig::paper_cluster(3), config);
        assert_eq!(modeled.eval_chunks, 1);
        for chunks in [2, 4] {
            let intra = run_type1_on(
                &engine,
                ClusterConfig::paper_cluster(3),
                config,
                &Threaded::new(2).with_eval_chunks(chunks),
            );
            assert_eq!(intra.eval_chunks, chunks);
            assert_eq!(intra.backend, format!("threaded(2,ev{chunks})"));
            assert_eq!(modeled.best_cost.mu.to_bits(), intra.best_cost.mu.to_bits());
            assert_eq!(modeled.modeled_seconds, intra.modeled_seconds);
            assert_eq!(modeled.comm, intra.comm);
            for (a, b) in modeled.mu_history.iter().zip(&intra.mu_history) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn partition_goodness_matches_dense_evaluation() {
        let engine = engine(1);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let placement = engine.initial_placement(&mut rng);
        let dense = engine.goodness().all_goodness(&placement);
        let cells: Vec<CellId> = engine.evaluator().netlist().cell_ids().collect();
        for part in cells.chunks(47) {
            let partial = partition_goodness(&engine, &placement, part);
            for (cell, g) in part.iter().zip(partial) {
                assert_eq!(dense[cell.index()].to_bits(), g.to_bits());
            }
        }
    }

    #[test]
    fn type1_is_not_faster_than_serial() {
        // The paper's central Table 1 finding: the modeled parallel runtime
        // is at or above the serial runtime for every processor count.
        let engine = engine(5);
        let baseline = run_serial_baseline(&engine, &ClusterConfig::paper_cluster(2).compute);
        for ranks in 2..=5 {
            let outcome = run_type1(
                &engine,
                ClusterConfig::paper_cluster(ranks),
                Type1Config {
                    ranks,
                    iterations: 5,
                },
            );
            assert!(
                outcome.modeled_seconds >= baseline.modeled_seconds * 0.95,
                "Type I at p={ranks} must not beat serial: {} vs {}",
                outcome.modeled_seconds,
                baseline.modeled_seconds
            );
        }
    }

    #[test]
    fn type1_runtime_is_roughly_flat_in_processor_count() {
        let engine = engine(5);
        let times: Vec<f64> = (2..=5)
            .map(|ranks| {
                run_type1(
                    &engine,
                    ClusterConfig::paper_cluster(ranks),
                    Type1Config {
                        ranks,
                        iterations: 5,
                    },
                )
                .modeled_seconds
            })
            .collect();
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0, f64::max);
        // Table 1 shows essentially flat runtimes across p. On this very
        // small test circuit the per-iteration communication is a larger
        // share of the total than it is on the paper's circuits, so allow a
        // wider band here; the table harness checks the realistic sizes.
        assert!(
            max / min < 1.6,
            "Type I runtimes should be roughly constant across p, got {times:?}"
        );
    }

    #[test]
    fn type1_charges_communication_every_iteration() {
        let engine = engine(4);
        let ranks = 4;
        let outcome = run_type1(
            &engine,
            ClusterConfig::paper_cluster(ranks),
            Type1Config {
                ranks,
                iterations: 4,
            },
        );
        // one broadcast + one gather per iteration, each (ranks-1) messages
        assert_eq!(outcome.comm.messages, (2 * (ranks - 1) * 4) as u64);
        assert!(outcome.comm.bytes > 0);
        assert_eq!(outcome.mu_history.len(), 4);
        assert_eq!(outcome.backend, "modeled");
        assert!(outcome.wall_seconds > 0.0);
    }

    #[test]
    fn modeled_serial_time_is_consistent_between_helpers() {
        let engine = engine(3);
        let baseline = run_serial_baseline(&engine, &ClusterConfig::paper_cluster(2).compute);
        let direct = modeled_serial_seconds(
            &baseline.result.profile,
            &ClusterConfig::paper_cluster(2).compute,
        );
        assert!((baseline.modeled_seconds - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "master and at least one slave")]
    fn rejects_single_rank() {
        let engine = engine(1);
        run_type1(
            &engine,
            ClusterConfig::paper_cluster(1),
            Type1Config {
                ranks: 1,
                iterations: 1,
            },
        );
    }
}
