//! Type I — low-level parallelization (distributed cost & goodness
//! evaluation).
//!
//! Following Figures 2 and 3 of the paper, every iteration proceeds as:
//!
//! 1. the master broadcasts the current placement to all slaves,
//! 2. every processor (master included) computes the partial costs and the
//!    goodness of the cells in its partition — the partition is by cells, so
//!    nets spanning partitions are evaluated by several processors
//!    (duplicate work), and cells' goodness needs the wirelength of fan-in
//!    nets, which is what forces those duplicates,
//! 3. the slaves send their partial goodness vectors back to the master,
//! 4. the master runs Selection and Allocation exactly as the serial
//!    algorithm does.
//!
//! Because the search operators run unchanged on the master, the search
//! trajectory — and therefore the final solution quality — is identical to
//! the serial algorithm; only the runtime differs. The reproduction of
//! Table 1 therefore only needs the modeled runtime, which this module
//! charges to a [`ClusterTimeline`].

use crate::report::{
    partition_evaluation_workload, StrategyOutcome, BYTES_PER_CELL, BYTES_PER_GOODNESS,
};
use cluster_sim::machine::Workload;
use cluster_sim::timeline::{ClusterConfig, ClusterTimeline};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sime_core::engine::SimEEngine;
use sime_core::profile::ProfileReport;
use vlsi_netlist::CellId;

/// Configuration of a Type I run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Type1Config {
    /// Number of processors (master + slaves), 2–5 in the paper.
    pub ranks: usize,
    /// Number of SimE iterations.
    pub iterations: usize,
}

/// Runs the Type I parallel SimE strategy.
///
/// The engine's RNG seed determines the (serial-equivalent) search
/// trajectory; `cluster` describes the simulated machine.
pub fn run_type1(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type1Config,
) -> StrategyOutcome {
    assert!(config.ranks >= 2, "Type I needs a master and at least one slave");
    assert_eq!(
        cluster.ranks, config.ranks,
        "cluster configuration and strategy configuration disagree on the rank count"
    );

    let netlist = engine.evaluator().netlist().clone();
    let num_cells = netlist.num_cells();
    let placement_bytes = BYTES_PER_CELL * num_cells as u64;

    // Static cell partition (contiguous blocks, as in the paper's
    // implementation); the master holds partition 0.
    let cells: Vec<CellId> = netlist.cell_ids().collect();
    let chunk = num_cells.div_ceil(config.ranks);
    let partitions: Vec<&[CellId]> = cells.chunks(chunk).collect();
    let partition_work: Vec<Workload> = (0..config.ranks)
        .map(|r| {
            partitions
                .get(r)
                .map(|p| partition_evaluation_workload(engine, p))
                .unwrap_or_default()
        })
        .collect();
    let goodness_bytes: Vec<u64> = (0..config.ranks)
        .map(|r| partitions.get(r).map_or(0, |p| p.len() as u64 * BYTES_PER_GOODNESS))
        .collect();

    let mut timeline = ClusterTimeline::new(cluster);
    let mut rng = ChaCha8Rng::seed_from_u64(engine.config().seed);
    let mut placement = engine.initial_placement(&mut rng);
    // The master mutates one placement in place across iterations, so its
    // scratch's net-length cache stays on the delta path.
    let mut scratch = engine.new_scratch();

    let mut best_placement = placement.clone();
    let mut best_cost = engine.evaluator().evaluate(&placement);
    let mut mu_history = Vec::with_capacity(config.iterations);

    // Fraction of the allocation's goodness-gain calculations that concern
    // cells outside the master's partition and therefore have to be
    // recomputed at the master (Section 6.1: "additional cost calculations
    // may be required when calculating the goodness gains for those cells
    // which are not the members of partition at the master node").
    let extra_master_fraction = 0.5 * (1.0 - 1.0 / config.ranks as f64);

    for _ in 0..config.iterations {
        // 1. Broadcast the current placement (binomial tree, as MPI_Bcast in
        //    MPICH 1.x does).
        timeline.broadcast_tree(0, placement_bytes);

        // 2. Distributed evaluation (every rank evaluates its partition; the
        //    duplicates across partitions are inherent to the partitioning).
        for (rank, work) in partition_work.iter().enumerate() {
            timeline.charge_compute(rank, work);
        }

        // 3. Gather the partial goodness vectors at the master.
        timeline.gather(0, &goodness_bytes);

        // 4. The master runs the serial iteration (selection + allocation).
        //    The evaluation inside `iterate` recomputes what the slaves
        //    produced; its cost is *not* charged to the master — only the
        //    selection and allocation work is, plus the extra cost
        //    recalculations for non-partition cells.
        let mut profile = ProfileReport::new();
        let (_avg_goodness, selected, alloc_stats) =
            engine.iterate(&mut placement, &mut scratch, &mut rng, &mut profile, &[], &[]);
        let alloc_evals = alloc_stats.net_evaluations as f64;
        timeline.charge_compute(
            0,
            &Workload {
                net_evaluations: (alloc_evals * (1.0 + extra_master_fraction)) as u64,
                misc_operations: (num_cells + selected * 16) as u64,
            },
        );

        let cost = engine.cost_with(&placement, &mut scratch);
        mu_history.push(cost.mu);
        if cost.mu > best_cost.mu {
            best_cost = cost;
            best_placement = placement.clone();
        }
    }

    StrategyOutcome {
        best_placement,
        best_cost,
        modeled_seconds: timeline.makespan(),
        comm: timeline.stats(),
        iterations: config.iterations,
        mu_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{modeled_serial_seconds, run_serial_baseline};
    use sime_core::engine::SimEConfig;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn engine(iterations: usize) -> SimEEngine {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("type1_test", 150, 7)).generate(),
        );
        SimEEngine::new(
            nl,
            SimEConfig::paper_defaults(Objectives::WirelengthPower, 8, iterations),
        )
    }

    #[test]
    fn type1_quality_matches_serial_quality() {
        // Type I does not change the search behaviour, so with the same seed
        // and iteration count the best quality equals the serial run's.
        let engine = engine(6);
        let serial = engine.run();
        let outcome = run_type1(
            &engine,
            ClusterConfig::paper_cluster(3),
            Type1Config {
                ranks: 3,
                iterations: 6,
            },
        );
        assert!((outcome.best_mu() - serial.best_cost.mu).abs() < 1e-12);
        assert!((outcome.best_cost.wirelength - serial.best_cost.wirelength).abs() < 1e-9);
    }

    #[test]
    fn type1_is_not_faster_than_serial() {
        // The paper's central Table 1 finding: the modeled parallel runtime
        // is at or above the serial runtime for every processor count.
        let engine = engine(5);
        let baseline = run_serial_baseline(&engine, &ClusterConfig::paper_cluster(2).compute);
        for ranks in 2..=5 {
            let outcome = run_type1(
                &engine,
                ClusterConfig::paper_cluster(ranks),
                Type1Config {
                    ranks,
                    iterations: 5,
                },
            );
            assert!(
                outcome.modeled_seconds >= baseline.modeled_seconds * 0.95,
                "Type I at p={ranks} must not beat serial: {} vs {}",
                outcome.modeled_seconds,
                baseline.modeled_seconds
            );
        }
    }

    #[test]
    fn type1_runtime_is_roughly_flat_in_processor_count() {
        let engine = engine(5);
        let times: Vec<f64> = (2..=5)
            .map(|ranks| {
                run_type1(
                    &engine,
                    ClusterConfig::paper_cluster(ranks),
                    Type1Config {
                        ranks,
                        iterations: 5,
                    },
                )
                .modeled_seconds
            })
            .collect();
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0, f64::max);
        // Table 1 shows essentially flat runtimes across p. On this very
        // small test circuit the per-iteration communication is a larger
        // share of the total than it is on the paper's circuits, so allow a
        // wider band here; the table harness checks the realistic sizes.
        assert!(
            max / min < 1.6,
            "Type I runtimes should be roughly constant across p, got {times:?}"
        );
    }

    #[test]
    fn type1_charges_communication_every_iteration() {
        let engine = engine(4);
        let ranks = 4;
        let outcome = run_type1(
            &engine,
            ClusterConfig::paper_cluster(ranks),
            Type1Config {
                ranks,
                iterations: 4,
            },
        );
        // one broadcast + one gather per iteration, each (ranks-1) messages
        assert_eq!(outcome.comm.messages, (2 * (ranks - 1) * 4) as u64);
        assert!(outcome.comm.bytes > 0);
        assert_eq!(outcome.mu_history.len(), 4);
    }

    #[test]
    fn modeled_serial_time_is_consistent_between_helpers() {
        let engine = engine(3);
        let baseline = run_serial_baseline(&engine, &ClusterConfig::paper_cluster(2).compute);
        let direct = modeled_serial_seconds(
            &baseline.result.profile,
            &ClusterConfig::paper_cluster(2).compute,
        );
        assert!((baseline.modeled_seconds - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "master and at least one slave")]
    fn rejects_single_rank() {
        let engine = engine(1);
        run_type1(
            &engine,
            ClusterConfig::paper_cluster(1),
            Type1Config {
                ranks: 1,
                iterations: 1,
            },
        );
    }
}
