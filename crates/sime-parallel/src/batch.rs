//! Scenario batch driver and golden-trajectory fingerprints.
//!
//! The scenario matrix is the cross-product
//! `{circuit} × {strategy Type I/II/III} × {backend Modeled/Threaded} ×
//! {worker count} × {objective mix}`. This module provides the three pieces
//! every surface that walks that matrix (the `scenario_matrix` binary, the
//! root `golden_suite` regression test, future scaling studies) shares:
//!
//! * [`ScenarioSpec`] — one fully pinned cell of the matrix. The **backend**
//!   axis (`workers`) is deliberately excluded from the scenario identity
//!   ([`ScenarioSpec::id`]): the PR 3 determinism contract promises backends
//!   and worker counts change nothing but wall-clock, so every backend of a
//!   cell shares one golden fingerprint — and the golden suite *checks* that
//!   promise instead of assuming it.
//! * [`BatchDriver`] — runs cells while reusing the expensive per-circuit
//!   state: the netlist is generated once per circuit and the engine (cost
//!   evaluator CSR tables, extracted critical paths, goodness evaluator) is
//!   built once per `(circuit, objectives)` and shared by every strategy,
//!   backend and worker count that visits it. Per-worker scratch spaces are
//!   created inside the strategy drivers as always.
//! * [`TrajectoryFingerprint`] — the replayable digest of one run: the final
//!   cost bits, the µ(s) trajectory bits at fixed checkpoint iterations, a
//!   hash of the full µ trajectory and a hash of the best placement (the
//!   product of every Selection/Allocation decision the run made). Two runs
//!   produce equal fingerprints iff they made bitwise-identical decisions,
//!   which is exactly the determinism contract of `DESIGN.md` §4 turned into
//!   a comparable value. Fingerprints serialise to a line-oriented text form
//!   ([`TrajectoryFingerprint::to_text`]) that is checked into
//!   `tests/golden/` and replayed by the `golden_suite` integration test.

use crate::exec::{ExecBackend, Modeled, Threaded};
use crate::portfolio::PortfolioMix;
use crate::report::StrategyOutcome;
use crate::type2::RowPattern;
use sime_core::engine::SimEEngine;
use std::sync::Arc;
use vlsi_netlist::bench_suite::SuiteCircuit;
use vlsi_netlist::Netlist;
use vlsi_place::cost::Objectives;

/// Which parallel strategy a scenario cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Type I — distributed cost/goodness evaluation.
    Type1,
    /// Type II — row-domain decomposition with the given row pattern.
    Type2(RowPattern),
    /// Type III — cooperating parallel searches.
    Type3,
    /// Island-model optimizer portfolio with the given composition mix.
    Portfolio(PortfolioMix),
}

impl StrategyKind {
    /// The strategies of the standard matrix: Type I, Type II in **both**
    /// row patterns (the fixed Kling & Banerjee pattern and the authors'
    /// random variant — the paper's Tables 2 and 3 compare them side by
    /// side, so the matrix must sweep both), and Type III. The portfolio
    /// strategies are swept separately by the `scenario_matrix` grid — they
    /// race different optimizers rather than organise one.
    pub const MATRIX: [StrategyKind; 4] = [
        StrategyKind::Type1,
        StrategyKind::Type2(RowPattern::Fixed),
        StrategyKind::Type2(RowPattern::Random),
        StrategyKind::Type3,
    ];

    /// Stable label used in scenario ids and golden files.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Type1 => "type1",
            StrategyKind::Type2(RowPattern::Fixed) => "type2_fixed",
            StrategyKind::Type2(RowPattern::Random) => "type2_random",
            StrategyKind::Type3 => "type3",
            StrategyKind::Portfolio(PortfolioMix::Mixed) => "portfolio_mixed",
            StrategyKind::Portfolio(PortfolioMix::Baselines) => "portfolio_baselines",
        }
    }

    /// Parses the label produced by [`StrategyKind::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "type1" => Some(StrategyKind::Type1),
            "type2_fixed" => Some(StrategyKind::Type2(RowPattern::Fixed)),
            "type2_random" => Some(StrategyKind::Type2(RowPattern::Random)),
            "type3" => Some(StrategyKind::Type3),
            "portfolio_mixed" => Some(StrategyKind::Portfolio(PortfolioMix::Mixed)),
            "portfolio_baselines" => Some(StrategyKind::Portfolio(PortfolioMix::Baselines)),
            _ => None,
        }
    }

    /// The smallest rank count the strategy accepts (Type I needs a master
    /// and a slave; Type III a store and two workers; a portfolio needs two
    /// islands).
    pub fn min_ranks(self) -> usize {
        match self {
            StrategyKind::Type1 | StrategyKind::Type2(_) | StrategyKind::Portfolio(_) => 2,
            StrategyKind::Type3 => 3,
        }
    }
}

/// Short stable label for an objective mix (used in scenario ids and golden
/// files; the long form is [`Objectives::label`]).
pub fn objectives_tag(objectives: Objectives) -> &'static str {
    match objectives {
        Objectives::WirelengthPower => "wp",
        Objectives::WirelengthPowerDelay => "wpd",
    }
}

/// Parses both the short tag and the long label of an objective mix.
pub fn objectives_from_tag(tag: &str) -> Option<Objectives> {
    match tag {
        "wp" | "wirelength+power" => Some(Objectives::WirelengthPower),
        "wpd" | "wirelength+power+delay" => Some(Objectives::WirelengthPowerDelay),
        _ => None,
    }
}

/// One fully pinned cell of the scenario matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Suite circuit name (resolved through [`SuiteCircuit::from_name`]).
    pub circuit: String,
    /// Strategy to run.
    pub strategy: StrategyKind,
    /// Simulated rank count (processors of the modeled cluster).
    pub ranks: usize,
    /// SimE iterations per processor.
    pub iterations: usize,
    /// Objective mix.
    pub objectives: Objectives,
    /// Execution backend: `None` → [`Modeled`], `Some(n)` → [`Threaded`]
    /// with `n` OS workers. Not part of the scenario identity — see the
    /// [module docs](self).
    pub workers: Option<usize>,
    /// Intra-rank `EvalParallelism` chunks (1 = serial; only consulted on the
    /// threaded backend). Like `workers`, **not** part of the scenario
    /// identity: the intra-rank determinism contract promises chunk counts
    /// change nothing but wall-clock, and the golden suite checks exactly
    /// that promise.
    pub eval_chunks: usize,
    /// Warm-start tag: `None` starts from the usual random deal, `Some(tag)`
    /// starts from a named `.pl` placement resolved by the job runner (the
    /// builtin `"rr"` round-robin layout, or a placement registered with
    /// [`crate::jobs::JobRunner::register_placement`]). Part of the scenario
    /// identity — a warm-started trajectory is a different trajectory.
    pub warm_start: Option<String>,
}

impl ScenarioSpec {
    /// Stable scenario identity: every field except the execution backend
    /// (worker count *and* intra-rank chunk count). Used as the golden-file
    /// stem and the JSON record key.
    pub fn id(&self) -> String {
        let mut id = format!(
            "{}.{}.r{}.i{}.{}",
            self.circuit,
            self.strategy.label(),
            self.ranks,
            self.iterations,
            objectives_tag(self.objectives)
        );
        if let Some(tag) = &self.warm_start {
            id.push_str(&format!(".warm-{tag}"));
        }
        id
    }

    /// The backend this spec asks for.
    pub fn backend(&self) -> Box<dyn ExecBackend> {
        match self.workers {
            None => Box::new(Modeled),
            Some(n) => Box::new(Threaded::new(n).with_eval_chunks(self.eval_chunks)),
        }
    }

    /// The same scenario on a different backend (same identity, same golden
    /// fingerprint under the determinism contract).
    pub fn on_workers(&self, workers: Option<usize>) -> ScenarioSpec {
        ScenarioSpec {
            workers,
            ..self.clone()
        }
    }

    /// The same scenario with a different intra-rank chunk count (same
    /// identity, same golden fingerprint under the intra-rank determinism
    /// contract). Only meaningful together with a threaded backend.
    pub fn with_eval_chunks(&self, eval_chunks: usize) -> ScenarioSpec {
        ScenarioSpec {
            eval_chunks: eval_chunks.max(1),
            ..self.clone()
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a over 64-bit words (the hash behind the placement and
/// trajectory digests; chosen for stability — it is defined by the algorithm,
/// not by a library version).
fn fnv1a_u64(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The iteration checkpoints fingerprints sample: powers of two plus the
/// final iteration, capped to the history length.
pub fn checkpoint_iterations(history_len: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 1usize;
    while i <= history_len {
        out.push(i - 1);
        i *= 2;
    }
    if history_len > 0 && out.last() != Some(&(history_len - 1)) {
        out.push(history_len - 1);
    }
    out
}

/// Replayable digest of one scenario run. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryFingerprint {
    /// `f64::to_bits` of the best µ(s).
    pub final_mu_bits: u64,
    /// `f64::to_bits` of the best placement's wirelength cost.
    pub final_wirelength_bits: u64,
    /// `f64::to_bits` of the best placement's power cost.
    pub final_power_bits: u64,
    /// `f64::to_bits` of the best placement's delay cost (0.0 when delay is
    /// not optimised).
    pub final_delay_bits: u64,
    /// `(iteration, µ(s) bits)` at the fixed checkpoints of
    /// [`checkpoint_iterations`].
    pub mu_checkpoints: Vec<(usize, u64)>,
    /// FNV-1a over every µ(s) value of the run, in order.
    pub trajectory_hash: u64,
    /// FNV-1a over the best placement (row boundaries + cell order) — the
    /// accumulated product of every Selection/Allocation decision.
    pub placement_hash: u64,
}

impl TrajectoryFingerprint {
    /// Fingerprints a finished run.
    pub fn from_outcome(outcome: &StrategyOutcome) -> Self {
        let mut trajectory_hash = FNV_OFFSET;
        for mu in &outcome.mu_history {
            trajectory_hash = fnv1a_u64(trajectory_hash, mu.to_bits());
        }
        let placement = &outcome.best_placement;
        let mut ph = FNV_OFFSET;
        for row in 0..placement.num_rows() {
            // Row separator, then the exact cell order.
            ph = fnv1a_u64(ph, u64::MAX);
            for &cell in placement.row(row) {
                ph = fnv1a_u64(ph, cell.index() as u64);
            }
        }
        TrajectoryFingerprint {
            final_mu_bits: outcome.best_cost.mu.to_bits(),
            final_wirelength_bits: outcome.best_cost.wirelength.to_bits(),
            final_power_bits: outcome.best_cost.power.to_bits(),
            final_delay_bits: outcome.best_cost.delay.to_bits(),
            mu_checkpoints: checkpoint_iterations(outcome.mu_history.len())
                .into_iter()
                .map(|i| (i, outcome.mu_history[i].to_bits()))
                .collect(),
            trajectory_hash,
            placement_hash: ph,
        }
    }

    /// Serialises the fingerprint (with its scenario header) to the golden
    /// file format: line-oriented `key value` pairs, `#` comments, stable
    /// across versions via the leading format tag.
    pub fn to_text(&self, spec: &ScenarioSpec) -> String {
        let mut out = String::new();
        out.push_str("# golden trajectory fingerprint v1\n");
        out.push_str(&format!("scenario {}\n", spec.id()));
        out.push_str(&format!("circuit {}\n", spec.circuit));
        out.push_str(&format!("strategy {}\n", spec.strategy.label()));
        out.push_str(&format!("ranks {}\n", spec.ranks));
        out.push_str(&format!("iterations {}\n", spec.iterations));
        out.push_str(&format!("objectives {}\n", objectives_tag(spec.objectives)));
        if let Some(tag) = &spec.warm_start {
            out.push_str(&format!("warm_start {tag}\n"));
        }
        out.push_str(&format!("final_mu_bits {:#018x}\n", self.final_mu_bits));
        out.push_str(&format!(
            "final_wirelength_bits {:#018x}\n",
            self.final_wirelength_bits
        ));
        out.push_str(&format!(
            "final_power_bits {:#018x}\n",
            self.final_power_bits
        ));
        out.push_str(&format!(
            "final_delay_bits {:#018x}\n",
            self.final_delay_bits
        ));
        for (iter, bits) in &self.mu_checkpoints {
            out.push_str(&format!("mu_bits {iter} {bits:#018x}\n"));
        }
        out.push_str(&format!("trajectory_hash {:#018x}\n", self.trajectory_hash));
        out.push_str(&format!("placement_hash {:#018x}\n", self.placement_hash));
        out
    }

    /// Field-by-field difference against another fingerprint: one line per
    /// changed field, `<field>: <old> -> <new>` (bits in hex). Empty when the
    /// fingerprints are equal. This is what `scenario_matrix --bless` prints
    /// before overwriting a golden, so an intentional re-bless documents
    /// exactly which parts of the trajectory moved instead of silently
    /// replacing the file.
    pub fn diff(&self, new: &TrajectoryFingerprint) -> Vec<String> {
        let mut out = Vec::new();
        let mut field = |name: &str, old: u64, new: u64| {
            if old != new {
                out.push(format!("{name}: {old:#018x} -> {new:#018x}"));
            }
        };
        field("final_mu_bits", self.final_mu_bits, new.final_mu_bits);
        field(
            "final_wirelength_bits",
            self.final_wirelength_bits,
            new.final_wirelength_bits,
        );
        field(
            "final_power_bits",
            self.final_power_bits,
            new.final_power_bits,
        );
        field(
            "final_delay_bits",
            self.final_delay_bits,
            new.final_delay_bits,
        );
        field("trajectory_hash", self.trajectory_hash, new.trajectory_hash);
        field("placement_hash", self.placement_hash, new.placement_hash);
        if self.mu_checkpoints.len() != new.mu_checkpoints.len() {
            out.push(format!(
                "mu_checkpoints: {} entries -> {} entries",
                self.mu_checkpoints.len(),
                new.mu_checkpoints.len()
            ));
        }
        for ((old_iter, old_bits), (new_iter, new_bits)) in
            self.mu_checkpoints.iter().zip(&new.mu_checkpoints)
        {
            if old_iter != new_iter {
                out.push(format!(
                    "mu_bits checkpoint moved: iteration {old_iter} -> {new_iter}"
                ));
            } else if old_bits != new_bits {
                out.push(format!(
                    "mu_bits[{old_iter}]: {old_bits:#018x} -> {new_bits:#018x}"
                ));
            }
        }
        out
    }

    /// Parses a golden file: the scenario spec (always on the [`Modeled`]
    /// backend — the golden identity is backend-free) and the fingerprint.
    pub fn parse_text(text: &str) -> Result<(ScenarioSpec, TrajectoryFingerprint), String> {
        let mut circuit = None;
        let mut strategy = None;
        let mut ranks = None;
        let mut iterations = None;
        let mut objectives = None;
        let mut warm_start = None;
        let mut final_mu_bits = None;
        let mut final_wirelength_bits = None;
        let mut final_power_bits = None;
        let mut final_delay_bits = None;
        let mut trajectory_hash = None;
        let mut placement_hash = None;
        let mut mu_checkpoints = Vec::new();

        let parse_u64 = |tok: &str| -> Result<u64, String> {
            let tok = tok.trim();
            if let Some(hex) = tok.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).map_err(|e| format!("bad hex `{tok}`: {e}"))
            } else {
                tok.parse::<u64>()
                    .map_err(|e| format!("bad number `{tok}`: {e}"))
            }
        };

        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let (key, rest) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("line {lineno}: missing value for `{line}`"))?;
            let rest = rest.trim();
            let ctx = |e: String| format!("line {lineno}: {e}");
            match key {
                "scenario" => {} // informative only; rebuilt from the fields
                "circuit" => circuit = Some(rest.to_string()),
                "strategy" => {
                    strategy = Some(
                        StrategyKind::from_label(rest)
                            .ok_or_else(|| ctx(format!("unknown strategy `{rest}`")))?,
                    )
                }
                "ranks" => ranks = Some(rest.parse().map_err(|_| ctx("bad ranks".into()))?),
                "iterations" => {
                    iterations = Some(rest.parse().map_err(|_| ctx("bad iterations".into()))?)
                }
                "objectives" => {
                    objectives = Some(
                        objectives_from_tag(rest)
                            .ok_or_else(|| ctx(format!("unknown objectives `{rest}`")))?,
                    )
                }
                "warm_start" => warm_start = Some(rest.to_string()),
                "final_mu_bits" => final_mu_bits = Some(parse_u64(rest).map_err(ctx)?),
                "final_wirelength_bits" => {
                    final_wirelength_bits = Some(parse_u64(rest).map_err(ctx)?)
                }
                "final_power_bits" => final_power_bits = Some(parse_u64(rest).map_err(ctx)?),
                "final_delay_bits" => final_delay_bits = Some(parse_u64(rest).map_err(ctx)?),
                "mu_bits" => {
                    let (iter, bits) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| ctx("mu_bits needs `<iteration> <bits>`".into()))?;
                    mu_checkpoints.push((
                        iter.trim()
                            .parse()
                            .map_err(|_| ctx("bad iteration".into()))?,
                        parse_u64(bits).map_err(ctx)?,
                    ));
                }
                "trajectory_hash" => trajectory_hash = Some(parse_u64(rest).map_err(ctx)?),
                "placement_hash" => placement_hash = Some(parse_u64(rest).map_err(ctx)?),
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }

        fn require<T>(name: &str, v: Option<T>) -> Result<T, String> {
            v.ok_or_else(|| format!("missing `{name}`"))
        }
        let spec = ScenarioSpec {
            circuit: require("circuit", circuit)?,
            strategy: require("strategy", strategy)?,
            ranks: require("ranks", ranks)?,
            iterations: require("iterations", iterations)?,
            objectives: require("objectives", objectives)?,
            workers: None,
            eval_chunks: 1,
            warm_start,
        };
        let fingerprint = TrajectoryFingerprint {
            final_mu_bits: require("final_mu_bits", final_mu_bits)?,
            final_wirelength_bits: require("final_wirelength_bits", final_wirelength_bits)?,
            final_power_bits: require("final_power_bits", final_power_bits)?,
            final_delay_bits: require("final_delay_bits", final_delay_bits)?,
            mu_checkpoints,
            trajectory_hash: require("trajectory_hash", trajectory_hash)?,
            placement_hash: require("placement_hash", placement_hash)?,
        };
        Ok((spec, fingerprint))
    }
}

/// One executed cell: the spec, the raw outcome and its fingerprint.
#[derive(Debug, Clone)]
pub struct ScenarioRecord {
    /// The cell that was run.
    pub spec: ScenarioSpec,
    /// The strategy outcome (placement, modeled time, comm stats, history).
    pub outcome: StrategyOutcome,
    /// The golden-comparable digest of the run.
    pub fingerprint: TrajectoryFingerprint,
}

impl ScenarioRecord {
    /// One JSON object for the scenario-matrix report (hand-rolled; the
    /// vendored serde is a no-op shim).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scenario\": \"{id}\", \"circuit\": \"{circuit}\", \
             \"strategy\": \"{strategy}\", \"ranks\": {ranks}, \
             \"iterations\": {iters}, \"objectives\": \"{obj}\", \
             \"backend\": \"{backend}\", \"eval_chunks\": {chunks}, \
             \"best_mu\": {mu:.6}, \
             \"modeled_seconds\": {modeled:.4}, \"wall_seconds\": {wall:.4}, \
             \"comm_messages\": {msgs}, \"comm_bytes\": {bytes}, \
             \"final_mu_bits\": \"{mubits:#018x}\", \
             \"placement_hash\": \"{ph:#018x}\", \
             \"trajectory_hash\": \"{th:#018x}\"}}",
            id = self.spec.id(),
            circuit = self.spec.circuit,
            strategy = self.spec.strategy.label(),
            ranks = self.spec.ranks,
            iters = self.spec.iterations,
            obj = objectives_tag(self.spec.objectives),
            backend = self.outcome.backend,
            chunks = self.outcome.eval_chunks,
            mu = self.outcome.best_cost.mu,
            modeled = self.outcome.modeled_seconds,
            wall = self.outcome.wall_seconds,
            msgs = self.outcome.comm.messages,
            bytes = self.outcome.comm.bytes,
            mubits = self.fingerprint.final_mu_bits,
            ph = self.fingerprint.placement_hash,
            th = self.fingerprint.trajectory_hash,
        )
    }
}

/// Runs scenario cells while reusing per-circuit netlists and per-
/// `(circuit, objectives)` engines across the whole batch.
///
/// Since the job-engine refactor this is a thin `&mut self` façade over the
/// thread-safe [`crate::jobs::JobRunner`] — the batch binaries keep their
/// simple sequential API, the server shares the identical execution path
/// (and therefore the identical fingerprints) through the runner directly.
#[derive(Default)]
pub struct BatchDriver {
    runner: crate::jobs::JobRunner,
}

impl BatchDriver {
    /// An empty driver; circuits are generated (or registered) on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying thread-safe job runner (shared caches, typed errors).
    pub fn runner(&self) -> &crate::jobs::JobRunner {
        &self.runner
    }

    /// Registers a pre-built netlist (e.g. one reloaded from a Bookshelf
    /// dump) under its circuit name, bypassing suite generation. The circuit
    /// still needs a row count the suite knows, so `name` must resolve via
    /// [`SuiteCircuit::from_name`] for specs to run against it.
    pub fn register_netlist(&mut self, netlist: Arc<Netlist>) {
        self.runner.register_netlist(netlist);
    }

    /// The netlist for a suite circuit, generating and caching it on first
    /// use.
    pub fn netlist(&mut self, circuit: SuiteCircuit) -> Arc<Netlist> {
        self.runner
            .netlist(circuit.name())
            .expect("suite circuits always resolve")
            .0
    }

    /// The engine for a `(circuit, objectives)` pair, building and caching
    /// it on first use. Engine construction (CSR cost tables, critical-path
    /// extraction, fuzzy goal calibration) dominates small-run setup time,
    /// which is why it is the unit of reuse.
    pub fn engine(&mut self, circuit: SuiteCircuit, objectives: Objectives) -> Arc<SimEEngine> {
        self.runner
            .engine_for(circuit.name(), objectives, None)
            .expect("suite circuits always resolve")
    }

    /// Runs one cell of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if the spec's circuit is not a suite circuit, or if its rank
    /// count violates the strategy's minimum (see
    /// [`StrategyKind::min_ranks`]). Service layers that need errors instead
    /// of panics use [`crate::jobs::JobRunner::run_job`].
    pub fn run_cell(&mut self, spec: &ScenarioSpec) -> ScenarioRecord {
        match self.runner.run_scenario(spec) {
            Ok(outcome) => outcome.into_record(),
            Err(crate::jobs::JobError::UnknownCircuit(name)) => {
                panic!("unknown suite circuit `{name}`")
            }
            Err(err) => panic!("{err}"),
        }
    }
}

/// Result of comparing run fingerprints against a golden directory.
#[derive(Debug, Clone, Default)]
pub struct GoldenCheck {
    /// How many scenarios had a pinned golden and were actually compared.
    pub checked: usize,
    /// One human-readable line per failure (mismatch, unreadable or
    /// unparsable golden, missing directory, empty intersection). Empty iff
    /// the check passed.
    pub failures: Vec<String>,
}

impl GoldenCheck {
    /// Whether the gate passed: at least one comparison ran and none failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares every entry of `by_id` (scenario id → fresh fingerprint) that
/// has a `<id>.golden` file in `dir`, bitwise.
///
/// Two *absence* cases are hard failures, not green no-ops: a missing or
/// unreadable golden **directory**, and an **empty intersection** (no run
/// scenario matched any golden). Both turn a mistyped `--check` path or a
/// drifted scenario grid into a loud gate failure — without this, a CI job
/// pointed at the wrong directory would pass forever while comparing
/// nothing. This is the library form of `scenario_matrix --check`, shared
/// with the server suite so both gates fail identically.
pub fn check_goldens(
    dir: &std::path::Path,
    by_id: &std::collections::BTreeMap<String, TrajectoryFingerprint>,
) -> GoldenCheck {
    let mut check = GoldenCheck::default();
    if !dir.is_dir() {
        check
            .failures
            .push(format!("golden directory {} does not exist", dir.display()));
        return check;
    }
    for (id, fingerprint) in by_id {
        let path = dir.join(format!("{id}.golden"));
        if !path.exists() {
            continue; // no golden pinned for this cell
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                check
                    .failures
                    .push(format!("cannot read golden {}: {e}", path.display()));
                continue;
            }
        };
        check.checked += 1;
        match TrajectoryFingerprint::parse_text(&text) {
            Ok((_, golden)) if &golden == fingerprint => {}
            Ok((_, golden)) => {
                let mut lines = vec![format!("GOLDEN MISMATCH for {id}:")];
                for change in golden.diff(fingerprint) {
                    lines.push(format!("  {change}"));
                }
                check.failures.push(lines.join("\n"));
            }
            Err(e) => {
                check
                    .failures
                    .push(format!("cannot parse golden {}: {e}", path.display()));
            }
        }
    }
    if check.checked == 0 {
        check.failures.push(format!(
            "no run scenario matched any golden in {} — the gate compared nothing",
            dir.display()
        ));
    }
    check
}

/// The pinned golden subset: the scenarios whose fingerprints are checked
/// into `tests/golden/` and replayed by the `golden_suite` integration test
/// on every push. Small circuits and short runs — the gate must stay cheap —
/// but covering all three SimE strategies (Type II in both row patterns),
/// the island portfolio, both objective mixes, two extended-tier circuits
/// (the `s9234` entry is additionally replayed with intra-rank parallelism
/// at 1/2/4 chunks by the golden suite), one mixed-size circuit with fixed
/// pads and multi-row macros, and one warm-started run replayed from a
/// written `.pl` layout.
pub fn golden_subset() -> Vec<ScenarioSpec> {
    let wp = Objectives::WirelengthPower;
    let wpd = Objectives::WirelengthPowerDelay;
    vec![
        ScenarioSpec {
            circuit: "s1196".into(),
            strategy: StrategyKind::Type1,
            ranks: 3,
            iterations: 5,
            objectives: wp,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        },
        ScenarioSpec {
            circuit: "s1196".into(),
            strategy: StrategyKind::Type2(RowPattern::Random),
            ranks: 3,
            iterations: 5,
            objectives: wp,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        },
        ScenarioSpec {
            circuit: "s1196".into(),
            strategy: StrategyKind::Type3,
            ranks: 3,
            iterations: 5,
            objectives: wp,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        },
        ScenarioSpec {
            circuit: "s1238".into(),
            strategy: StrategyKind::Type2(RowPattern::Fixed),
            ranks: 3,
            iterations: 5,
            objectives: wpd,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        },
        ScenarioSpec {
            circuit: "s1196".into(),
            strategy: StrategyKind::Portfolio(PortfolioMix::Mixed),
            ranks: 4,
            iterations: 4,
            objectives: wp,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        },
        ScenarioSpec {
            circuit: "s5378".into(),
            strategy: StrategyKind::Type2(RowPattern::Random),
            ranks: 4,
            iterations: 3,
            objectives: wp,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        },
        ScenarioSpec {
            circuit: "s5378".into(),
            strategy: StrategyKind::Type2(RowPattern::Fixed),
            ranks: 4,
            iterations: 3,
            objectives: wp,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        },
        ScenarioSpec {
            circuit: "s9234".into(),
            strategy: StrategyKind::Type2(RowPattern::Random),
            ranks: 4,
            iterations: 2,
            objectives: wp,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        },
        // Mixed-size golden: fixed pads and multi-row macros, on the Type II
        // row decomposition so the blocked-span packing and the fixed-cell
        // frozen mask (merged with the row-ownership mask) are both on the
        // pinned trajectory.
        ScenarioSpec {
            circuit: "mix600".into(),
            strategy: StrategyKind::Type2(RowPattern::Random),
            ranks: 3,
            iterations: 4,
            objectives: wp,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        },
        // Warm-start golden: replayed from the builtin round-robin layout,
        // which the runner pushes through the `.pl` writer/parser pipeline —
        // so the pinned fingerprint also certifies the interchange round
        // trip.
        ScenarioSpec {
            circuit: "s1196".into(),
            strategy: StrategyKind::Type1,
            ranks: 3,
            iterations: 5,
            objectives: wp,
            workers: None,
            eval_chunks: 1,
            warm_start: Some("rr".into()),
        },
    ]
}

/// The golden scenarios the suite replays with intra-rank parallelism
/// (chunks 1/2/4 on the threaded backend) in addition to the plain backend
/// sweep: the extended-tier entries, where the intra-rank fan-out actually
/// has work to chunk.
pub fn intra_rank_golden_subset() -> Vec<ScenarioSpec> {
    golden_subset()
        .into_iter()
        .filter(|spec| {
            vlsi_netlist::bench_suite::SuiteCircuit::from_name(&spec.circuit)
                .is_some_and(|c| c.is_extended())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            circuit: "s1196".into(),
            strategy: StrategyKind::Type2(RowPattern::Random),
            ranks: 3,
            iterations: 3,
            objectives: Objectives::WirelengthPower,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        }
    }

    #[test]
    fn scenario_id_excludes_the_backend() {
        let spec = small_spec();
        assert_eq!(spec.id(), "s1196.type2_random.r3.i3.wp");
        assert_eq!(spec.on_workers(Some(4)).id(), spec.id());
        assert_eq!(spec.on_workers(Some(4)).with_eval_chunks(2).id(), spec.id());
    }

    #[test]
    fn strategy_labels_roundtrip() {
        for s in [
            StrategyKind::Type1,
            StrategyKind::Type2(RowPattern::Fixed),
            StrategyKind::Type2(RowPattern::Random),
            StrategyKind::Type3,
            StrategyKind::Portfolio(PortfolioMix::Mixed),
            StrategyKind::Portfolio(PortfolioMix::Baselines),
        ] {
            assert_eq!(StrategyKind::from_label(s.label()), Some(s));
        }
        assert_eq!(StrategyKind::from_label("type4"), None);
        assert_eq!(StrategyKind::from_label("portfolio"), None);
    }

    #[test]
    fn matrix_sweeps_both_type2_row_patterns() {
        assert!(StrategyKind::MATRIX.contains(&StrategyKind::Type2(RowPattern::Fixed)));
        assert!(StrategyKind::MATRIX.contains(&StrategyKind::Type2(RowPattern::Random)));
        let mut labels: Vec<_> = StrategyKind::MATRIX.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), StrategyKind::MATRIX.len());
    }

    #[test]
    fn golden_subset_pins_the_portfolio_and_both_row_patterns() {
        let subset = golden_subset();
        assert!(subset
            .iter()
            .any(|s| s.strategy == StrategyKind::Portfolio(PortfolioMix::Mixed)));
        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            assert!(subset
                .iter()
                .any(|s| s.strategy == StrategyKind::Type2(pattern)
                    && s.objectives == Objectives::WirelengthPower));
        }
    }

    #[test]
    fn objectives_tags_roundtrip() {
        for o in [
            Objectives::WirelengthPower,
            Objectives::WirelengthPowerDelay,
        ] {
            assert_eq!(objectives_from_tag(objectives_tag(o)), Some(o));
            assert_eq!(objectives_from_tag(o.label()), Some(o));
        }
        assert_eq!(objectives_from_tag("w"), None);
    }

    #[test]
    fn checkpoints_are_powers_of_two_plus_last() {
        assert_eq!(checkpoint_iterations(0), Vec::<usize>::new());
        assert_eq!(checkpoint_iterations(1), vec![0]);
        assert_eq!(checkpoint_iterations(5), vec![0, 1, 3, 4]);
        assert_eq!(checkpoint_iterations(8), vec![0, 1, 3, 7]);
        assert_eq!(checkpoint_iterations(9), vec![0, 1, 3, 7, 8]);
    }

    #[test]
    fn fingerprint_text_roundtrips() {
        let mut driver = BatchDriver::new();
        let spec = small_spec();
        let record = driver.run_cell(&spec);
        let text = record.fingerprint.to_text(&spec);
        let (parsed_spec, parsed_fp) = TrajectoryFingerprint::parse_text(&text).unwrap();
        assert_eq!(parsed_spec, spec);
        assert_eq!(parsed_fp, record.fingerprint);
    }

    #[test]
    fn fingerprints_are_stable_across_reruns_and_backends() {
        let mut driver = BatchDriver::new();
        let spec = small_spec();
        let a = driver.run_cell(&spec);
        let b = driver.run_cell(&spec);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "rerun must not change the fingerprint"
        );
        let threaded = driver.run_cell(&spec.on_workers(Some(2)));
        assert_eq!(
            a.fingerprint, threaded.fingerprint,
            "backend must not change the fingerprint"
        );
        let intra = driver.run_cell(&spec.on_workers(Some(2)).with_eval_chunks(4));
        assert_eq!(
            a.fingerprint, intra.fingerprint,
            "intra-rank chunk count must not change the fingerprint"
        );
        assert_eq!(intra.outcome.eval_chunks, 4);
        assert_eq!(intra.outcome.backend, "threaded(2,ev4)");
    }

    #[test]
    fn fingerprint_diff_names_exactly_the_changed_fields() {
        let mut driver = BatchDriver::new();
        let record = driver.run_cell(&small_spec());
        let fp = record.fingerprint.clone();
        assert!(
            fp.diff(&fp).is_empty(),
            "equal fingerprints must diff empty"
        );

        let mut moved = fp.clone();
        moved.final_mu_bits ^= 1;
        moved.placement_hash ^= 0xdead;
        if let Some(last) = moved.mu_checkpoints.last_mut() {
            last.1 ^= 7;
        }
        let lines = fp.diff(&moved);
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines.iter().any(|l| l.starts_with("final_mu_bits: ")));
        assert!(lines.iter().any(|l| l.starts_with("placement_hash: ")));
        assert!(lines.iter().any(|l| l.starts_with("mu_bits[")));
        for line in &lines {
            assert!(
                line.contains(" -> "),
                "diff line must show old and new: {line}"
            );
        }
    }

    #[test]
    fn intra_rank_golden_subset_is_the_extended_tier() {
        let intra = intra_rank_golden_subset();
        assert!(!intra.is_empty());
        for spec in &intra {
            let circuit =
                vlsi_netlist::bench_suite::SuiteCircuit::from_name(&spec.circuit).unwrap();
            assert!(circuit.is_extended(), "{}", spec.circuit);
            assert!(golden_subset().iter().any(|g| g.id() == spec.id()));
        }
    }

    #[test]
    fn fingerprints_differ_between_scenarios() {
        let mut driver = BatchDriver::new();
        let a = driver.run_cell(&small_spec());
        let mut other = small_spec();
        other.strategy = StrategyKind::Type3;
        let b = driver.run_cell(&other);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn driver_reuses_engines_across_cells() {
        let mut driver = BatchDriver::new();
        driver.run_cell(&small_spec());
        let mut other = small_spec();
        other.strategy = StrategyKind::Type1;
        driver.run_cell(&other);
        let stats = driver.runner().stats();
        assert_eq!(stats.engines, 1, "same circuit+objectives → one engine");
        assert_eq!(stats.engines_calibrated, 1);
        assert_eq!(stats.circuits, 1);
    }

    #[test]
    fn golden_subset_is_runnable_and_unique() {
        let subset = golden_subset();
        let mut ids: Vec<String> = subset.iter().map(ScenarioSpec::id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "golden scenario ids must be unique");
        for spec in &subset {
            assert!(
                SuiteCircuit::from_name(&spec.circuit).is_some(),
                "{}",
                spec.circuit
            );
            assert!(spec.ranks >= spec.strategy.min_ranks());
            assert!(
                spec.workers.is_none(),
                "goldens are blessed on the modeled backend"
            );
            assert_eq!(
                spec.eval_chunks, 1,
                "goldens are blessed on the serial eval path"
            );
        }
    }

    #[test]
    fn record_json_contains_the_key_fields() {
        let mut driver = BatchDriver::new();
        let record = driver.run_cell(&small_spec());
        let json = record.to_json();
        assert!(json.contains("\"scenario\": \"s1196.type2_random.r3.i3.wp\""));
        assert!(json.contains("\"backend\": \"modeled\""));
        assert!(json.contains("placement_hash"));
    }

    fn golden_temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sime-golden-check-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp golden dir");
        dir
    }

    #[test]
    fn check_goldens_fails_hard_on_a_missing_directory() {
        let mut driver = BatchDriver::new();
        let spec = small_spec();
        let record = driver.run_cell(&spec);
        let mut by_id = std::collections::BTreeMap::new();
        by_id.insert(spec.id(), record.fingerprint);
        let check = check_goldens(std::path::Path::new("/nonexistent/sime/golden/dir"), &by_id);
        assert!(!check.passed(), "missing directory must be a hard failure");
        assert_eq!(check.checked, 0);
        assert!(
            check.failures[0].contains("does not exist"),
            "{:?}",
            check.failures
        );
    }

    #[test]
    fn check_goldens_fails_hard_when_nothing_intersects() {
        let mut driver = BatchDriver::new();
        let spec = small_spec();
        let record = driver.run_cell(&spec);
        let mut by_id = std::collections::BTreeMap::new();
        by_id.insert(spec.id(), record.fingerprint);
        let dir = golden_temp_dir("empty");
        let check = check_goldens(&dir, &by_id);
        assert!(!check.passed(), "an empty intersection must not pass");
        assert_eq!(check.checked, 0);
        assert!(
            check.failures[0].contains("compared nothing"),
            "{:?}",
            check.failures
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_goldens_accepts_matches_and_reports_mismatches() {
        let mut driver = BatchDriver::new();
        let spec = small_spec();
        let record = driver.run_cell(&spec);
        let dir = golden_temp_dir("roundtrip");
        let path = dir.join(format!("{}.golden", spec.id()));
        std::fs::write(&path, record.fingerprint.to_text(&spec)).unwrap();

        let mut by_id = std::collections::BTreeMap::new();
        by_id.insert(spec.id(), record.fingerprint.clone());
        let check = check_goldens(&dir, &by_id);
        assert!(check.passed(), "{:?}", check.failures);
        assert_eq!(check.checked, 1);

        let mut perturbed = record.fingerprint.clone();
        perturbed.trajectory_hash ^= 1;
        by_id.insert(spec.id(), perturbed);
        let check = check_goldens(&dir, &by_id);
        assert!(!check.passed());
        assert_eq!(check.checked, 1);
        assert!(
            check.failures[0].contains("GOLDEN MISMATCH"),
            "{:?}",
            check.failures
        );

        std::fs::write(&path, "not a fingerprint\n").unwrap();
        let check = check_goldens(&dir, &by_id);
        assert!(!check.passed());
        assert!(
            check.failures[0].contains("cannot parse golden"),
            "{:?}",
            check.failures
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_text_rejects_malformed_input() {
        assert!(TrajectoryFingerprint::parse_text("").is_err());
        assert!(TrajectoryFingerprint::parse_text("bogus_key 1\n").is_err());
        let missing_hash = "circuit s1196\nstrategy type1\nranks 3\niterations 5\nobjectives wp\n\
                            final_mu_bits 0x1\nfinal_wirelength_bits 0x1\nfinal_power_bits 0x1\n\
                            final_delay_bits 0x0\n";
        let err = TrajectoryFingerprint::parse_text(missing_hash).unwrap_err();
        assert!(err.contains("trajectory_hash"), "{err}");
    }
}
