//! # sime-parallel
//!
//! The three classes of parallel Simulated Evolution evaluated by the paper
//! (Section 6), implemented over the serial engine of [`sime_core`] and the
//! simulated cluster of [`cluster_sim`]:
//!
//! * **Type I — low-level parallelization** ([`type1`]): the cost and
//!   goodness evaluation is distributed over the slaves while the master
//!   performs selection and allocation. The search trajectory is identical to
//!   the serial algorithm; only the runtime changes. The paper (and this
//!   reproduction) finds *no benefit*: allocation, which is not distributed,
//!   dominates the runtime, and the per-iteration broadcast/gather on fast
//!   Ethernet adds overhead that grows with the processor count.
//!
//! * **Type II — domain decomposition** ([`type2`]): the placement rows are
//!   partitioned among the processors and every processor runs the full SimE
//!   iteration (evaluation, selection, allocation) restricted to its own rows;
//!   the master merges the partial placements and re-partitions every
//!   iteration. Two row-allocation patterns are provided: the *fixed* pattern
//!   of Kling & Banerjee (alternating contiguous slices and strided rows) and
//!   the *random* pattern of the authors' earlier work. This is the strategy
//!   that produces real speed-ups, at the price of a restricted cell mobility
//!   that can cost some solution quality.
//!
//! * **Type III — parallel searches** ([`type3`]): several independent SimE
//!   searches with different random seeds cooperate through a central
//!   best-solution store, in the style of asynchronous multiple-Markov-chain
//!   parallel SA. There is no workload division, so the runtime stays at the
//!   serial level; the benefit (if any) is solution quality.
//!
//! * **Portfolio — island-model optimizer race** ([`portfolio`]): `N`
//!   islands, each running a *different* optimizer (a serial SimE chain or
//!   one of the GA/SA/TS baselines from the `metaheuristics` crate), step in
//!   bulk-synchronous epochs with deterministic ring migration of the best
//!   solutions and cooperative early stop when a target quality µ is
//!   reached. This generalises the paper's strategy comparison (Section 7)
//!   from "which SimE organisation" to "which optimizer" under identical
//!   cluster modelling. See `DESIGN.md` §7.
//!
//! Every strategy runs on an **execution backend** ([`exec`]): the
//! [`exec::Modeled`] backend executes the per-rank work inline (the virtual
//! cluster timeline is the only notion of parallel time), the
//! [`exec::Threaded`] backend executes it on a pool of real OS threads. Both
//! produce bitwise-identical outcomes — seeds, per-rank RNG streams and the
//! rank-ordered merge at every synchronisation barrier are backend-
//! independent — so `run_typeN(...)` and
//! `run_typeN_on(..., &Threaded::new(n))` differ only in host wall-clock
//! time. The contract is spelled out in [`exec`] and in `DESIGN.md` §4.
//!
//! Every strategy returns a [`report::StrategyOutcome`] containing the best
//! placement found, the *modeled* runtime on the simulated cluster, the
//! communication statistics, and the host wall-clock time of the run. The
//! table-reproduction binaries in the `bench` crate print these in the layout
//! of the paper's Tables 1–4.
//!
//! The [`batch`] module drives whole **scenario matrices** over these
//! strategies — `{circuit × strategy × backend × workers × objectives}` —
//! reusing one engine per `(circuit, objectives)` across cells, and distils
//! every run into a [`batch::TrajectoryFingerprint`] that the checked-in
//! golden registry (`tests/golden/`, replayed by the root `golden_suite`
//! test) compares bitwise across pushes, backends and worker counts.
//!
//! On top of the batch layer, the [`jobs`] module packages the same machinery
//! as **session state** for long-running services: a thread-safe
//! [`jobs::JobRunner`] with content-addressed circuit and engine caches, the
//! [`control::RunControl`] hook for progress streaming and cooperative
//! cancellation (`run_typeN_ctl`), and the [`exec::SharedPool`] backend that
//! lets many concurrent jobs share one persistent worker pool. The
//! `sime-server` crate builds its placement-as-a-service daemon on these.

#![warn(missing_docs)]

pub mod batch;
pub mod control;
pub mod exec;
pub mod jobs;
pub mod portfolio;
pub mod report;
pub mod type1;
pub mod type2;
pub mod type3;

pub use batch::{
    check_goldens, golden_subset, intra_rank_golden_subset, BatchDriver, GoldenCheck,
    ScenarioRecord, ScenarioSpec, StrategyKind, TrajectoryFingerprint,
};
pub use control::{CancelAfter, CancelToken, FreeRun, ObservedRun, RunControl};
pub use exec::{backend_from_name, backend_from_spec, ExecBackend, Modeled, SharedPool, Threaded};
pub use jobs::{pl_digest, JobError, JobOutcome, JobRunner, JobSpec};
pub use portfolio::{
    run_portfolio, run_portfolio_ctl, run_portfolio_on, IslandKind, PortfolioConfig, PortfolioMix,
};
pub use report::{modeled_serial_seconds, run_serial_baseline, SerialBaseline, StrategyOutcome};
pub use type1::{run_type1, run_type1_ctl, run_type1_on, Type1Config};
pub use type2::{run_type2, run_type2_ctl, run_type2_on, RowPattern, Type2Config};
pub use type3::{run_type3, run_type3_ctl, run_type3_on, Type3Config};

/// Convenience prelude bringing the parallel-strategy API into scope.
pub mod prelude {
    pub use crate::batch::{
        check_goldens, golden_subset, intra_rank_golden_subset, BatchDriver, GoldenCheck,
        ScenarioRecord, ScenarioSpec, StrategyKind, TrajectoryFingerprint,
    };
    pub use crate::control::{CancelAfter, CancelToken, FreeRun, ObservedRun, RunControl};
    pub use crate::exec::{
        backend_from_name, backend_from_spec, ExecBackend, Modeled, SharedPool, Threaded,
    };
    pub use crate::jobs::{JobError, JobOutcome, JobRunner, JobSpec};
    pub use crate::portfolio::{
        run_portfolio, run_portfolio_ctl, run_portfolio_on, IslandKind, PortfolioConfig,
        PortfolioMix,
    };
    pub use crate::report::{run_serial_baseline, SerialBaseline, StrategyOutcome};
    pub use crate::type1::{run_type1, run_type1_ctl, run_type1_on, Type1Config};
    pub use crate::type2::{run_type2, run_type2_ctl, run_type2_on, RowPattern, Type2Config};
    pub use crate::type3::{run_type3, run_type3_ctl, run_type3_on, Type3Config};
}
