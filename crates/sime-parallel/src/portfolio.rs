//! Island-model optimizer portfolio with deterministic solution migration.
//!
//! The paper's question — which parallel *SimE organisation* wins at what
//! scale — generalises to racing *different optimizers* on the same circuit:
//! `N` islands, each running its own search (a serial SimE chain, or one of
//! the GA/SA/TS baselines from the `metaheuristics` crate), step in
//! bulk-synchronous **epochs** over the same execution backends as the
//! Type I/II/III drivers. At fixed epoch boundaries the islands exchange
//! their best solutions over a **ring**: island `i` receives the best-so-far
//! of island `(i − 1) mod N` and adopts it iff it improves on its own
//! current solution. The master additionally races the islands — the run's
//! µ(s) after an epoch is the best island quality, and an optional target µ
//! stops the whole portfolio as soon as any island reaches it.
//!
//! # Determinism (DESIGN.md §4 / §7)
//!
//! The portfolio driver inherits the contract of the other strategies:
//!
//! * every island draws only from its own seed-derived ChaCha8 stream
//!   (`seed ^ ((island + 1) << 48)`), owned by the island state that moves
//!   through the fan-out tasks;
//! * islands step as pure tasks and results merge in **island-index order**
//!   (the executor returns results in submission order);
//! * migration happens between epochs on the master's thread, from a
//!   snapshot of the island bests taken at the barrier, processed in island
//!   order; receiving never draws island RNG variates.
//!
//! Hence a portfolio run is bitwise identical across backends and worker
//! counts, and two migration-interval settings that fire on the same epoch
//! boundaries (e.g. both larger than the epoch count) replay identically.
//! Early stop — cooperative cancellation through [`RunControl`] or the
//! target µ — cuts at an epoch boundary, so a stopped run's trajectory is a
//! bitwise prefix of the free run's.

use crate::control::{FreeRun, RunControl};
use crate::exec::{ExecBackend, Modeled, Task};
use crate::report::{StrategyOutcome, BYTES_PER_CELL};
use cluster_sim::comm::WorkerPool;
use cluster_sim::machine::Workload;
use cluster_sim::timeline::{ClusterConfig, ClusterTimeline};
use metaheuristics::optimizer::{EpochWork, GaIsland, Optimizer, SaIsland, TabuIsland};
use metaheuristics::{GaConfig, SaConfig, TabuConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sime_core::engine::{SimEEngine, SimEScratch};
use sime_core::parallel::EvalContext;
use sime_core::profile::ProfileReport;
use std::sync::Arc;
use std::time::Instant;
use vlsi_place::cost::CostBreakdown;
use vlsi_place::layout::Placement;

/// The optimizer an island runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IslandKind {
    /// A serial SimE chain (one full engine iteration per epoch).
    SimE,
    /// The Genetic Algorithm baseline (one generation per epoch).
    Ga,
    /// The Simulated Annealing baseline (one temperature step per epoch).
    Sa,
    /// The Tabu Search baseline (one iteration per epoch).
    Tabu,
}

impl IslandKind {
    /// Short stable label (`"sime"`, `"ga"`, `"sa"`, `"tabu"`).
    pub fn label(self) -> &'static str {
        match self {
            IslandKind::SimE => "sime",
            IslandKind::Ga => "ga",
            IslandKind::Sa => "sa",
            IslandKind::Tabu => "tabu",
        }
    }
}

/// Which optimizers the portfolio's islands cycle through, by island index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortfolioMix {
    /// SimE, GA, SA, TS, SimE, … — the full shoot-out (island 0 is SimE).
    Mixed,
    /// GA, SA, TS, GA, … — the classical baselines only, no SimE island.
    Baselines,
}

impl PortfolioMix {
    /// Short stable label used in strategy labels and golden files.
    pub fn label(self) -> &'static str {
        match self {
            PortfolioMix::Mixed => "mixed",
            PortfolioMix::Baselines => "baselines",
        }
    }

    /// The optimizer cycle the mix assigns islands from.
    pub fn cycle(self) -> &'static [IslandKind] {
        match self {
            PortfolioMix::Mixed => &[
                IslandKind::SimE,
                IslandKind::Ga,
                IslandKind::Sa,
                IslandKind::Tabu,
            ],
            PortfolioMix::Baselines => &[IslandKind::Ga, IslandKind::Sa, IslandKind::Tabu],
        }
    }

    /// The composition of an `islands`-rank portfolio: island `i` runs
    /// `cycle()[i % cycle().len()]`.
    pub fn composition(self, islands: usize) -> Vec<IslandKind> {
        let cycle = self.cycle();
        (0..islands).map(|i| cycle[i % cycle.len()]).collect()
    }
}

/// The migration interval scenario cells run with (epochs between ring
/// migrations). Part of the portfolio strategy definition for golden
/// purposes — see `DESIGN.md` §7.
pub const SCENARIO_MIGRATION_INTERVAL: usize = 2;

/// Configuration of a portfolio run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortfolioConfig {
    /// Number of islands (= simulated ranks), at least 2.
    pub ranks: usize,
    /// Number of bulk-synchronous epochs.
    pub iterations: usize,
    /// Epochs between ring migrations (≥ 1). Intervals larger than the
    /// epoch count mean the islands never exchange solutions.
    pub migration_interval: usize,
    /// Racing target: stop the whole portfolio at the first epoch boundary
    /// where the best island quality reaches this µ(s).
    pub target_mu: Option<f64>,
    /// Which optimizers the islands cycle through.
    pub mix: PortfolioMix,
}

impl PortfolioConfig {
    /// The configuration scenario cells (goldens, the matrix, the job
    /// engine) run with: the pinned migration interval, no target µ.
    pub fn scenario(mix: PortfolioMix, ranks: usize, iterations: usize) -> Self {
        PortfolioConfig {
            ranks,
            iterations,
            migration_interval: SCENARIO_MIGRATION_INTERVAL,
            target_mu: None,
            mix,
        }
    }
}

/// Serial-SimE island: one full engine iteration (evaluation, selection,
/// allocation over all rows) per epoch, over the island's private RNG
/// stream and scratch. Defined here — not in `metaheuristics` — because it
/// needs the engine and the intra-rank [`EvalContext`].
struct SimeIsland {
    engine: Arc<SimEEngine>,
    pool: Option<Arc<WorkerPool>>,
    eval_chunks: usize,
    rng: ChaCha8Rng,
    scratch: SimEScratch,
    placement: Placement,
    current: CostBreakdown,
    frozen: Vec<bool>,
    rows: Vec<usize>,
    best: CostBreakdown,
    best_placement: Placement,
    evaluations: usize,
}

impl SimeIsland {
    fn new(
        engine: Arc<SimEEngine>,
        initial: Placement,
        seed: u64,
        pool: Option<Arc<WorkerPool>>,
        eval_chunks: usize,
    ) -> Self {
        let current = engine.evaluator().evaluate(&initial);
        let num_rows = engine.config().num_rows;
        SimeIsland {
            rng: ChaCha8Rng::seed_from_u64(seed),
            scratch: engine.new_scratch(),
            frozen: vec![false; engine.evaluator().netlist().num_cells()],
            rows: (0..num_rows).collect(),
            best_placement: initial.clone(),
            placement: initial,
            current,
            best: current,
            evaluations: 1,
            engine,
            pool,
            eval_chunks,
        }
    }
}

impl Optimizer for SimeIsland {
    fn name(&self) -> &'static str {
        "sime"
    }

    fn step(&mut self) -> EpochWork {
        let ctx = EvalContext::from_pool(self.pool.as_deref(), self.eval_chunks);
        let mut profile = ProfileReport::new();
        let (_avg, _selected, alloc_stats) = self.engine.iterate_on(
            &mut self.placement,
            &mut self.scratch,
            &mut self.rng,
            &mut profile,
            &self.frozen,
            &self.rows,
            &ctx,
        );
        self.current = self
            .engine
            .cost_with_on(&self.placement, &mut self.scratch, &ctx);
        self.evaluations += 1;
        if self.current.mu > self.best.mu {
            self.best = self.current;
            self.best_placement = self.placement.clone();
        }
        let num_nets = self.engine.evaluator().netlist().num_nets() as u64;
        EpochWork {
            net_evaluations: alloc_stats.net_evaluations as u64 + num_nets,
            misc_operations: self.placement.num_cells() as u64 * 8,
        }
    }

    fn best_placement(&self) -> &Placement {
        &self.best_placement
    }

    fn best_cost(&self) -> CostBreakdown {
        self.best
    }

    fn receive(&mut self, migrant: &Placement, cost: CostBreakdown) {
        if cost.mu > self.current.mu {
            self.placement = migrant.clone();
            self.current = cost;
            if cost.mu > self.best.mu {
                self.best = cost;
                self.best_placement = migrant.clone();
            }
        }
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// Builds island `index` of a portfolio: the island's own RNG stream is
/// derived as `engine seed ^ ((index + 1) << 48)` — a namespace disjoint
/// from the Type II (`<< 32`) and Type III (`<< 40`) per-rank streams.
fn build_island(
    kind: IslandKind,
    index: usize,
    engine: &Arc<SimEEngine>,
    initial: &Placement,
    pool: Option<Arc<WorkerPool>>,
    eval_chunks: usize,
) -> Box<dyn Optimizer> {
    let seed = engine.config().seed ^ ((index as u64 + 1) << 48);
    let num_rows = engine.config().num_rows;
    let evaluator = engine.evaluator().clone();
    match kind {
        IslandKind::SimE => Box::new(SimeIsland::new(
            Arc::clone(engine),
            initial.clone(),
            seed,
            pool,
            eval_chunks,
        )),
        IslandKind::Ga => Box::new(GaIsland::new(
            evaluator,
            GaConfig {
                population: 16,
                num_rows,
                seed,
                ..GaConfig::default()
            },
            initial.clone(),
        )),
        IslandKind::Sa => Box::new(SaIsland::new(
            evaluator,
            SaConfig {
                moves_per_temperature: 120,
                seed,
                ..SaConfig::default()
            },
            initial.clone(),
        )),
        IslandKind::Tabu => Box::new(TabuIsland::new(
            evaluator,
            TabuConfig {
                seed,
                ..TabuConfig::default()
            },
            initial.clone(),
        )),
    }
}

/// Runs the island portfolio on the default [`Modeled`] backend.
pub fn run_portfolio(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: PortfolioConfig,
) -> StrategyOutcome {
    run_portfolio_on(engine, cluster, config, &Modeled)
}

/// Runs the island portfolio on an explicit execution backend.
pub fn run_portfolio_on(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: PortfolioConfig,
    backend: &dyn ExecBackend,
) -> StrategyOutcome {
    run_portfolio_ctl(engine, cluster, config, backend, &FreeRun)
}

/// [`run_portfolio_on`] with a [`RunControl`]: the control observes every
/// completed epoch and may end the run at that boundary; the target µ (if
/// configured) is checked at the same boundary. Either stop yields a
/// bitwise prefix of the free run (see the [module docs](self)).
pub fn run_portfolio_ctl(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: PortfolioConfig,
    backend: &dyn ExecBackend,
    control: &dyn RunControl,
) -> StrategyOutcome {
    assert!(config.ranks >= 2, "a portfolio needs at least two islands");
    assert_eq!(
        cluster.ranks, config.ranks,
        "cluster configuration and portfolio configuration disagree on the rank count"
    );
    assert!(
        config.migration_interval >= 1,
        "the migration interval must be at least one epoch"
    );
    let started = Instant::now();
    let executor = backend.executor();
    let pool = executor.pool();
    let eval_chunks = executor.effective_eval_chunks(backend);

    let netlist = engine.evaluator().netlist().clone();
    let num_cells = netlist.num_cells();
    let placement_bytes = BYTES_PER_CELL * num_cells as u64 + 8 * engine.config().num_rows as u64;

    let mut timeline = ClusterTimeline::new(cluster);
    let mut master_rng = ChaCha8Rng::seed_from_u64(engine.config().seed);
    let initial = engine.initial_placement(&mut master_rng);
    // The master ships the common starting placement to every island.
    timeline.broadcast_tree(0, placement_bytes);

    let shared = Arc::new(engine.clone());
    let composition = config.mix.composition(config.ranks);
    let mut islands: Vec<Option<Box<dyn Optimizer>>> = composition
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            Some(build_island(
                kind,
                i,
                &shared,
                &initial,
                pool.clone(),
                eval_chunks,
            ))
        })
        .collect();

    let mut best_cost = engine.evaluator().evaluate(&initial);
    let mut best_placement = initial.clone();
    let mut mu_history = Vec::with_capacity(config.iterations);

    for epoch in 0..config.iterations {
        // Fan out: every island advances one epoch as an independent task.
        let mut tasks: Vec<Task<(Box<dyn Optimizer>, EpochWork)>> =
            Vec::with_capacity(config.ranks);
        for slot in islands.iter_mut() {
            let mut island = slot.take().expect("island state in flight");
            tasks.push(Box::new(move || {
                let work = island.step();
                (island, work)
            }));
        }
        // Merge in island order (tasks were built in island order and the
        // executor returns results in submission order).
        let results = executor.run_tasks(tasks);
        for (rank, (island, work)) in results.into_iter().enumerate() {
            timeline.charge_compute(
                rank,
                &Workload {
                    net_evaluations: work.net_evaluations,
                    misc_operations: work.misc_operations,
                },
            );
            islands[rank] = Some(island);
        }

        // Race: every island reports its best µ (8 bytes) to the master;
        // the epoch's µ is the best island quality, ties to the lowest
        // island index.
        for rank in 1..config.ranks {
            timeline.send(rank, 0, 8);
        }
        let mut epoch_best_rank = 0usize;
        let mut epoch_best_mu = f64::NEG_INFINITY;
        for (rank, island) in islands.iter().enumerate() {
            let mu = island.as_ref().expect("island returned").best_cost().mu;
            if mu > epoch_best_mu {
                epoch_best_mu = mu;
                epoch_best_rank = rank;
            }
        }
        if epoch_best_mu > best_cost.mu {
            let winner = islands[epoch_best_rank].as_ref().expect("island returned");
            best_cost = winner.best_cost();
            best_placement = winner.best_placement().clone();
            // The improving island ships its solution to the master.
            if epoch_best_rank != 0 {
                timeline.send(epoch_best_rank, 0, placement_bytes);
            }
        }
        mu_history.push(epoch_best_mu);

        let target_hit = config.target_mu.is_some_and(|t| best_cost.mu >= t);
        if !control.keep_going(epoch, epoch_best_mu, best_cost.mu) || target_hit {
            break;
        }

        // Ring migration at interval boundaries (pointless after the final
        // epoch): island i adopts the barrier-snapshot best of island i−1,
        // processed in island-index order.
        if (epoch + 1) % config.migration_interval == 0 && epoch + 1 < config.iterations {
            let snapshot: Vec<(Placement, CostBreakdown)> = islands
                .iter()
                .map(|i| {
                    let i = i.as_ref().expect("island returned");
                    (i.best_placement().clone(), i.best_cost())
                })
                .collect();
            for (rank, island) in islands.iter_mut().enumerate() {
                let from = (rank + config.ranks - 1) % config.ranks;
                timeline.send(from, rank, placement_bytes);
                island
                    .as_mut()
                    .expect("island returned")
                    .receive(&snapshot[from].0, snapshot[from].1);
            }
        }
    }

    let iterations_run = mu_history.len();
    StrategyOutcome {
        best_placement,
        best_cost,
        modeled_seconds: timeline.makespan(),
        comm: timeline.stats(),
        iterations: iterations_run,
        mu_history,
        wall_seconds: started.elapsed().as_secs_f64(),
        backend: backend.label(),
        eval_chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::CancelAfter;
    use crate::exec::Threaded;
    use sime_core::engine::SimEConfig;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn engine(iterations: usize) -> SimEEngine {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("portfolio_test", 140, 9)).generate(),
        );
        SimEEngine::new(
            nl,
            SimEConfig::fast(Objectives::WirelengthPower, 8, iterations),
        )
    }

    fn cfg(ranks: usize, iterations: usize) -> PortfolioConfig {
        PortfolioConfig {
            ranks,
            iterations,
            migration_interval: 2,
            target_mu: None,
            mix: PortfolioMix::Mixed,
        }
    }

    fn assert_outcomes_bitwise_equal(a: &StrategyOutcome, b: &StrategyOutcome, context: &str) {
        assert_eq!(a.mu_history.len(), b.mu_history.len(), "{context}");
        for (i, (x, y)) in a.mu_history.iter().zip(&b.mu_history).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: µ diverges at epoch {i}"
            );
        }
        assert_eq!(
            a.best_cost.mu.to_bits(),
            b.best_cost.mu.to_bits(),
            "{context}"
        );
        assert_eq!(a.modeled_seconds, b.modeled_seconds, "{context}");
        assert_eq!(a.comm, b.comm, "{context}");
        for row in 0..a.best_placement.num_rows() {
            assert_eq!(
                a.best_placement.row(row),
                b.best_placement.row(row),
                "{context}: best placement differs in row {row}"
            );
        }
    }

    #[test]
    fn composition_cycles_the_mix() {
        assert_eq!(
            PortfolioMix::Mixed.composition(5),
            vec![
                IslandKind::SimE,
                IslandKind::Ga,
                IslandKind::Sa,
                IslandKind::Tabu,
                IslandKind::SimE
            ]
        );
        assert_eq!(
            PortfolioMix::Baselines.composition(4),
            vec![
                IslandKind::Ga,
                IslandKind::Sa,
                IslandKind::Tabu,
                IslandKind::Ga
            ]
        );
        for kind in [
            IslandKind::SimE,
            IslandKind::Ga,
            IslandKind::Sa,
            IslandKind::Tabu,
        ] {
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn portfolio_produces_a_legal_placement_and_monotone_history() {
        let engine = engine(4);
        let outcome = run_portfolio(&engine, ClusterConfig::paper_cluster(4), cfg(4, 4));
        outcome
            .best_placement
            .validate(engine.evaluator().netlist())
            .unwrap();
        assert!(outcome.best_mu() > 0.0 && outcome.best_mu() <= 1.0);
        assert_eq!(outcome.mu_history.len(), 4);
        let mut last = f64::NEG_INFINITY;
        for &mu in &outcome.mu_history {
            assert!(mu >= last, "race µ must be monotone");
            last = mu;
        }
    }

    #[test]
    fn portfolio_backends_agree_bitwise() {
        let engine = engine(3);
        let config = cfg(4, 3);
        let modeled = run_portfolio(&engine, ClusterConfig::paper_cluster(4), config);
        for workers in [1, 2, 4] {
            let threaded = run_portfolio_on(
                &engine,
                ClusterConfig::paper_cluster(4),
                config,
                &Threaded::new(workers),
            );
            assert_outcomes_bitwise_equal(&modeled, &threaded, &format!("workers={workers}"));
        }
    }

    #[test]
    fn migration_intervals_beyond_the_horizon_replay_identically() {
        // Two interval settings that fire on the same epoch boundaries (here:
        // none at all, both beyond the epoch count) must be bitwise equal.
        let engine = engine(3);
        let a = run_portfolio(
            &engine,
            ClusterConfig::paper_cluster(3),
            PortfolioConfig {
                migration_interval: 5,
                ..cfg(3, 3)
            },
        );
        let b = run_portfolio(
            &engine,
            ClusterConfig::paper_cluster(3),
            PortfolioConfig {
                migration_interval: 97,
                ..cfg(3, 3)
            },
        );
        assert_outcomes_bitwise_equal(&a, &b, "intervals 5 vs 97 over 3 epochs");
    }

    #[test]
    fn portfolio_cancelled_run_is_a_bitwise_prefix() {
        let engine = engine(5);
        let config = cfg(3, 5);
        let full = run_portfolio(&engine, ClusterConfig::paper_cluster(3), config);
        let cut = run_portfolio_ctl(
            &engine,
            ClusterConfig::paper_cluster(3),
            config,
            &Modeled,
            &CancelAfter(2),
        );
        assert_eq!(cut.iterations, 3, "stops after the boundary epoch");
        for (a, b) in cut.mu_history.iter().zip(&full.mu_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn target_mu_stops_the_race_early_with_a_prefix_trajectory() {
        let engine = engine(5);
        let config = cfg(4, 5);
        let full = run_portfolio(&engine, ClusterConfig::paper_cluster(4), config);
        assert_eq!(full.iterations, 5);
        // Aim for the quality the free run reached after its second epoch:
        // the raced run must stop at (or before) that boundary, bitwise on
        // the shared prefix.
        let target = full.mu_history[1];
        let raced = run_portfolio(
            &engine,
            ClusterConfig::paper_cluster(4),
            PortfolioConfig {
                target_mu: Some(target),
                ..config
            },
        );
        assert!(raced.iterations <= 2, "target must stop the run early");
        assert!(raced.best_mu() >= target);
        for (a, b) in raced.mu_history.iter().zip(&full.mu_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn portfolio_is_deterministic_across_reruns() {
        let engine = engine(3);
        let config = cfg(5, 3);
        let a = run_portfolio(&engine, ClusterConfig::paper_cluster(5), config);
        let b = run_portfolio(&engine, ClusterConfig::paper_cluster(5), config);
        assert_outcomes_bitwise_equal(&a, &b, "rerun");
    }

    #[test]
    #[should_panic(expected = "at least two islands")]
    fn rejects_single_island() {
        let engine = engine(1);
        run_portfolio(&engine, ClusterConfig::paper_cluster(1), cfg(1, 1));
    }

    #[test]
    #[should_panic(expected = "migration interval")]
    fn rejects_zero_migration_interval() {
        let engine = engine(1);
        run_portfolio(
            &engine,
            ClusterConfig::paper_cluster(2),
            PortfolioConfig {
                migration_interval: 0,
                ..cfg(2, 1)
            },
        );
    }
}
