//! Execution backends: *how* a strategy's per-rank work is executed.
//!
//! Every strategy in this crate is written as a bulk-synchronous driver: each
//! iteration **fans out** one task per simulated rank (the paper's broadcast
//! step), runs the tasks, and **merges** their results back in rank order
//! (the gather step), charging the [`cluster_sim::timeline::ClusterTimeline`]
//! for the cluster cost of the same schedule. The [`ExecBackend`] trait
//! chooses how the fan-out actually executes:
//!
//! * [`Modeled`] — tasks run inline on the calling thread, one after another,
//!   exactly as in the original reproduction. Wall-clock time is serial; the
//!   *modeled* cluster runtime comes from the timeline.
//! * [`Threaded`] — tasks run on a persistent [`WorkerPool`] of N OS threads
//!   (long-lived per-worker work lanes feeding a slot-indexed epoch buffer;
//!   results land in their submission-order slots, so no per-batch channel
//!   set-up remains on the per-iteration path). This is real shared-memory
//!   parallelism: with enough cores the wall-clock time drops with the
//!   worker count while the modeled runtime — and every other output — stays
//!   identical to [`Modeled`].
//!
//! # The determinism contract
//!
//! For a fixed `(seed, rank count)` the two backends produce **bitwise
//! identical** results, and the threaded backend produces bitwise identical
//! results for *any* worker count, because:
//!
//! 1. every rank draws from its own seed-derived ChaCha8 stream, owned by the
//!    task, never shared;
//! 2. tasks are pure functions of the state captured at fan-out (placement
//!    snapshot, rank RNG, rank scratch) — they do not observe one another;
//! 3. the merge consumes results in **submission (rank) order**, regardless
//!    of the order in which workers finish.
//!
//! Only *host wall-clock measurements* vary across backends and worker
//! counts. `DESIGN.md` §4 in the `bench` crate records the full contract,
//! including the per-strategy channel topology.
//!
//! # Intra-rank evaluation parallelism
//!
//! Orthogonal to the rank-level fan-out, the `Threaded` backend carries an
//! **`EvalParallelism`** knob ([`Threaded::with_eval_chunks`]): with more
//! than one chunk, each rank task additionally fans its *own* Evaluation
//! phase (the per-cell goodness pass) and allocation trial-scoring loop out
//! across the **same** worker pool, through
//! [`sime_core::parallel::EvalContext`]. Chunk boundaries are fixed by cell
//! (or slot) index and chunk results merge in chunk order, so every output
//! stays bitwise identical across chunk counts — `Modeled` and
//! `Threaded::new(n)` (one chunk) remain bit-for-bit unchanged, and
//! `threaded(n,evC)` joins them inside the same contract. The pool's
//! help-while-waiting discipline (see [`WorkerPool`]) makes the nested
//! submission deadlock-free at any worker count.
//!
//! ```
//! use sime_parallel::exec::{ExecBackend, Modeled, Threaded};
//!
//! let modeled: Box<dyn ExecBackend> = Box::new(Modeled);
//! let threaded: Box<dyn ExecBackend> = Box::new(Threaded::new(4));
//! let intra: Box<dyn ExecBackend> = Box::new(Threaded::new(4).with_eval_chunks(2));
//! assert_eq!(modeled.label(), "modeled");
//! assert_eq!(threaded.label(), "threaded(4)");
//! assert_eq!(intra.label(), "threaded(4,ev2)");
//! ```

use cluster_sim::comm::WorkerPool;
use std::sync::Arc;

/// One unit of per-rank work produced by a strategy driver at fan-out time.
///
/// Tasks are `'static` by design: they capture an `Arc<SimEEngine>` plus the
/// rank's owned state (placement snapshot, RNG, scratch) so the same closure
/// can run inline or be shipped to a pool thread.
pub type Task<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// The runtime a backend hands to a strategy driver for one run.
///
/// Strategy drivers call [`Executor::run_tasks`] once per fan-out; the
/// executor guarantees results come back in submission order (the
/// deterministic merge — see the [module docs](self)).
#[derive(Debug)]
pub enum Executor {
    /// Run every task inline on the calling thread, in submission order.
    Inline,
    /// Run tasks on a pool of OS worker threads; merge in submission order.
    /// The pool is behind an `Arc` so rank tasks can hold a handle to the
    /// same pool for their intra-rank evaluation fan-out.
    Pool(Arc<WorkerPool>),
}

impl Executor {
    /// Executes `tasks` and returns their results in submission order.
    pub fn run_tasks<T: Send + 'static>(&self, tasks: Vec<Task<T>>) -> Vec<T> {
        match self {
            Executor::Inline => tasks.into_iter().map(|task| task()).collect(),
            Executor::Pool(pool) => pool.run_tasks(tasks),
        }
    }

    /// Whether this executor provides real OS-thread parallelism.
    pub fn is_threaded(&self) -> bool {
        matches!(self, Executor::Pool(_))
    }

    /// A shareable handle to the executor's worker pool (`None` for the
    /// inline executor). Rank tasks clone this into their closures and build
    /// their intra-rank context with
    /// [`sime_core::parallel::EvalContext::from_pool`].
    pub fn pool(&self) -> Option<Arc<WorkerPool>> {
        match self {
            Executor::Inline => None,
            Executor::Pool(pool) => Some(Arc::clone(pool)),
        }
    }

    /// The effective intra-rank chunk count a backend's `EvalParallelism`
    /// knob yields on this executor: the knob value on a pooled executor, 1
    /// on the inline executor (no pool to fan out on). Shared preamble of
    /// every strategy driver.
    pub fn effective_eval_chunks(&self, backend: &dyn ExecBackend) -> usize {
        if self.is_threaded() {
            backend.eval_chunks().max(1)
        } else {
            1
        }
    }
}

/// Chooses how a strategy run executes its per-rank work.
///
/// Implementations must uphold the determinism contract in the
/// [module docs](self): backends may only change *where and when* tasks run,
/// never what they compute or the order their results are merged in.
pub trait ExecBackend {
    /// Human-readable backend label (`"modeled"`, `"threaded(4)"`), used by
    /// reports and benchmark output.
    fn label(&self) -> String;

    /// Builds the executor that will carry one strategy run. A `Threaded`
    /// backend spawns its worker pool here; the pool lives for the whole run
    /// and is joined when the run's executor is dropped.
    fn executor(&self) -> Executor;

    /// The `EvalParallelism` knob: how many index-contiguous chunks each
    /// rank task splits its Evaluation / trial-scoring loops into on the
    /// shared worker pool. The default of 1 means no intra-rank fan-out;
    /// backends without a pool (an inline executor) are always effectively
    /// serial regardless of this value. Never changes any output bit — see
    /// the [module docs](self).
    fn eval_chunks(&self) -> usize {
        1
    }
}

/// The virtual-time backend: per-rank work runs inline and sequentially; the
/// cluster timeline is the only notion of parallel time. This reproduces the
/// original (pre-backend) behaviour of every strategy bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Modeled;

impl ExecBackend for Modeled {
    fn label(&self) -> String {
        "modeled".into()
    }

    fn executor(&self) -> Executor {
        Executor::Inline
    }
}

/// The shared-memory backend: per-rank work runs on `workers` OS threads.
///
/// Results are bitwise identical to [`Modeled`] for every worker count; only
/// host wall-clock changes. The worker count is therefore a pure throughput
/// knob — it does *not* have to match the simulated rank count (four ranks
/// can execute on one worker, or one rank per worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threaded {
    workers: usize,
    eval_chunks: usize,
}

impl Threaded {
    /// A threaded backend with `workers` OS threads and no intra-rank
    /// fan-out (one evaluation chunk).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(
            workers >= 1,
            "the threaded backend needs at least one worker"
        );
        Threaded {
            workers,
            eval_chunks: 1,
        }
    }

    /// The same backend with its `EvalParallelism` knob set: each rank task
    /// splits its goodness pass and trial-scoring loops into `chunks`
    /// index-fixed chunks on the shared pool. `chunks <= 1` disables the
    /// fan-out. Bitwise-neutral by the intra-rank determinism contract.
    pub fn with_eval_chunks(self, chunks: usize) -> Self {
        Threaded {
            eval_chunks: chunks.max(1),
            ..self
        }
    }

    /// The number of OS worker threads this backend spawns per run.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl ExecBackend for Threaded {
    fn label(&self) -> String {
        if self.eval_chunks > 1 {
            format!("threaded({},ev{})", self.workers, self.eval_chunks)
        } else {
            format!("threaded({})", self.workers)
        }
    }

    fn executor(&self) -> Executor {
        Executor::Pool(Arc::new(WorkerPool::new(self.workers)))
    }

    fn eval_chunks(&self) -> usize {
        self.eval_chunks
    }
}

/// A threaded backend over a pool the caller already owns: every run built
/// from this backend submits its fan-outs to the **same** long-lived
/// [`WorkerPool`] instead of spawning a private one.
///
/// This is the execution substrate of the `sime-server` job engine: one pool
/// serves many concurrent placement jobs. Each job's external submitter
/// blocks passively on its own merges while workers interleave tasks from
/// every active job; nested intra-rank fan-outs keep the help-while-waiting
/// discipline, so sharing never deadlocks. The determinism contract is
/// unaffected — tasks are pure and merges are submission-ordered, so a job's
/// results are bitwise identical whether its pool is private or shared, busy
/// or idle.
#[derive(Clone)]
pub struct SharedPool {
    pool: Arc<WorkerPool>,
    eval_chunks: usize,
}

impl SharedPool {
    /// A backend whose runs all execute on `pool`, with no intra-rank
    /// fan-out (one evaluation chunk).
    pub fn new(pool: Arc<WorkerPool>) -> Self {
        SharedPool {
            pool,
            eval_chunks: 1,
        }
    }

    /// The same backend with its `EvalParallelism` knob set; semantics match
    /// [`Threaded::with_eval_chunks`].
    pub fn with_eval_chunks(self, chunks: usize) -> Self {
        SharedPool {
            eval_chunks: chunks.max(1),
            ..self
        }
    }

    /// A handle to the underlying shared pool.
    pub fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.pool)
    }
}

impl ExecBackend for SharedPool {
    fn label(&self) -> String {
        if self.eval_chunks > 1 {
            format!("shared({},ev{})", self.pool.workers(), self.eval_chunks)
        } else {
            format!("shared({})", self.pool.workers())
        }
    }

    fn executor(&self) -> Executor {
        Executor::Pool(Arc::clone(&self.pool))
    }

    fn eval_chunks(&self) -> usize {
        self.eval_chunks
    }
}

/// Parses a backend by name, as accepted by the CLI surfaces
/// (`--backend modeled` / `--backend threaded --workers N`).
///
/// Returns `None` for an unknown name. `workers` is only consulted for the
/// threaded backend.
pub fn backend_from_name(name: &str, workers: usize) -> Option<Box<dyn ExecBackend>> {
    backend_from_spec(name, workers, 1)
}

/// [`backend_from_name`] with the intra-rank `EvalParallelism` knob
/// (`--eval-chunks N` on the CLI surfaces). `eval_chunks` is only consulted
/// for the threaded backend; values below 1 are clamped to 1.
pub fn backend_from_spec(
    name: &str,
    workers: usize,
    eval_chunks: usize,
) -> Option<Box<dyn ExecBackend>> {
    match name {
        "modeled" => Some(Box::new(Modeled)),
        "threaded" => Some(Box::new(
            Threaded::new(workers.max(1)).with_eval_chunks(eval_chunks),
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(executor: &Executor, n: usize) -> Vec<usize> {
        let tasks: Vec<Task<usize>> = (0..n)
            .map(|i| Box::new(move || i * i) as Task<usize>)
            .collect();
        executor.run_tasks(tasks)
    }

    #[test]
    fn inline_and_pool_executors_agree() {
        let expected: Vec<usize> = (0..24).map(|i| i * i).collect();
        assert_eq!(squares(&Modeled.executor(), 24), expected);
        for workers in [1, 2, 4] {
            assert_eq!(squares(&Threaded::new(workers).executor(), 24), expected);
        }
    }

    #[test]
    fn labels_identify_the_backend() {
        assert_eq!(Modeled.label(), "modeled");
        assert_eq!(Threaded::new(3).label(), "threaded(3)");
        assert_eq!(Threaded::new(3).with_eval_chunks(1).label(), "threaded(3)");
        assert_eq!(
            Threaded::new(3).with_eval_chunks(4).label(),
            "threaded(3,ev4)"
        );
        assert!(!Modeled.executor().is_threaded());
        assert!(Threaded::new(2).executor().is_threaded());
    }

    #[test]
    fn eval_chunks_knob_defaults_to_serial() {
        assert_eq!(Modeled.eval_chunks(), 1);
        assert_eq!(Threaded::new(4).eval_chunks(), 1);
        assert_eq!(Threaded::new(4).with_eval_chunks(0).eval_chunks(), 1);
        assert_eq!(Threaded::new(4).with_eval_chunks(3).eval_chunks(), 3);
        assert!(Modeled.executor().pool().is_none());
        assert!(Threaded::new(2).executor().pool().is_some());
    }

    #[test]
    fn backend_spec_parses_the_eval_chunks_axis() {
        assert_eq!(
            backend_from_spec("threaded", 4, 2).unwrap().label(),
            "threaded(4,ev2)"
        );
        assert_eq!(
            backend_from_spec("threaded", 4, 0).unwrap().label(),
            "threaded(4)"
        );
        assert_eq!(backend_from_spec("modeled", 4, 8).unwrap().eval_chunks(), 1);
        assert!(backend_from_spec("mpi", 1, 1).is_none());
    }

    #[test]
    fn backend_parsing_covers_the_cli_surface() {
        assert_eq!(backend_from_name("modeled", 8).unwrap().label(), "modeled");
        assert_eq!(
            backend_from_name("threaded", 8).unwrap().label(),
            "threaded(8)"
        );
        // workers is clamped to at least one for the CLI path
        assert_eq!(
            backend_from_name("threaded", 0).unwrap().label(),
            "threaded(1)"
        );
        assert!(backend_from_name("mpi", 4).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn threaded_rejects_zero_workers() {
        let _ = Threaded::new(0);
    }

    #[test]
    fn shared_pool_backend_reuses_one_pool_across_runs() {
        let pool = Arc::new(WorkerPool::new(2));
        let backend = SharedPool::new(Arc::clone(&pool));
        assert_eq!(backend.label(), "shared(2)");
        assert_eq!(backend.clone().with_eval_chunks(3).label(), "shared(2,ev3)");
        let expected: Vec<usize> = (0..24).map(|i| i * i).collect();
        // Two executors from the same backend share the same pool instance.
        let a = backend.executor();
        let b = backend.executor();
        assert_eq!(squares(&a, 24), expected);
        assert_eq!(squares(&b, 24), expected);
        assert!(Arc::ptr_eq(&a.pool().unwrap(), &b.pool().unwrap()));
        assert_eq!(pool.queued_jobs(), 0);
    }
}
