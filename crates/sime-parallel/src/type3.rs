//! Type III — cooperating parallel searches.
//!
//! Following Figure 6 of the paper, `p − 1` worker processors each run the
//! full serial SimE loop with a different random seed, starting from the same
//! initial solution, while a central processor (rank 0) keeps the best
//! solution found so far:
//!
//! * whenever a worker improves on its own best solution, it sends the new
//!   solution to the central store;
//! * each worker counts the consecutive iterations in which it failed to
//!   improve; when the count exceeds the *retry threshold*, it asks the
//!   central store for a better solution and adopts it if the store's is
//!   better than its own current one.
//!
//! There is no workload division, so the modeled runtime stays essentially at
//! the serial level (Table 4); the cooperative exchange can only help the
//! reached quality, and the paper observes that larger retry thresholds
//! (= more independence) tend to give better quality — SimE searches that are
//! differentiated only by their random seed are too similar for aggressive
//! sharing to pay off.
//!
//! Each worker's iteration depends only on its own placement, RNG stream and
//! scratch, so the workers' iterations fan out as independent tasks; the
//! central store then processes improvement reports and retry requests **in
//! worker order** at the iteration barrier, exactly as the modeled sequential
//! loop does. Under the `Threaded` backend this is the strategy with the most
//! host parallelism to harvest: `p − 1` full SimE iterations run concurrently
//! where the modeled backend executes them back to back.
//!
//! ```
//! use cluster_sim::timeline::ClusterConfig;
//! use sime_core::engine::{SimEConfig, SimEEngine};
//! use sime_parallel::exec::Threaded;
//! use sime_parallel::type3::{run_type3, run_type3_on, Type3Config};
//! use std::sync::Arc;
//! use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
//! use vlsi_place::cost::Objectives;
//!
//! let netlist = Arc::new(
//!     CircuitGenerator::new(GeneratorConfig::sized("type3_doc", 120, 3)).generate(),
//! );
//! let engine = SimEEngine::new(netlist, SimEConfig::fast(Objectives::WirelengthPower, 6, 3));
//! let config = Type3Config { ranks: 3, iterations: 3, retry_threshold: 2 };
//! let modeled = run_type3(&engine, ClusterConfig::paper_cluster(3), config);
//! let threaded = run_type3_on(&engine, ClusterConfig::paper_cluster(3), config, &Threaded::new(2));
//! assert_eq!(modeled.best_mu().to_bits(), threaded.best_mu().to_bits());
//! assert_eq!(modeled.modeled_seconds, threaded.modeled_seconds);
//! ```

use crate::control::{FreeRun, RunControl};
use crate::exec::{ExecBackend, Modeled, Task};
use crate::report::{StrategyOutcome, BYTES_PER_CELL};
use cluster_sim::machine::Workload;
use cluster_sim::timeline::{ClusterConfig, ClusterTimeline};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sime_core::allocation::AllocationStats;
use sime_core::engine::{SimEEngine, SimEScratch};
use sime_core::parallel::EvalContext;
use sime_core::profile::ProfileReport;
use std::sync::Arc;
use std::time::Instant;
use vlsi_place::cost::CostBreakdown;
use vlsi_place::layout::Placement;

/// Configuration of a Type III run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Type3Config {
    /// Number of processors (one central store + `ranks − 1` workers); the
    /// paper uses 3–5.
    pub ranks: usize,
    /// SimE iterations executed by every worker (2500 in Table 4).
    pub iterations: usize,
    /// Retry threshold: consecutive non-improving iterations before a worker
    /// consults the central store (50–200 in Table 4).
    pub retry_threshold: usize,
}

struct Worker {
    placement: Placement,
    current_cost: CostBreakdown,
    best_cost: CostBreakdown,
    best_placement: Placement,
    rng: ChaCha8Rng,
    fail_count: usize,
    /// Per-worker allocation scratch and net-length cache; each worker
    /// mutates its own placement in place, so its cache stays on the delta
    /// path between iterations (adopting the central solution clones a new
    /// placement and naturally forces a full refresh).
    scratch: SimEScratch,
}

/// What one worker's task sends back to the central store at the iteration
/// barrier: the worker state, its post-iteration cost and the allocation
/// work it performed.
type WorkerOutput = (Worker, CostBreakdown, AllocationStats);

/// Runs the Type III parallel SimE strategy on the default [`Modeled`]
/// backend.
pub fn run_type3(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type3Config,
) -> StrategyOutcome {
    run_type3_on(engine, cluster, config, &Modeled)
}

/// Runs the Type III parallel SimE strategy on an explicit execution backend.
///
/// Worker iterations fan out as independent tasks over seed-derived private
/// RNG streams (`seed ^ ((worker + 1) << 40)`); the central store then
/// applies improvement reports and retry adoptions in worker order, so both
/// backends — and any worker-thread count — produce bitwise identical
/// outcomes.
pub fn run_type3_on(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type3Config,
    backend: &dyn ExecBackend,
) -> StrategyOutcome {
    run_type3_ctl(engine, cluster, config, backend, &FreeRun)
}

/// [`run_type3_on`] with a [`RunControl`]: the control observes every
/// completed iteration and may end the run at that boundary (see the
/// [`crate::control`] docs for the exact call point and the prefix-bitwise
/// guarantee). [`StrategyOutcome::iterations`] reports the iterations that
/// actually ran.
pub fn run_type3_ctl(
    engine: &SimEEngine,
    cluster: ClusterConfig,
    config: Type3Config,
    backend: &dyn ExecBackend,
    control: &dyn RunControl,
) -> StrategyOutcome {
    assert!(
        config.ranks >= 3,
        "Type III needs a central store and at least two workers"
    );
    assert_eq!(
        cluster.ranks, config.ranks,
        "cluster configuration and strategy configuration disagree on the rank count"
    );
    let started = Instant::now();
    let executor = backend.executor();
    let pool = executor.pool();
    let eval_chunks = executor.effective_eval_chunks(backend);

    let netlist = engine.evaluator().netlist().clone();
    let placement_bytes = BYTES_PER_CELL * netlist.num_cells() as u64;
    let workers = config.ranks - 1;
    let shared = Arc::new(engine.clone());

    let mut timeline = ClusterTimeline::new(cluster);

    // All searches start from the same initial solution but use different
    // randomisation seeds (Section 6.3).
    let mut seed_rng = ChaCha8Rng::seed_from_u64(engine.config().seed);
    let initial = engine.initial_placement(&mut seed_rng);
    let initial_cost = engine.evaluator().evaluate(&initial);
    // The initial solution is distributed to every worker once.
    timeline.broadcast_tree(0, placement_bytes);

    let mut worker_state: Vec<Option<Worker>> = (0..workers)
        .map(|w| {
            Some(Worker {
                placement: initial.clone(),
                current_cost: initial_cost,
                best_cost: initial_cost,
                best_placement: initial.clone(),
                rng: ChaCha8Rng::seed_from_u64(engine.config().seed ^ ((w as u64 + 1) << 40)),
                fail_count: 0,
                scratch: engine.new_scratch(),
            })
        })
        .collect();

    // The central store's best solution (kept on rank 0).
    let mut central_cost = initial_cost;
    let mut central_placement = initial.clone();
    let mut mu_history = Vec::with_capacity(config.iterations);

    for iteration in 0..config.iterations {
        // Fan out: every worker runs one full serial SimE iteration on its
        // own placement. The iteration reads nothing but the worker's own
        // state, which is what makes the barrier placement below exact.
        let tasks: Vec<Task<WorkerOutput>> = worker_state
            .iter_mut()
            .map(|slot| {
                let mut worker = slot.take().expect("worker state in flight");
                let engine = Arc::clone(&shared);
                let pool = pool.clone();
                Box::new(move || {
                    let ctx = EvalContext::from_pool(pool.as_deref(), eval_chunks);
                    let mut profile = ProfileReport::new();
                    let (_avg, _selected, alloc_stats) = engine.iterate_on(
                        &mut worker.placement,
                        &mut worker.scratch,
                        &mut worker.rng,
                        &mut profile,
                        &[],
                        &[],
                        &ctx,
                    );
                    // The worker's post-iteration cost refresh joins the same
                    // intra-rank context as its evaluation/allocation fan-outs
                    // (bitwise identical to the serial refresh).
                    let cost = engine.cost_with_on(&worker.placement, &mut worker.scratch, &ctx);
                    (worker, cost, alloc_stats)
                }) as Task<WorkerOutput>
            })
            .collect();
        let results = executor.run_tasks(tasks);

        // Barrier: the central store processes the workers in worker order —
        // improvement reports first update the store, then retry requests
        // read it, exactly as the paper's asynchronous exchange serialises at
        // the store.
        let mut best_mu_this_iteration: f64 = 0.0;
        for (w, (mut worker, cost, alloc_stats)) in results.into_iter().enumerate() {
            let rank = w + 1;
            // Full serial workload on the worker: evaluation + allocation.
            timeline.charge_compute(
                rank,
                &Workload {
                    net_evaluations: netlist.num_nets() as u64 + alloc_stats.net_evaluations as u64,
                    misc_operations: netlist.stats().pins as u64,
                },
            );

            worker.current_cost = cost;
            if cost.mu > worker.best_cost.mu {
                worker.best_cost = cost;
                worker.best_placement = worker.placement.clone();
                worker.fail_count = 0;
                // Inform the master of the new best solution.
                timeline.send(rank, 0, placement_bytes);
                if cost.mu > central_cost.mu {
                    central_cost = cost;
                    central_placement = worker.placement.clone();
                }
            } else {
                worker.fail_count += 1;
            }

            if worker.fail_count > config.retry_threshold {
                // Ask the central store whether a better solution exists.
                timeline.send(rank, 0, 16);
                timeline.send(0, rank, placement_bytes);
                if central_cost.mu > worker.current_cost.mu {
                    worker.placement = central_placement.clone();
                    worker.current_cost = central_cost;
                }
                worker.fail_count = 0;
            }
            best_mu_this_iteration = best_mu_this_iteration.max(worker.best_cost.mu);
            worker_state[w] = Some(worker);
        }
        mu_history.push(best_mu_this_iteration);
        if !control.keep_going(iteration, best_mu_this_iteration, central_cost.mu) {
            break;
        }
    }

    // The best solution over all workers is what the run reports.
    let mut best_cost = central_cost;
    let mut best_placement = central_placement;
    for worker in worker_state.iter().flatten() {
        if worker.best_cost.mu > best_cost.mu {
            best_cost = worker.best_cost;
            best_placement = worker.best_placement.clone();
        }
    }

    let iterations_run = mu_history.len();
    StrategyOutcome {
        best_placement,
        best_cost,
        modeled_seconds: timeline.makespan(),
        comm: timeline.stats(),
        iterations: iterations_run,
        mu_history,
        wall_seconds: started.elapsed().as_secs_f64(),
        backend: backend.label(),
        eval_chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Threaded;
    use crate::report::run_serial_baseline;
    use sime_core::engine::SimEConfig;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn engine(iterations: usize) -> SimEEngine {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("type3_test", 140, 13)).generate(),
        );
        SimEEngine::new(
            nl,
            SimEConfig::paper_defaults(Objectives::WirelengthPower, 8, iterations),
        )
    }

    #[test]
    fn type3_quality_is_at_least_the_single_search_quality() {
        // Taking the best over several differently-seeded searches can never
        // be worse than one of those searches alone... the first worker's
        // stream differs from the serial engine's, so compare against the
        // weakest possible statement: quality is a valid µ and the best
        // placement is legal and consistent.
        let engine = engine(8);
        let outcome = run_type3(
            &engine,
            ClusterConfig::paper_cluster(4),
            Type3Config {
                ranks: 4,
                iterations: 8,
                retry_threshold: 3,
            },
        );
        outcome
            .best_placement
            .validate(engine.evaluator().netlist())
            .unwrap();
        let re = engine.evaluator().evaluate(&outcome.best_placement);
        assert!((re.mu - outcome.best_mu()).abs() < 1e-12);
        assert!(outcome.best_mu() > 0.0 && outcome.best_mu() <= 1.0);
        // The best-so-far trace is monotone non-decreasing.
        let mut last = 0.0;
        for &mu in &outcome.mu_history {
            assert!(mu + 1e-12 >= last);
            last = mu;
        }
    }

    #[test]
    fn type3_backends_agree_bitwise() {
        let engine = engine(6);
        let config = Type3Config {
            ranks: 4,
            iterations: 6,
            retry_threshold: 1,
        };
        let modeled = run_type3(&engine, ClusterConfig::paper_cluster(4), config);
        for workers in [1, 2, 4] {
            let threaded = run_type3_on(
                &engine,
                ClusterConfig::paper_cluster(4),
                config,
                &Threaded::new(workers),
            );
            assert_eq!(
                modeled.best_cost.mu.to_bits(),
                threaded.best_cost.mu.to_bits()
            );
            assert_eq!(modeled.modeled_seconds, threaded.modeled_seconds);
            assert_eq!(modeled.comm, threaded.comm);
            for (a, b) in modeled.mu_history.iter().zip(&threaded.mu_history) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn type3_intra_rank_chunks_agree_bitwise() {
        let engine = engine(5);
        let config = Type3Config {
            ranks: 3,
            iterations: 5,
            retry_threshold: 2,
        };
        let modeled = run_type3(&engine, ClusterConfig::paper_cluster(3), config);
        for chunks in [2, 4] {
            let intra = run_type3_on(
                &engine,
                ClusterConfig::paper_cluster(3),
                config,
                &Threaded::new(2).with_eval_chunks(chunks),
            );
            assert_eq!(intra.eval_chunks, chunks);
            assert_eq!(modeled.best_cost.mu.to_bits(), intra.best_cost.mu.to_bits());
            assert_eq!(modeled.modeled_seconds, intra.modeled_seconds);
            assert_eq!(modeled.comm, intra.comm);
            for (a, b) in modeled.mu_history.iter().zip(&intra.mu_history) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn type3_runtime_is_close_to_serial() {
        // Table 4: no workload division, so the parallel runtime deviates
        // little from the serial runtime for the same iteration count.
        let engine = engine(6);
        let baseline = run_serial_baseline(&engine, &ClusterConfig::paper_cluster(3).compute);
        let outcome = run_type3(
            &engine,
            ClusterConfig::paper_cluster(4),
            Type3Config {
                ranks: 4,
                iterations: 6,
                retry_threshold: 100,
            },
        );
        let ratio = outcome.modeled_seconds / baseline.modeled_seconds;
        assert!(
            (0.7..1.5).contains(&ratio),
            "Type III runtime should track the serial runtime, ratio {ratio}"
        );
    }

    #[test]
    fn more_workers_do_not_change_the_runtime_much() {
        let engine = engine(5);
        let t3 = run_type3(
            &engine,
            ClusterConfig::paper_cluster(3),
            Type3Config {
                ranks: 3,
                iterations: 5,
                retry_threshold: 50,
            },
        )
        .modeled_seconds;
        let t5 = run_type3(
            &engine,
            ClusterConfig::paper_cluster(5),
            Type3Config {
                ranks: 5,
                iterations: 5,
                retry_threshold: 50,
            },
        )
        .modeled_seconds;
        assert!(
            (t5 / t3 - 1.0).abs() < 0.25,
            "runtimes should be nearly independent of the worker count: {t3} vs {t5}"
        );
    }

    #[test]
    fn low_retry_threshold_causes_more_communication() {
        let engine = engine(8);
        let run = |retry| {
            run_type3(
                &engine,
                ClusterConfig::paper_cluster(3),
                Type3Config {
                    ranks: 3,
                    iterations: 8,
                    retry_threshold: retry,
                },
            )
            .comm
        };
        let chatty = run(0);
        let quiet = run(1000);
        assert!(chatty.messages > quiet.messages);
    }

    #[test]
    fn type3_is_deterministic() {
        let engine = engine(5);
        let cfg = Type3Config {
            ranks: 3,
            iterations: 5,
            retry_threshold: 2,
        };
        let a = run_type3(&engine, ClusterConfig::paper_cluster(3), cfg);
        let b = run_type3(&engine, ClusterConfig::paper_cluster(3), cfg);
        assert_eq!(a.best_cost.mu, b.best_cost.mu);
        assert_eq!(a.modeled_seconds, b.modeled_seconds);
    }

    #[test]
    #[should_panic(expected = "at least two workers")]
    fn rejects_too_few_ranks() {
        let engine = engine(1);
        run_type3(
            &engine,
            ClusterConfig::paper_cluster(2),
            Type3Config {
                ranks: 2,
                iterations: 1,
                retry_threshold: 10,
            },
        );
    }
}
