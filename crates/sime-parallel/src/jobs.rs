//! Job-oriented session state: the thread-safe [`JobRunner`].
//!
//! [`crate::batch::BatchDriver`] reuses netlists and engines across the cells
//! of one sweep, but it is `&mut self` single-threaded session state — built,
//! used, dropped by one binary. A long-running placement service needs the
//! same reuse across *concurrent* jobs, with validation instead of panics and
//! an identity that survives renames. This module provides that:
//!
//! * **Content-addressed circuit cache.** Every netlist is keyed by its
//!   [`bookshelf_digest`] — an FNV-1a digest of its canonical Bookshelf
//!   `.nodes`/`.nets` serialisation. Two clients registering the same circuit
//!   under different names share one parsed netlist, one engine, one set of
//!   calibrated fuzzy goals; a client registering *different* contents under
//!   a known name gets a fresh cache line instead of silently reusing stale
//!   state. A name → digest memo keeps the digest computation off the
//!   per-job path.
//! * **Engine cache keyed by `(digest, objectives, seed)`.** Engine
//!   construction (CSR cost tables, critical-path extraction, fuzzy
//!   calibration) dominates small-run setup; calibration depends only on the
//!   circuit and objectives — never the seed — so a seed-override job reuses
//!   the calibrated evaluator of any cached sibling via
//!   [`SimEEngine::from_evaluator`] and pays none of it.
//! * **Typed errors.** [`JobRunner::run_job`] validates the spec (unknown
//!   circuit, rank count below the strategy minimum, zero iterations) and
//!   returns a [`JobError`] a protocol layer can forward, where
//!   [`crate::batch::BatchDriver::run_cell`] panics.
//!
//! Every cache sits behind its own mutex and `run_job` takes `&self`, so one
//! runner serves any number of threads; the strategy run itself — the long
//! part — never holds a lock. Determinism is untouched: for the same
//! [`ScenarioSpec`] the runner produces the same [`TrajectoryFingerprint`]
//! as the batch path, which is exactly what `tests/server_suite.rs` pins
//! against the golden registry.

use crate::batch::{ScenarioRecord, ScenarioSpec, StrategyKind, TrajectoryFingerprint};
use crate::control::{FreeRun, RunControl};
use crate::exec::ExecBackend;
use crate::portfolio::{run_portfolio_ctl, PortfolioConfig};
use crate::type1::{run_type1_ctl, Type1Config};
use crate::type2::{run_type2_ctl, Type2Config};
use crate::type3::{run_type3_ctl, Type3Config};
use cluster_sim::timeline::ClusterConfig;
use sime_core::engine::{SimEConfig, SimEEngine};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use vlsi_netlist::bench_suite::SuiteCircuit;
use vlsi_netlist::bookshelf::{parse_pl, write_bookshelf, write_pl};
use vlsi_netlist::Netlist;
use vlsi_place::cost::Objectives;
use vlsi_place::layout::Placement;
use vlsi_place::{placement_from_pl, placement_to_pl};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Content digest of a netlist: FNV-1a over its canonical Bookshelf
/// serialisation (`.nodes` text, a separator, `.nets` text). Renaming-
/// invariant in the cache sense — the digest covers exactly what a Bookshelf
/// round-trip preserves, so a reloaded dump of a circuit digests equal to
/// the original.
pub fn bookshelf_digest(netlist: &Netlist) -> u64 {
    let pair = write_bookshelf(netlist);
    let mut hash = FNV_OFFSET;
    for byte in pair
        .nodes
        .bytes()
        .chain(std::iter::once(0xff))
        .chain(pair.nets.bytes())
    {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One placement job: a scenario cell plus the per-job knobs that are *not*
/// part of the scenario identity.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The scenario to run. Its `workers`/`eval_chunks` fields are ignored
    /// by [`JobRunner::run_job`] — the caller chooses the backend — but kept
    /// so `scenario.id()` stays the golden-comparable identity.
    pub scenario: ScenarioSpec,
    /// Optional seed override. `None` runs the engine's default seed — the
    /// batch path's behaviour, and the only mode whose fingerprint can match
    /// a checked-in golden. `Some(s)` re-seeds every RNG stream derivation
    /// (master, per-rank, per-worker) with `s`.
    pub seed: Option<u64>,
}

impl JobSpec {
    /// A job that replays `scenario` exactly as the batch path would.
    pub fn batch(scenario: ScenarioSpec) -> Self {
        JobSpec {
            scenario,
            seed: None,
        }
    }
}

/// Why a job was rejected. Every variant is a *request* problem: the runner
/// and its caches stay fully usable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The spec names a circuit that is neither a suite circuit nor a
    /// registered netlist.
    UnknownCircuit(String),
    /// The rank count is below the strategy's minimum (carries the strategy
    /// label, the minimum and the offending value).
    TooFewRanks {
        /// Strategy label (`"type1"`, ...).
        strategy: String,
        /// The smallest rank count the strategy accepts.
        min: usize,
        /// The rank count the spec asked for.
        got: usize,
    },
    /// The spec asks for zero iterations — nothing to run, no trajectory to
    /// fingerprint.
    NoIterations,
    /// A Bookshelf registration failed to parse (carries the parser's
    /// message).
    BadBookshelf(String),
    /// The spec's `warm_start` tag names neither the builtin `rr` layout nor
    /// a placement registered with [`JobRunner::register_placement`].
    UnknownWarmStart(String),
    /// A warm-start `.pl` failed to parse or did not legally place the
    /// spec's circuit (carries the parser's or converter's message).
    BadPlacement(String),
    /// The strategy cannot run on a circuit with fixed cells (the portfolio's
    /// metaheuristic islands move arbitrary cells and have no notion of a
    /// pinned pad or macro).
    FixedCellsUnsupported {
        /// Strategy label (`"portfolio_mixed"`, ...).
        strategy: String,
        /// The mixed-size circuit the spec asked for.
        circuit: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::UnknownCircuit(name) => write!(f, "unknown circuit `{name}`"),
            JobError::TooFewRanks { strategy, min, got } => {
                write!(f, "{strategy} needs at least {min} ranks, spec has {got}")
            }
            JobError::NoIterations => write!(f, "iterations must be at least 1"),
            JobError::BadBookshelf(msg) => write!(f, "bookshelf parse failed: {msg}"),
            JobError::UnknownWarmStart(tag) => write!(f, "unknown warm-start placement `{tag}`"),
            JobError::BadPlacement(msg) => write!(f, "warm-start placement rejected: {msg}"),
            JobError::FixedCellsUnsupported { strategy, circuit } => write!(
                f,
                "{strategy} cannot run on `{circuit}`: its metaheuristic islands \
                 do not support fixed cells"
            ),
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    /// Stable machine-readable code for the protocol layer.
    pub fn code(&self) -> &'static str {
        match self {
            JobError::UnknownCircuit(_) => "unknown_circuit",
            JobError::TooFewRanks { .. } => "too_few_ranks",
            JobError::NoIterations => "no_iterations",
            JobError::BadBookshelf(_) => "bad_bookshelf",
            JobError::UnknownWarmStart(_) => "unknown_warm_start",
            JobError::BadPlacement(_) => "bad_placement",
            JobError::FixedCellsUnsupported { .. } => "fixed_cells_unsupported",
        }
    }
}

/// A finished job: the spec it ran, the raw outcome and the
/// golden-comparable fingerprint.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job as submitted.
    pub spec: JobSpec,
    /// The strategy outcome; `outcome.iterations` is the count that actually
    /// ran (less than requested if the control cancelled).
    pub outcome: crate::report::StrategyOutcome,
    /// Fingerprint of the run. For an uncancelled default-seed job this is
    /// bitwise equal to the batch path's fingerprint for the same scenario.
    pub fingerprint: TrajectoryFingerprint,
    /// Content digest of the circuit the job ran on (the engine-cache key).
    pub circuit_digest: u64,
}

impl JobOutcome {
    /// Whether the run completed all requested iterations (false = the
    /// control ended it early).
    pub fn completed(&self) -> bool {
        self.outcome.iterations == self.spec.scenario.iterations
    }

    /// The finished job as a batch-layer [`ScenarioRecord`].
    pub fn into_record(self) -> ScenarioRecord {
        ScenarioRecord {
            spec: self.spec.scenario,
            outcome: self.outcome,
            fingerprint: self.fingerprint,
        }
    }
}

/// Cache occupancy and traffic counters, for monitoring and leak tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunnerStats {
    /// Distinct circuit contents currently cached (by digest).
    pub circuits: usize,
    /// Engines currently cached (one per `(digest, objectives, seed)`).
    pub engines: usize,
    /// Engines built from scratch (full calibration).
    pub engines_calibrated: u64,
    /// Engines built by reusing a cached sibling's calibrated evaluator.
    pub engines_reseeded: u64,
    /// `run_job` calls that found their engine already cached.
    pub engine_hits: u64,
}

#[derive(Default)]
struct Caches {
    /// name → content digest (memo so the per-job path never re-serialises).
    digests: HashMap<String, u64>,
    /// digest → parsed netlist (the content-addressed store).
    circuits: HashMap<u64, Arc<Netlist>>,
    /// warm-start tag → Bookshelf `.pl` text (resolved per job against the
    /// job's circuit; the text, not a `Placement`, is the stored form so one
    /// registration can warm any compatible circuit and the digest covers
    /// exactly what the interchange round-trip preserves).
    placements: HashMap<String, String>,
}

/// Engine-cache key: `(circuit digest, objectives, seed, warm-start
/// digest)`; the warm digest is [`pl_digest`] of the resolved `.pl` text,
/// `0` for a cold start.
type EngineKey = (u64, Objectives, u64, u64);

/// Thread-safe job engine: shared, concurrent session state for placement
/// jobs. See the [module docs](self) for the cache design.
#[derive(Default)]
pub struct JobRunner {
    caches: Mutex<Caches>,
    engines: Mutex<HashMap<EngineKey, Arc<SimEEngine>>>,
    stats: Mutex<RunnerStats>,
}

/// Content digest of a warm-start placement: FNV-1a over its Bookshelf `.pl`
/// text, clamped away from `0` — the engine-cache key reserves `0` for "no
/// warm start".
pub fn pl_digest(pl_text: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in pl_text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash.max(1)
}

impl JobRunner {
    /// An empty runner; circuits are generated or registered on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pre-built netlist under its own name, keyed by content
    /// digest. Returns the digest. Registering identical contents twice is
    /// idempotent; registering different contents under a name that was
    /// already mapped simply re-points the name at the new digest.
    pub fn register_netlist(&self, netlist: Arc<Netlist>) -> u64 {
        let digest = bookshelf_digest(&netlist);
        let mut caches = self.caches.lock().unwrap();
        caches.digests.insert(netlist.name().to_string(), digest);
        caches.circuits.entry(digest).or_insert(netlist);
        digest
    }

    /// Parses a Bookshelf `.nodes`/`.nets` pair and registers the result.
    /// Returns `(circuit name, digest)`.
    pub fn register_bookshelf(&self, nodes: &str, nets: &str) -> Result<(String, u64), JobError> {
        let netlist = vlsi_netlist::bookshelf::parse_bookshelf(nodes, nets)
            .map_err(|e| JobError::BadBookshelf(e.to_string()))?;
        let name = netlist.name().to_string();
        let digest = self.register_netlist(Arc::new(netlist));
        Ok((name, digest))
    }

    /// Registers a Bookshelf `.pl` placement under a warm-start tag. The
    /// text is validated lazily, per job, against the job's circuit — one
    /// registration can warm any circuit whose cell names it covers. Returns
    /// the [`pl_digest`] of the text. Re-registering a tag re-points it.
    pub fn register_placement(&self, tag: &str, pl_text: &str) -> u64 {
        let mut caches = self.caches.lock().unwrap();
        caches
            .placements
            .insert(tag.to_string(), pl_text.to_string());
        pl_digest(pl_text)
    }

    /// Resolves a warm-start tag for `netlist` into `(placement, .pl text)`.
    ///
    /// The builtin tag `"rr"` synthesizes the deterministic round-robin
    /// layout and pushes it through the same `.pl` writer/parser pipeline a
    /// registered placement takes, so every warm start — builtin or client-
    /// supplied — exercises the interchange round trip. Any other tag must
    /// have been registered with [`JobRunner::register_placement`].
    fn warm_placement(
        &self,
        tag: &str,
        netlist: &Arc<Netlist>,
        num_rows: usize,
    ) -> Result<(Arc<Placement>, u64), JobError> {
        let pl_text = if tag == "rr" {
            let rr = Placement::round_robin(netlist, num_rows);
            write_pl(&placement_to_pl(netlist, &rr))
        } else {
            let caches = self.caches.lock().unwrap();
            caches
                .placements
                .get(tag)
                .cloned()
                .ok_or_else(|| JobError::UnknownWarmStart(tag.to_string()))?
        };
        let entries = parse_pl(&pl_text).map_err(|e| JobError::BadPlacement(e.to_string()))?;
        let placement = placement_from_pl(netlist, num_rows, &entries)
            .map_err(|e| JobError::BadPlacement(e.to_string()))?;
        Ok((Arc::new(placement), pl_digest(&pl_text)))
    }

    /// The netlist for `name`, generating and caching the suite circuit on
    /// first use. Registered netlists take precedence over suite generation
    /// (same rule as the batch driver).
    pub fn netlist(&self, name: &str) -> Result<(Arc<Netlist>, u64), JobError> {
        let mut caches = self.caches.lock().unwrap();
        if let Some(&digest) = caches.digests.get(name) {
            if let Some(netlist) = caches.circuits.get(&digest) {
                return Ok((Arc::clone(netlist), digest));
            }
        }
        let circuit = SuiteCircuit::from_name(name)
            .ok_or_else(|| JobError::UnknownCircuit(name.to_string()))?;
        let netlist = Arc::new(circuit.generate());
        let digest = bookshelf_digest(&netlist);
        caches.digests.insert(name.to_string(), digest);
        let netlist = Arc::clone(caches.circuits.entry(digest).or_insert(netlist));
        Ok((netlist, digest))
    }

    /// The engine for `(digest, objectives, seed)`, building and caching it
    /// on first use. Construction is serialised under the cache lock on
    /// purpose: two concurrent jobs for the same new circuit calibrate once,
    /// not twice. Seed variants of a cached circuit skip calibration
    /// entirely (see the [module docs](self)).
    fn engine(
        &self,
        netlist: &Arc<Netlist>,
        digest: u64,
        num_rows: usize,
        objectives: Objectives,
        seed: Option<u64>,
        warm: Option<(Arc<Placement>, u64)>,
    ) -> Arc<SimEEngine> {
        // The default seed must match the batch path's engine config so
        // default-seed jobs fingerprint identically to BatchDriver cells.
        let base_config = SimEConfig::paper_defaults(objectives, num_rows, 1);
        let seed = seed.unwrap_or(base_config.seed);
        let warm_digest = warm.as_ref().map_or(0, |(_, d)| *d);
        let key = (digest, objectives, seed, warm_digest);
        let mut engines = self.engines.lock().unwrap();
        if let Some(engine) = engines.get(&key) {
            self.stats.lock().unwrap().engine_hits += 1;
            return Arc::clone(engine);
        }
        let config = SimEConfig {
            seed,
            ..base_config
        };
        // A cached sibling (same circuit + objectives, any seed or warm
        // start) already paid for calibration; its evaluator is seed- and
        // start-independent by construction.
        let sibling = engines
            .iter()
            .find(|((d, o, _, _), _)| *d == digest && *o == objectives)
            .map(|(_, engine)| Arc::clone(engine));
        let mut engine = match sibling {
            Some(base) => {
                self.stats.lock().unwrap().engines_reseeded += 1;
                SimEEngine::from_evaluator(base.evaluator().clone(), config)
            }
            None => {
                self.stats.lock().unwrap().engines_calibrated += 1;
                SimEEngine::new(Arc::clone(netlist), config)
            }
        };
        if let Some((placement, _)) = warm {
            engine = engine.with_initial(placement);
        }
        let engine = Arc::new(engine);
        engines.insert(key, Arc::clone(&engine));
        engine
    }

    /// The engine a job for `(circuit, objectives, seed)` would run on,
    /// resolving the circuit and building/caching the engine as
    /// [`JobRunner::run_job`] does. `seed: None` is the default (batch-path)
    /// seed.
    pub fn engine_for(
        &self,
        circuit: &str,
        objectives: Objectives,
        seed: Option<u64>,
    ) -> Result<Arc<SimEEngine>, JobError> {
        self.engine_for_warm(circuit, objectives, seed, None)
    }

    /// [`JobRunner::engine_for`] with a warm-start tag: the returned engine
    /// starts every run from the resolved `.pl` placement instead of a
    /// random deal. Cached separately per warm-start content digest.
    pub fn engine_for_warm(
        &self,
        circuit: &str,
        objectives: Objectives,
        seed: Option<u64>,
        warm_start: Option<&str>,
    ) -> Result<Arc<SimEEngine>, JobError> {
        let (netlist, digest) = self.netlist(circuit)?;
        let num_rows = SuiteCircuit::from_name(circuit)
            .ok_or_else(|| JobError::UnknownCircuit(circuit.to_string()))?
            .num_rows();
        let warm = match warm_start {
            None => None,
            Some(tag) => Some(self.warm_placement(tag, &netlist, num_rows)?),
        };
        Ok(self.engine(&netlist, digest, num_rows, objectives, seed, warm))
    }

    /// Validates a scenario against the strategy invariants the drivers
    /// would otherwise assert on. Public so admission layers (the server's
    /// submit path) can reject a bad spec *before* queueing it.
    pub fn validate(spec: &ScenarioSpec) -> Result<(), JobError> {
        if spec.iterations == 0 {
            return Err(JobError::NoIterations);
        }
        let min = spec.strategy.min_ranks();
        if spec.ranks < min {
            return Err(JobError::TooFewRanks {
                strategy: spec.strategy.label().to_string(),
                min,
                got: spec.ranks,
            });
        }
        Ok(())
    }

    /// Runs one job on `backend`, observing (and possibly cancelling) it
    /// through `control`. `&self` — any number of threads may call this
    /// concurrently; no lock is held while the strategy runs.
    pub fn run_job(
        &self,
        spec: &JobSpec,
        backend: &dyn ExecBackend,
        control: &dyn RunControl,
    ) -> Result<JobOutcome, JobError> {
        let scenario = &spec.scenario;
        Self::validate(scenario)?;
        let (netlist, digest) = self.netlist(&scenario.circuit)?;
        if netlist.has_fixed_cells() {
            if let StrategyKind::Portfolio(_) = scenario.strategy {
                return Err(JobError::FixedCellsUnsupported {
                    strategy: scenario.strategy.label().to_string(),
                    circuit: scenario.circuit.clone(),
                });
            }
        }
        let engine = self.engine_for_warm(
            &scenario.circuit,
            scenario.objectives,
            spec.seed,
            scenario.warm_start.as_deref(),
        )?;
        let cluster = ClusterConfig::paper_cluster(scenario.ranks);
        let outcome = match scenario.strategy {
            StrategyKind::Type1 => run_type1_ctl(
                &engine,
                cluster,
                Type1Config {
                    ranks: scenario.ranks,
                    iterations: scenario.iterations,
                },
                backend,
                control,
            ),
            StrategyKind::Type2(pattern) => run_type2_ctl(
                &engine,
                cluster,
                Type2Config {
                    ranks: scenario.ranks,
                    iterations: scenario.iterations,
                    pattern,
                },
                backend,
                control,
            ),
            StrategyKind::Type3 => run_type3_ctl(
                &engine,
                cluster,
                Type3Config {
                    ranks: scenario.ranks,
                    iterations: scenario.iterations,
                    retry_threshold: 3,
                },
                backend,
                control,
            ),
            StrategyKind::Portfolio(mix) => run_portfolio_ctl(
                &engine,
                cluster,
                PortfolioConfig::scenario(mix, scenario.ranks, scenario.iterations),
                backend,
                control,
            ),
        };
        let fingerprint = TrajectoryFingerprint::from_outcome(&outcome);
        Ok(JobOutcome {
            spec: spec.clone(),
            outcome,
            fingerprint,
            circuit_digest: digest,
        })
    }

    /// Runs a scenario exactly as the batch path would: the spec's own
    /// backend, default seed, no control.
    pub fn run_scenario(&self, scenario: &ScenarioSpec) -> Result<JobOutcome, JobError> {
        self.run_job(
            &JobSpec::batch(scenario.clone()),
            scenario.backend().as_ref(),
            &FreeRun,
        )
    }

    /// Current cache occupancy and traffic counters.
    pub fn stats(&self) -> RunnerStats {
        let caches = self.caches.lock().unwrap();
        let engines = self.engines.lock().unwrap();
        let counters = self.stats.lock().unwrap();
        RunnerStats {
            circuits: caches.circuits.len(),
            engines: engines.len(),
            ..*counters
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchDriver;
    use crate::control::CancelAfter;
    use crate::exec::{Modeled, SharedPool};
    use crate::type2::RowPattern;
    use cluster_sim::comm::WorkerPool;

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            circuit: "s1196".into(),
            strategy: StrategyKind::Type2(RowPattern::Random),
            ranks: 3,
            iterations: 3,
            objectives: Objectives::WirelengthPower,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        }
    }

    #[test]
    fn job_runner_matches_the_batch_path_bitwise() {
        let runner = JobRunner::new();
        let mut driver = BatchDriver::new();
        let spec = small_spec();
        let job = runner.run_scenario(&spec).unwrap();
        let cell = driver.run_cell(&spec);
        assert_eq!(job.fingerprint, cell.fingerprint);
        assert!(job.completed());
    }

    #[test]
    fn digest_is_content_addressed_and_rename_stable() {
        let nl = Arc::new(SuiteCircuit::from_name("s1196").unwrap().generate());
        let d1 = bookshelf_digest(&nl);
        let d2 = bookshelf_digest(&nl);
        assert_eq!(d1, d2);
        // A round-trip through Bookshelf text preserves the digest.
        let pair = write_bookshelf(&nl);
        let reparsed = vlsi_netlist::bookshelf::parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert_eq!(bookshelf_digest(&reparsed), d1);
        // A different circuit digests differently.
        let other = Arc::new(SuiteCircuit::from_name("s1238").unwrap().generate());
        assert_ne!(bookshelf_digest(&other), d1);
    }

    #[test]
    fn identical_contents_share_one_cache_line() {
        let runner = JobRunner::new();
        let nl = Arc::new(SuiteCircuit::from_name("s1196").unwrap().generate());
        let d1 = runner.register_netlist(Arc::clone(&nl));
        // Re-register the same contents reloaded from Bookshelf text.
        let pair = write_bookshelf(&nl);
        let (name, d2) = runner.register_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert_eq!(name, "s1196");
        assert_eq!(d1, d2);
        assert_eq!(runner.stats().circuits, 1);
        let (cached, digest) = runner.netlist("s1196").unwrap();
        assert_eq!(digest, d1);
        assert!(Arc::ptr_eq(&cached, &nl), "first registration wins");
    }

    #[test]
    fn engines_are_shared_and_reseeded_without_recalibration() {
        let runner = JobRunner::new();
        let spec = small_spec();
        runner.run_scenario(&spec).unwrap();
        runner.run_scenario(&spec).unwrap();
        let stats = runner.stats();
        assert_eq!(stats.engines_calibrated, 1);
        assert_eq!(stats.engine_hits, 1);

        // A seed override builds a second engine but steals the calibration.
        let seeded = JobSpec {
            scenario: spec.clone(),
            seed: Some(42),
        };
        let out = runner.run_job(&seeded, &Modeled, &FreeRun).unwrap();
        let stats = runner.stats();
        assert_eq!(stats.engines_calibrated, 1, "no second calibration");
        assert_eq!(stats.engines_reseeded, 1);
        assert_eq!(stats.engines, 2);
        // A different seed is a different trajectory.
        let default = runner.run_scenario(&spec).unwrap();
        assert_ne!(out.fingerprint, default.fingerprint);
        // And the reseeded engine is itself deterministic.
        let again = runner.run_job(&seeded, &Modeled, &FreeRun).unwrap();
        assert_eq!(again.fingerprint, out.fingerprint);
    }

    #[test]
    fn typed_errors_cover_the_validation_surface() {
        let runner = JobRunner::new();
        let mut unknown = small_spec();
        unknown.circuit = "does_not_exist".into();
        let err = runner.run_scenario(&unknown).unwrap_err();
        assert_eq!(err.code(), "unknown_circuit");
        assert!(err.to_string().contains("does_not_exist"));

        let mut few = small_spec();
        few.strategy = StrategyKind::Type3;
        few.ranks = 2;
        let err = runner.run_scenario(&few).unwrap_err();
        assert_eq!(
            err,
            JobError::TooFewRanks {
                strategy: "type3".into(),
                min: 3,
                got: 2
            }
        );

        let mut empty = small_spec();
        empty.iterations = 0;
        assert_eq!(
            runner.run_scenario(&empty).unwrap_err().code(),
            "no_iterations"
        );

        assert_eq!(
            runner
                .register_bookshelf("garbage", "garbage")
                .unwrap_err()
                .code(),
            "bad_bookshelf"
        );
        // The runner survives every rejection.
        assert!(runner.run_scenario(&small_spec()).is_ok());
    }

    #[test]
    fn warm_started_jobs_replay_registered_pl_layouts_bitwise() {
        let runner = JobRunner::new();
        let cold = small_spec();
        let mut warm = small_spec();
        warm.warm_start = Some("rr".into());
        assert_ne!(warm.id(), cold.id(), "warm starts are their own identity");

        let cold_fp = runner.run_scenario(&cold).unwrap().fingerprint;
        let builtin_fp = runner.run_scenario(&warm).unwrap().fingerprint;
        assert_ne!(
            builtin_fp, cold_fp,
            "a warm start must change the trajectory"
        );

        // Registering the identical `.pl` text under another tag replays the
        // identical trajectory: the warm identity is the placement content.
        let (netlist, _) = runner.netlist("s1196").unwrap();
        let num_rows = SuiteCircuit::from_name("s1196").unwrap().num_rows();
        let rr = Placement::round_robin(&netlist, num_rows);
        let pl_text = write_pl(&placement_to_pl(&netlist, &rr));
        runner.register_placement("client_rr", &pl_text);
        let mut registered = small_spec();
        registered.warm_start = Some("client_rr".into());
        let registered_fp = runner.run_scenario(&registered).unwrap().fingerprint;
        assert_eq!(registered_fp, builtin_fp);

        // And the warm engine is cached: three runs, two distinct engines
        // (cold + warm share one calibration).
        let stats = runner.stats();
        assert_eq!(stats.engines, 2);
        assert_eq!(stats.engines_calibrated, 1);
    }

    #[test]
    fn warm_start_errors_are_typed() {
        let runner = JobRunner::new();
        let mut unknown = small_spec();
        unknown.warm_start = Some("nope".into());
        let err = runner.run_scenario(&unknown).unwrap_err();
        assert_eq!(err.code(), "unknown_warm_start");
        assert!(err.to_string().contains("nope"));

        runner.register_placement("garbage", "not a pl file");
        let mut bad = small_spec();
        bad.warm_start = Some("garbage".into());
        let err = runner.run_scenario(&bad).unwrap_err();
        assert_eq!(err.code(), "bad_placement");
    }

    #[test]
    fn mixed_circuits_run_everywhere_but_the_portfolio() {
        let runner = JobRunner::new();
        let mut spec = small_spec();
        spec.circuit = "mix600".into();
        spec.iterations = 2;
        let out = runner.run_scenario(&spec).unwrap();
        assert!(out.completed());

        let (netlist, _) = runner.netlist("mix600").unwrap();
        assert!(netlist.has_fixed_cells());

        let mut portfolio = spec.clone();
        portfolio.strategy = StrategyKind::Portfolio(crate::portfolio::PortfolioMix::Mixed);
        portfolio.ranks = 4;
        let err = runner.run_scenario(&portfolio).unwrap_err();
        assert_eq!(err.code(), "fixed_cells_unsupported");
        assert!(err.to_string().contains("mix600"));
    }

    #[test]
    fn cancelled_job_reports_partial_iterations_and_prefix_trajectory() {
        let runner = JobRunner::new();
        let spec = JobSpec::batch(small_spec());
        let full = runner.run_job(&spec, &Modeled, &FreeRun).unwrap();
        let cut = runner.run_job(&spec, &Modeled, &CancelAfter(1)).unwrap();
        assert!(!cut.completed());
        assert_eq!(cut.outcome.iterations, 2);
        for (a, b) in cut.outcome.mu_history.iter().zip(&full.outcome.mu_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn concurrent_jobs_on_one_shared_pool_match_the_goldens_path() {
        // The server's execution shape in miniature: several threads, one
        // runner, one pool — every fingerprint equal to the serial one.
        let runner = Arc::new(JobRunner::new());
        let pool = Arc::new(WorkerPool::new(2));
        let spec = small_spec();
        let serial = runner.run_scenario(&spec).unwrap().fingerprint;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let runner = Arc::clone(&runner);
                let backend = SharedPool::new(Arc::clone(&pool));
                let spec = spec.clone();
                let serial = &serial;
                scope.spawn(move || {
                    let out = runner
                        .run_job(&JobSpec::batch(spec), &backend, &FreeRun)
                        .unwrap();
                    assert_eq!(&out.fingerprint, serial);
                });
            }
        });
        assert_eq!(pool.queued_jobs(), 0, "no leaked jobs in the lanes");
    }
}
