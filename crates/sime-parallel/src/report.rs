//! Shared result types and the modeled-serial-time baseline.
//!
//! Every strategy run — Type I/II/III, on either execution backend — ends in
//! a [`StrategyOutcome`]; the serial reference point the paper's tables
//! normalise against comes from [`run_serial_baseline`], which runs the
//! serial engine and prices its work profile on one node of the simulated
//! cluster via [`modeled_serial_seconds`].

use cluster_sim::machine::{ComputeModel, Workload};
use cluster_sim::timeline::CommStats;
use sime_core::engine::{SimEEngine, SimEResult};
use sime_core::profile::{Phase, ProfileReport};
use vlsi_place::cost::CostBreakdown;
use vlsi_place::layout::Placement;

/// Bytes used to ship one cell's slot (row + index) in a placement message.
pub const BYTES_PER_CELL: u64 = 8;
/// Bytes used to ship one goodness value.
pub const BYTES_PER_GOODNESS: u64 = 8;

/// Outcome of one parallel-strategy run on the simulated cluster.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// Best placement found by the strategy (the master's view).
    pub best_placement: Placement,
    /// Cost breakdown of the best placement.
    pub best_cost: CostBreakdown,
    /// Modeled runtime (makespan) on the simulated cluster, in seconds.
    /// Identical across execution backends for a fixed configuration.
    pub modeled_seconds: f64,
    /// Communication statistics of the modeled run.
    pub comm: CommStats,
    /// Iterations executed (per processor).
    pub iterations: usize,
    /// Solution quality `µ(s)` after every iteration, as seen by the master.
    pub mu_history: Vec<f64>,
    /// Host wall-clock seconds the run actually took. Unlike every other
    /// field this depends on the execution backend and the machine; it is
    /// *not* covered by the determinism contract (`DESIGN.md` §4).
    pub wall_seconds: f64,
    /// Label of the execution backend that produced the run
    /// (`"modeled"`, `"threaded(4)"`, `"threaded(4,ev2)"`, …).
    pub backend: String,
    /// Effective intra-rank evaluation parallelism of the run: the number of
    /// chunks each rank's goodness/trial-scoring loops actually fanned out
    /// into (1 when the backend has no pool or the `EvalParallelism` knob is
    /// off). Covered by the determinism contract: changing it never changes
    /// any other field except `wall_seconds`.
    pub eval_chunks: usize,
}

impl StrategyOutcome {
    /// Best quality reached.
    pub fn best_mu(&self) -> f64 {
        self.best_cost.mu
    }

    /// Speed-up of this run versus a serial time in seconds.
    pub fn speedup_versus(&self, serial_seconds: f64) -> f64 {
        if self.modeled_seconds <= 0.0 {
            0.0
        } else {
            serial_seconds / self.modeled_seconds
        }
    }

    /// Fraction of a reference (serial) quality that this run achieved,
    /// capped at 1. The paper reports this percentage in brackets whenever a
    /// parallel configuration fails to reach the serial quality.
    pub fn quality_fraction_of(&self, serial_mu: f64) -> f64 {
        if serial_mu <= 0.0 {
            1.0
        } else {
            (self.best_mu() / serial_mu).min(1.0)
        }
    }
}

/// Serial SimE result together with its modeled runtime on one cluster node.
#[derive(Debug, Clone)]
pub struct SerialBaseline {
    /// The serial run result (best placement, history, profile).
    pub result: SimEResult,
    /// Modeled runtime of the serial run on one node of the simulated
    /// cluster, in seconds.
    pub modeled_seconds: f64,
}

impl SerialBaseline {
    /// Best quality reached by the serial run.
    pub fn best_mu(&self) -> f64 {
        self.result.best_cost.mu
    }
}

/// Converts an operator-level work profile into modeled seconds on one node.
///
/// Net-length estimations (cost calculation, allocation trial scoring, delay
/// propagation) are priced at the net-evaluation rate; goodness evaluation
/// and selection are per-cell bookkeeping priced at the miscellaneous rate.
pub fn modeled_serial_seconds(profile: &ProfileReport, compute: &ComputeModel) -> f64 {
    let net_evals = profile.net_evals(Phase::CostCalculation)
        + profile.net_evals(Phase::Allocation)
        + profile.net_evals(Phase::DelayCalculation);
    let misc = profile.net_evals(Phase::GoodnessEvaluation) + profile.net_evals(Phase::Selection);
    compute.seconds(&Workload {
        net_evaluations: net_evals,
        misc_operations: misc,
    })
}

/// Runs the serial engine and attaches the modeled runtime of the run on one
/// node described by `compute`.
pub fn run_serial_baseline(engine: &SimEEngine, compute: &ComputeModel) -> SerialBaseline {
    let result = engine.run();
    let modeled_seconds = modeled_serial_seconds(&result.profile, compute);
    SerialBaseline {
        result,
        modeled_seconds,
    }
}

/// Per-rank evaluation workload for a cell partition: every rank estimates
/// the length of each net incident to one of its cells (duplicating nets that
/// span partitions — the effect the paper identifies as the main weakness of
/// Type I partitioning) plus per-cell bookkeeping.
pub fn partition_evaluation_workload(
    engine: &SimEEngine,
    cells: &[vlsi_netlist::CellId],
) -> Workload {
    let netlist = engine.evaluator().netlist();
    let mut distinct_nets: Vec<vlsi_netlist::NetId> = cells
        .iter()
        .flat_map(|&c| netlist.nets_of_cell(c).iter().copied())
        .collect();
    distinct_nets.sort_unstable();
    distinct_nets.dedup();
    Workload {
        net_evaluations: distinct_nets.len() as u64,
        misc_operations: cells.len() as u64 * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sime_core::engine::SimEConfig;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn engine() -> SimEEngine {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("report_test", 120, 3)).generate(),
        );
        SimEEngine::new(nl, SimEConfig::fast(Objectives::WirelengthPower, 6, 5))
    }

    #[test]
    fn serial_baseline_has_positive_modeled_time() {
        let engine = engine();
        let baseline = run_serial_baseline(&engine, &ComputeModel::pentium4_2ghz());
        assert!(baseline.modeled_seconds > 0.0);
        assert!(baseline.best_mu() > 0.0 && baseline.best_mu() <= 1.0);
    }

    #[test]
    fn modeled_time_scales_with_the_compute_model() {
        let engine = engine();
        let result = engine.run();
        let slow = modeled_serial_seconds(&result.profile, &ComputeModel::pentium4_2ghz());
        let fast = modeled_serial_seconds(&result.profile, &ComputeModel::fast_node());
        assert!(slow > fast * 10.0);
    }

    #[test]
    fn partition_workload_sums_to_at_least_the_serial_evaluation() {
        // Splitting the cells over ranks duplicates boundary nets, so the sum
        // of per-partition net evaluations is >= the number of distinct nets.
        let engine = engine();
        let netlist = engine.evaluator().netlist().clone();
        let cells: Vec<_> = netlist.cell_ids().collect();
        let mid = cells.len() / 2;
        let a = partition_evaluation_workload(&engine, &cells[..mid]);
        let b = partition_evaluation_workload(&engine, &cells[mid..]);
        assert!(a.net_evaluations + b.net_evaluations >= netlist.num_nets() as u64);
        let whole = partition_evaluation_workload(&engine, &cells);
        assert_eq!(whole.net_evaluations, netlist.num_nets() as u64);
    }

    #[test]
    fn quality_fraction_is_capped_at_one() {
        let engine = engine();
        let baseline = run_serial_baseline(&engine, &ComputeModel::fast_node());
        let outcome = StrategyOutcome {
            best_placement: baseline.result.best_placement.clone(),
            best_cost: baseline.result.best_cost,
            modeled_seconds: 1.0,
            comm: CommStats::default(),
            iterations: 1,
            mu_history: vec![],
            wall_seconds: 0.0,
            backend: "modeled".into(),
            eval_chunks: 1,
        };
        assert!((outcome.quality_fraction_of(baseline.best_mu()) - 1.0).abs() < 1e-12);
        assert!(outcome.quality_fraction_of(baseline.best_mu() * 2.0) < 1.0);
        assert!((outcome.speedup_versus(2.0) - 2.0).abs() < 1e-12);
    }
}
