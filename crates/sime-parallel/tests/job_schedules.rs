//! Property: the `JobRunner` on a shared pool is schedule-invariant.
//!
//! Random job schedules — arrival order × strategy mix × seeds × worker
//! counts × cancellation points — run concurrently on one `JobRunner` +
//! `SharedPool`, then replay one-at-a-time on a fresh runner with the
//! `Modeled` backend (the serial oracle). Every job's fingerprint must match
//! the oracle's **bitwise**, including cancelled jobs: a `CancelAfter(k)`
//! run truncates at the same iteration boundary on both sides, so even
//! truncated trajectories compare exactly.

use cluster_sim::comm::WorkerPool;
use proptest::prelude::*;
use sime_parallel::batch::{ScenarioSpec, StrategyKind};
use sime_parallel::control::{CancelAfter, FreeRun, RunControl};
use sime_parallel::exec::{Modeled, SharedPool};
use sime_parallel::jobs::{JobRunner, JobSpec};
use sime_parallel::type2::RowPattern;
use std::sync::Arc;
use vlsi_place::cost::Objectives;

#[derive(Debug, Clone)]
struct ScheduledJob {
    spec: JobSpec,
    cancel_after: Option<usize>,
}

fn strategy_from(choice: u8) -> StrategyKind {
    match choice % 4 {
        0 => StrategyKind::Type1,
        1 => StrategyKind::Type2(RowPattern::Fixed),
        2 => StrategyKind::Type2(RowPattern::Random),
        _ => StrategyKind::Type3,
    }
}

fn arb_job() -> impl Strategy<Value = ScheduledJob> {
    (
        0u8..4,
        2usize..5,  // iterations
        0u8..3,     // seed mode: default / two fixed overrides
        0usize..10, // cancellation point selector
    )
        .prop_map(|(strategy, iterations, seed_mode, cancel_sel)| {
            let seed = match seed_mode {
                0 => None,
                1 => Some(0xBEEF),
                _ => Some(0xFEED_5EED),
            };
            // ~half the jobs get cancelled somewhere strictly inside the run.
            let cancel_after = if cancel_sel < 5 && iterations > 1 {
                Some(cancel_sel % (iterations - 1))
            } else {
                None
            };
            ScheduledJob {
                spec: JobSpec {
                    scenario: ScenarioSpec {
                        circuit: "s1196".into(),
                        strategy: strategy_from(strategy),
                        ranks: 3,
                        iterations,
                        objectives: Objectives::WirelengthPower,
                        workers: None,
                        eval_chunks: 1,
                        warm_start: None,
                    },
                    seed,
                },
                cancel_after,
            }
        })
}

fn control_for(job: &ScheduledJob) -> Box<dyn RunControl> {
    match job.cancel_after {
        Some(k) => Box::new(CancelAfter(k)),
        None => Box::new(FreeRun),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_schedules_match_the_serial_oracle_bitwise(
        jobs in proptest::collection::vec(arb_job(), 2..6),
        workers in 1usize..4,
    ) {
        // Concurrent run: all jobs in flight at once on one shared pool.
        let runner = JobRunner::new();
        let pool = Arc::new(WorkerPool::new(workers));
        let concurrent: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|job| {
                    let runner = &runner;
                    let pool = Arc::clone(&pool);
                    scope.spawn(move || {
                        let backend = SharedPool::new(pool);
                        let control = control_for(job);
                        runner
                            .run_job(&job.spec, &backend, control.as_ref())
                            .expect("schedule jobs are valid")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        prop_assert_eq!(pool.queued_jobs(), 0, "a lane leaked work");

        // Serial oracle: a fresh runner, jobs one at a time, inline backend.
        let oracle = JobRunner::new();
        for (job, got) in jobs.iter().zip(&concurrent) {
            let control = control_for(job);
            let want = oracle
                .run_job(&job.spec, &Modeled, control.as_ref())
                .expect("oracle accepts the same job");
            prop_assert_eq!(
                &got.fingerprint,
                &want.fingerprint,
                "job {:?} diverged from the serial oracle",
                job
            );
            let expected_iterations = match job.cancel_after {
                Some(k) => (k + 1).min(job.spec.scenario.iterations),
                None => job.spec.scenario.iterations,
            };
            prop_assert_eq!(got.outcome.iterations, expected_iterations);
            prop_assert_eq!(want.outcome.iterations, expected_iterations);
        }

        // The engine cache deduplicated calibration across the whole
        // schedule: one calibration per circuit content, seed variants reuse
        // the sibling evaluator.
        let stats = runner.stats();
        prop_assert_eq!(stats.engines_calibrated, 1);
        prop_assert!(stats.engines as u64 <= 1 + stats.engines_reseeded);
    }
}
