//! Differential tests of the execution backends (`DESIGN.md` §4): for every
//! strategy the `Threaded` backend must (a) reproduce the `Modeled` backend's
//! search trajectory **bitwise**, (b) be bitwise-deterministic across reruns
//! for a fixed (seed, worker count), and (c) produce the same bits for every
//! worker count — the worker count is a pure wall-clock knob.

use cluster_sim::timeline::ClusterConfig;
use proptest::prelude::*;
use sime_core::engine::{SimEConfig, SimEEngine};
use sime_parallel::exec::{Modeled, Threaded};
use sime_parallel::prelude::*;
use sime_parallel::StrategyOutcome;
use std::sync::Arc;
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
use vlsi_netlist::Netlist;
use vlsi_place::cost::Objectives;

/// s1196-scale generated netlists: the paper's smallest circuit has 561
/// cells; the strategy draws circuits in the 450–650 band around it.
fn arb_netlist() -> impl Strategy<Value = (Arc<Netlist>, u64)> {
    (450usize..650, any::<u64>()).prop_map(|(cells, seed)| {
        let cfg = GeneratorConfig::sized(format!("beq_{seed}"), cells, seed);
        (Arc::new(CircuitGenerator::new(cfg).generate()), seed)
    })
}

fn engine_for(netlist: Arc<Netlist>, seed: u64, iterations: usize) -> SimEEngine {
    let mut config = SimEConfig::fast(Objectives::WirelengthPower, 10, iterations);
    config.seed = seed;
    SimEEngine::new(netlist, config)
}

/// Asserts that two outcomes are bitwise identical in every
/// determinism-contract field (everything except wall-clock and label).
fn assert_bitwise_equal(a: &StrategyOutcome, b: &StrategyOutcome, context: &str) {
    assert_eq!(
        a.best_cost.mu.to_bits(),
        b.best_cost.mu.to_bits(),
        "best µ differs: {context}"
    );
    assert_eq!(
        a.best_cost.wirelength.to_bits(),
        b.best_cost.wirelength.to_bits(),
        "best wirelength differs: {context}"
    );
    assert_eq!(
        a.modeled_seconds.to_bits(),
        b.modeled_seconds.to_bits(),
        "modeled runtime differs: {context}"
    );
    assert_eq!(a.comm, b.comm, "comm stats differ: {context}");
    assert_eq!(
        a.mu_history.len(),
        b.mu_history.len(),
        "trajectory length differs: {context}"
    );
    for (i, (x, y)) in a.mu_history.iter().zip(&b.mu_history).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "trajectory diverges at iteration {i}: {context}"
        );
    }
    assert_eq!(
        a.best_placement.num_rows(),
        b.best_placement.num_rows(),
        "row count differs: {context}"
    );
    for row in 0..a.best_placement.num_rows() {
        assert_eq!(
            a.best_placement.row(row),
            b.best_placement.row(row),
            "best placement differs in row {row}: {context}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Modeled and Threaded (workers = the strategy's machine count, as in
    /// the paper's cluster) walk identical best-cost trajectories on seeded
    /// s1196-scale netlists, for all three strategy types.
    #[test]
    fn modeled_and_threaded_trajectories_match(
        (netlist, seed) in arb_netlist(),
        iterations in 3usize..6,
    ) {
        let engine = engine_for(netlist, seed, iterations);

        let ranks = 4; // the paper's mid-size machine count
        let cluster = ClusterConfig::paper_cluster(ranks);
        let threaded = Threaded::new(ranks);

        let t1_cfg = Type1Config { ranks, iterations };
        assert_bitwise_equal(
            &run_type1(&engine, cluster, t1_cfg),
            &run_type1_on(&engine, cluster, t1_cfg, &threaded),
            "type1",
        );

        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            let t2_cfg = Type2Config { ranks, iterations, pattern };
            assert_bitwise_equal(
                &run_type2(&engine, cluster, t2_cfg),
                &run_type2_on(&engine, cluster, t2_cfg, &threaded),
                &format!("type2 {pattern:?}"),
            );
        }

        let t3_cfg = Type3Config { ranks, iterations, retry_threshold: 1 };
        assert_bitwise_equal(
            &run_type3(&engine, cluster, t3_cfg),
            &run_type3_on(&engine, cluster, t3_cfg, &threaded),
            "type3",
        );
    }

    /// The intra-rank `EvalParallelism` knob is bitwise-neutral on seeded
    /// paper-tier netlists: chunked goodness/trial-scoring reproduces the
    /// serial (modeled) trajectory for every strategy and chunk count.
    #[test]
    fn intra_rank_chunks_match_serial(
        (netlist, seed) in arb_netlist(),
        iterations in 3usize..5,
        chunks in 2usize..5,
    ) {
        let engine = engine_for(netlist, seed, iterations);
        let ranks = 4;
        let cluster = ClusterConfig::paper_cluster(ranks);
        let intra = Threaded::new(2).with_eval_chunks(chunks);

        let t1_cfg = Type1Config { ranks, iterations };
        assert_bitwise_equal(
            &run_type1(&engine, cluster, t1_cfg),
            &run_type1_on(&engine, cluster, t1_cfg, &intra),
            &format!("type1 ev{chunks}"),
        );

        let t2_cfg = Type2Config { ranks, iterations, pattern: RowPattern::Random };
        assert_bitwise_equal(
            &run_type2(&engine, cluster, t2_cfg),
            &run_type2_on(&engine, cluster, t2_cfg, &intra),
            &format!("type2 ev{chunks}"),
        );

        let t3_cfg = Type3Config { ranks, iterations, retry_threshold: 1 };
        assert_bitwise_equal(
            &run_type3(&engine, cluster, t3_cfg),
            &run_type3_on(&engine, cluster, t3_cfg, &intra),
            &format!("type3 ev{chunks}"),
        );
    }

    /// The incremental goodness cache is bitwise-neutral under the parallel
    /// strategies: disabling it (full per-epoch rebuilds) leaves the Type II
    /// and Type III trajectories — whose random row patterns and rank merges
    /// produce a different dirty-net sequence every epoch — unchanged bit for
    /// bit, on both backends.
    #[test]
    fn incremental_goodness_cache_is_bitwise_neutral(
        (netlist, seed) in arb_netlist(),
        iterations in 3usize..5,
    ) {
        let cached = engine_for(Arc::clone(&netlist), seed, iterations);
        let mut config = *cached.config();
        assert!(config.incremental_goodness, "cache must be the default");
        config.incremental_goodness = false;
        let rebuilt = SimEEngine::new(netlist, config);
        let ranks = 4;
        let cluster = ClusterConfig::paper_cluster(ranks);

        let t2_cfg = Type2Config { ranks, iterations, pattern: RowPattern::Random };
        assert_bitwise_equal(
            &run_type2(&cached, cluster, t2_cfg),
            &run_type2(&rebuilt, cluster, t2_cfg),
            "type2 cached vs rebuilt (modeled)",
        );

        let t3_cfg = Type3Config { ranks, iterations, retry_threshold: 1 };
        assert_bitwise_equal(
            &run_type3_on(&cached, cluster, t3_cfg, &Threaded::new(2)),
            &run_type3(&rebuilt, cluster, t3_cfg),
            "type3 cached threaded vs rebuilt modeled",
        );
    }

    /// The island portfolio honours the same contract as the SimE
    /// strategies: Modeled and Threaded (any worker count) walk bitwise-
    /// identical trajectories for both composition mixes, ring migration
    /// included.
    #[test]
    fn portfolio_modeled_and_threaded_trajectories_match(
        (netlist, seed) in arb_netlist(),
        iterations in 2usize..4,
        workers in 1usize..5,
        baselines_only in any::<bool>(),
    ) {
        let engine = engine_for(netlist, seed, iterations);
        let ranks = 4;
        let cluster = ClusterConfig::paper_cluster(ranks);
        let mix = if baselines_only { PortfolioMix::Baselines } else { PortfolioMix::Mixed };
        let cfg = PortfolioConfig { ranks, iterations, migration_interval: 2, target_mu: None, mix };
        assert_bitwise_equal(
            &run_portfolio(&engine, cluster, cfg),
            &run_portfolio_on(&engine, cluster, cfg, &Threaded::new(workers)),
            &format!("portfolio {mix:?} workers={workers}"),
        );
    }

    /// The fused-epoch execution path (persistent worker lanes, wave-prepared
    /// windowed allocation, fanned net-length refresh) is bitwise identical
    /// to the pre-fusion serial trajectory for a *random* point of the whole
    /// configuration space: circuit, strategy, seed, worker count (including
    /// oversubscribed pools) and eval-chunk count are all drawn by proptest.
    #[test]
    fn fused_epoch_matches_serial(
        (netlist, seed) in arb_netlist(),
        iterations in 3usize..5,
        strategy in 0usize..3,
        workers in 1usize..9,
        chunks in 1usize..8,
    ) {
        let engine = engine_for(netlist, seed, iterations);
        let ranks = 4;
        let cluster = ClusterConfig::paper_cluster(ranks);
        let fused = Threaded::new(workers).with_eval_chunks(chunks);
        let context = format!("fused strategy={strategy} workers={workers} ev{chunks}");

        match strategy {
            0 => {
                let cfg = Type1Config { ranks, iterations };
                assert_bitwise_equal(
                    &run_type1(&engine, cluster, cfg),
                    &run_type1_on(&engine, cluster, cfg, &fused),
                    &context,
                );
            }
            1 => {
                let cfg = Type2Config { ranks, iterations, pattern: RowPattern::Random };
                assert_bitwise_equal(
                    &run_type2(&engine, cluster, cfg),
                    &run_type2_on(&engine, cluster, cfg, &fused),
                    &context,
                );
            }
            _ => {
                let cfg = Type3Config { ranks, iterations, retry_threshold: 1 };
                assert_bitwise_equal(
                    &run_type3(&engine, cluster, cfg),
                    &run_type3_on(&engine, cluster, cfg, &fused),
                    &context,
                );
            }
        }
    }
}

/// The intra-rank contract at extended-tier scale: one engine on the s5378
/// suite circuit, Type II random replayed with 2 and 4 chunks against the
/// modeled baseline. (The golden suite additionally pins s9234 this way; the
/// quick scenario matrix sweeps the remaining extended circuits.)
#[test]
fn intra_rank_chunks_match_serial_on_s5378() {
    use vlsi_netlist::bench_suite::SuiteCircuit;
    let circuit = SuiteCircuit::from_name("s5378").expect("suite circuit");
    let netlist = Arc::new(circuit.generate());
    let iterations = 2;
    let config =
        SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iterations);
    let engine = SimEEngine::new(netlist, config);
    let ranks = 4;
    let cluster = ClusterConfig::paper_cluster(ranks);
    let t2_cfg = Type2Config {
        ranks,
        iterations,
        pattern: RowPattern::Random,
    };
    let modeled = run_type2(&engine, cluster, t2_cfg);
    for chunks in [2, 4] {
        let intra = run_type2_on(
            &engine,
            cluster,
            t2_cfg,
            &Threaded::new(2).with_eval_chunks(chunks),
        );
        assert_eq!(intra.eval_chunks, chunks);
        assert_bitwise_equal(&modeled, &intra, &format!("s5378 type2 ev{chunks}"));
    }
}

/// Rerunning the Threaded backend with the same seed and worker count is
/// bitwise-reproducible, and the bits are the same for *every* worker count
/// (1, 2 and 4 OS workers) — scheduling never leaks into results.
#[test]
fn threaded_rerun_determinism_at_1_2_and_4_workers() {
    let netlist =
        Arc::new(CircuitGenerator::new(GeneratorConfig::sized("beq_rerun", 561, 42)).generate());
    let iterations = 5;
    let engine = engine_for(netlist, 42, iterations);
    let ranks = 4;
    let cluster = ClusterConfig::paper_cluster(ranks);

    let t2_cfg = Type2Config {
        ranks,
        iterations,
        pattern: RowPattern::Random,
    };
    let t3_cfg = Type3Config {
        ranks,
        iterations,
        retry_threshold: 2,
    };

    let reference2 = run_type2(&engine, cluster, t2_cfg);
    let reference3 = run_type3(&engine, cluster, t3_cfg);
    for workers in [1, 2, 4] {
        let backend = Threaded::new(workers);
        let first2 = run_type2_on(&engine, cluster, t2_cfg, &backend);
        let second2 = run_type2_on(&engine, cluster, t2_cfg, &backend);
        assert_bitwise_equal(&first2, &second2, &format!("type2 rerun workers={workers}"));
        assert_bitwise_equal(
            &reference2,
            &first2,
            &format!("type2 across worker counts, workers={workers}"),
        );

        let first3 = run_type3_on(&engine, cluster, t3_cfg, &backend);
        let second3 = run_type3_on(&engine, cluster, t3_cfg, &backend);
        assert_bitwise_equal(&first3, &second3, &format!("type3 rerun workers={workers}"));
        assert_bitwise_equal(
            &reference3,
            &first3,
            &format!("type3 across worker counts, workers={workers}"),
        );
    }
}

/// Portfolio determinism at fixed seeds: the worker count is a pure
/// wall-clock knob (1/2/4 OS workers reproduce the Modeled bits), and two
/// migration-interval settings that fire on the same epoch boundaries (here:
/// none — both beyond the horizon) replay bitwise identically.
#[test]
fn portfolio_worker_counts_and_equivalent_migration_intervals_are_wall_clock_knobs() {
    let netlist = Arc::new(
        CircuitGenerator::new(GeneratorConfig::sized("beq_portfolio", 561, 11)).generate(),
    );
    let iterations = 4;
    let engine = engine_for(netlist, 11, iterations);
    let ranks = 4;
    let cluster = ClusterConfig::paper_cluster(ranks);
    let base = PortfolioConfig {
        ranks,
        iterations,
        migration_interval: 2,
        target_mu: None,
        mix: PortfolioMix::Mixed,
    };

    let reference = run_portfolio(&engine, cluster, base);
    for workers in [1, 2, 4] {
        let threaded = run_portfolio_on(&engine, cluster, base, &Threaded::new(workers));
        assert_bitwise_equal(
            &reference,
            &threaded,
            &format!("portfolio workers={workers}"),
        );
    }

    // Intervals 5 and 97 both fire on no boundary of a 4-epoch run.
    let a = run_portfolio(
        &engine,
        cluster,
        PortfolioConfig {
            migration_interval: 5,
            ..base
        },
    );
    let b = run_portfolio(
        &engine,
        cluster,
        PortfolioConfig {
            migration_interval: 97,
            ..base
        },
    );
    assert_bitwise_equal(&a, &b, "portfolio migration intervals 5 vs 97");
}

/// The acceptance scenario of the portfolio work: a 4-island mixed portfolio
/// (SimE + GA + SA + TS) on the extended-tier s9234 circuit reaches a
/// configured target µ, stops early at that epoch boundary, replays bitwise
/// across Modeled and Threaded(1/2/4), and the raced trajectory is a prefix
/// of the free run's.
#[test]
fn portfolio_reaches_target_mu_on_s9234_identically_across_backends() {
    use vlsi_netlist::bench_suite::SuiteCircuit;
    let circuit = SuiteCircuit::from_name("s9234").expect("suite circuit");
    let netlist = Arc::new(circuit.generate());
    let iterations = 2;
    let config =
        SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iterations);
    let engine = SimEEngine::new(netlist, config);
    let ranks = 4;
    let cluster = ClusterConfig::paper_cluster(ranks);
    let free_cfg = PortfolioConfig {
        ranks,
        iterations,
        migration_interval: 2,
        target_mu: None,
        mix: PortfolioMix::Mixed,
    };

    let free = run_portfolio(&engine, cluster, free_cfg);
    assert_eq!(free.iterations, iterations);

    // Target the quality the free run reached after its first epoch: the
    // raced portfolio must stop right there.
    let raced_cfg = PortfolioConfig {
        target_mu: Some(free.mu_history[0]),
        ..free_cfg
    };
    let raced = run_portfolio(&engine, cluster, raced_cfg);
    assert_eq!(raced.iterations, 1, "target µ must stop the run early");
    assert!(raced.best_cost.mu >= free.mu_history[0]);
    for (i, (a, b)) in raced.mu_history.iter().zip(&free.mu_history).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "prefix diverges at epoch {i}");
    }

    for workers in [1, 2, 4] {
        let threaded = run_portfolio_on(&engine, cluster, raced_cfg, &Threaded::new(workers));
        assert_bitwise_equal(
            &raced,
            &threaded,
            &format!("s9234 raced portfolio workers={workers}"),
        );
    }
}

/// The Type I master path over gathered goodness equals the plain serial
/// engine run bitwise, independent of backend — the paper's "identical
/// search trajectory" claim, held to the strictest possible standard.
#[test]
fn type1_trajectory_equals_serial_on_both_backends() {
    let netlist =
        Arc::new(CircuitGenerator::new(GeneratorConfig::sized("beq_type1", 561, 7)).generate());
    let iterations = 4;
    let engine = engine_for(netlist, 7, iterations);
    let serial = engine.run();
    let cluster = ClusterConfig::paper_cluster(3);
    let config = Type1Config {
        ranks: 3,
        iterations,
    };
    for outcome in [
        run_type1_on(&engine, cluster, config, &Modeled),
        run_type1_on(&engine, cluster, config, &Threaded::new(3)),
    ] {
        assert_eq!(serial.history.len(), outcome.mu_history.len());
        for (h, mu) in serial.history.iter().zip(&outcome.mu_history) {
            assert_eq!(h.mu.to_bits(), mu.to_bits());
        }
        assert_eq!(
            serial.best_cost.mu.to_bits(),
            outcome.best_cost.mu.to_bits()
        );
    }
}
