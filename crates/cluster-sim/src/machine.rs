//! Per-node compute cost model.
//!
//! The virtual clock of a rank advances by a calibrated amount of time for
//! every unit of algorithmic work it performs. The dominant work unit in SimE
//! placement is the *per-net length estimation* (the kernel of both goodness
//! evaluation and allocation trial scoring — see Section 4 of the paper), so
//! the model prices that kernel and a generic "miscellaneous operation" for
//! everything else (sorting, selection draws, bookkeeping).
//!
//! The default calibration targets the paper's serial runtimes on a 2 GHz
//! Pentium 4 (e.g. s1196 at 3500 two-objective iterations ≈ 92 s), which puts
//! one Steiner net estimation at roughly 80 ns plus loop overhead. Absolute
//! values only set the scale of the reproduced tables; the comparisons
//! between strategies depend on the ratios of compute to communication cost.

use serde::{Deserialize, Serialize};

/// A bundle of algorithmic work performed by one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Number of per-net length estimations.
    pub net_evaluations: u64,
    /// Number of miscellaneous operations (per-cell bookkeeping, comparison
    /// sorts, RNG draws, ...).
    pub misc_operations: u64,
}

impl Workload {
    /// A workload consisting only of net evaluations.
    pub fn net_evals(n: u64) -> Self {
        Workload {
            net_evaluations: n,
            misc_operations: 0,
        }
    }

    /// A workload consisting only of miscellaneous operations.
    pub fn misc(n: u64) -> Self {
        Workload {
            net_evaluations: 0,
            misc_operations: n,
        }
    }

    /// Adds another workload to this one.
    pub fn merge(&mut self, other: &Workload) {
        self.net_evaluations += other.net_evaluations;
        self.misc_operations += other.misc_operations;
    }
}

/// Calibrated cost of the algorithmic work units on one cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Seconds per per-net length estimation.
    pub seconds_per_net_evaluation: f64,
    /// Seconds per miscellaneous operation.
    pub seconds_per_misc_operation: f64,
}

impl ComputeModel {
    /// Calibration for the paper's 2 GHz Pentium-4 nodes.
    ///
    /// One "net evaluation" here is a full trial-position scoring step of the
    /// authors' (unoptimised C) allocation inner loop — re-estimating the
    /// Steiner length of one incident net, updating the power term and the
    /// goodness gain — which lands around a microsecond on a 2 GHz P4. The
    /// value is calibrated so that the modeled serial runtimes of the
    /// five benchmark circuits fall in the range the paper reports
    /// (e.g. s1196 ≈ 92 s for 3500 two-objective iterations).
    pub fn pentium4_2ghz() -> Self {
        ComputeModel {
            seconds_per_net_evaluation: 9.0e-7,
            seconds_per_misc_operation: 5.0e-8,
        }
    }

    /// A much faster abstract node, useful in tests to keep modeled times
    /// small and to check scale independence of the comparisons.
    pub fn fast_node() -> Self {
        ComputeModel {
            seconds_per_net_evaluation: 1.0e-9,
            seconds_per_misc_operation: 1.0e-10,
        }
    }

    /// Seconds needed for `workload` on this node.
    pub fn seconds(&self, workload: &Workload) -> f64 {
        workload.net_evaluations as f64 * self.seconds_per_net_evaluation
            + workload.misc_operations as f64 * self.seconds_per_misc_operation
    }
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel::pentium4_2ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_scale_linearly_with_work() {
        let m = ComputeModel::pentium4_2ghz();
        let one = m.seconds(&Workload::net_evals(1));
        let thousand = m.seconds(&Workload::net_evals(1000));
        assert!((thousand / one - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn misc_operations_are_cheaper_than_net_evaluations() {
        let m = ComputeModel::default();
        assert!(m.seconds_per_misc_operation < m.seconds_per_net_evaluation);
    }

    #[test]
    fn workload_merge_accumulates() {
        let mut w = Workload::net_evals(10);
        w.merge(&Workload::misc(5));
        w.merge(&Workload {
            net_evaluations: 2,
            misc_operations: 3,
        });
        assert_eq!(w.net_evaluations, 12);
        assert_eq!(w.misc_operations, 8);
    }

    #[test]
    fn calibration_is_in_the_paper_ballpark() {
        // s1196: ~561 cells, ~30 % of cells selected per iteration, a
        // 48-slot allocation window, ~3.3 incident nets per cell, 3500
        // iterations => ~9.3e7 trial-scoring net evaluations. The paper
        // reports 92 s of serial time; the default calibration should land
        // within a factor of ~2.
        let m = ComputeModel::pentium4_2ghz();
        let net_evals = (0.3 * 561.0 * 48.0 * 3.3 * 3500.0) as u64;
        let t = m.seconds(&Workload::net_evals(net_evals));
        assert!(
            t > 45.0 && t < 200.0,
            "modeled serial time {t} s is off scale"
        );
    }

    #[test]
    fn fast_node_is_faster() {
        let w = Workload::net_evals(1_000_000);
        assert!(ComputeModel::fast_node().seconds(&w) < ComputeModel::pentium4_2ghz().seconds(&w));
    }
}
