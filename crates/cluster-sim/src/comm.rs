//! Thread-backed message-passing layer with an MPI-like rank API.
//!
//! [`Cluster::run`] spawns one thread per rank and hands each a
//! [`RankHandle`] through which it can exchange point-to-point messages
//! (with tag/source matching), participate in linear broadcasts and gathers,
//! and synchronise on barriers. Payloads are raw byte vectors; callers
//! serialise whatever they need (the SimE strategies exchange goodness
//! vectors and placement row assignments).
//!
//! This layer provides real concurrency and real message-passing semantics;
//! it deliberately mirrors the subset of MPI that the paper's programs use
//! (`MPI_Send`/`MPI_Recv`/`MPI_Bcast`/`MPI_Gather`/`MPI_Barrier`). The
//! modeled *runtimes* of the reproduction come from
//! [`ClusterTimeline`](crate::timeline::ClusterTimeline) instead, because
//! wall-clock measurements of threads on one shared-memory machine cannot
//! reproduce a fast-Ethernet cluster's communication behaviour.

use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::lane::{PopError, WorkLane};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Duration;

/// A point-to-point message: source rank, tag, payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Rank that sent the message.
    pub from: usize,
    /// Application-defined tag used for matching.
    pub tag: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Handle held by one rank while [`Cluster::run`] executes.
pub struct RankHandle {
    rank: usize,
    ranks: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    barrier: Arc<Barrier>,
    /// Messages received but not yet matched by a `recv_matching` call.
    pending: Vec<Message>,
}

impl RankHandle {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Sends `payload` with `tag` to rank `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range or if the destination rank has already
    /// finished and dropped its receiver.
    pub fn send(&self, to: usize, tag: u64, payload: Vec<u8>) {
        self.senders[to]
            .send(Message {
                from: self.rank,
                tag,
                payload,
            })
            .expect("destination rank has exited");
    }

    /// Receives the next message from any source with any tag.
    pub fn recv_any(&mut self) -> Message {
        if !self.pending.is_empty() {
            return self.pending.remove(0);
        }
        self.receiver.recv().expect("all senders dropped")
    }

    /// Receives the next message matching the given source and/or tag,
    /// buffering any other messages that arrive in the meantime.
    pub fn recv_matching(&mut self, from: Option<usize>, tag: Option<u64>) -> Message {
        let matches =
            |m: &Message| from.is_none_or(|f| m.from == f) && tag.is_none_or(|t| m.tag == t);
        if let Some(pos) = self.pending.iter().position(matches) {
            return self.pending.remove(pos);
        }
        loop {
            let m = self.receiver.recv().expect("all senders dropped");
            if matches(&m) {
                return m;
            }
            self.pending.push(m);
        }
    }

    /// Non-blocking receive of a matching message, if one is already queued.
    pub fn try_recv_matching(&mut self, from: Option<usize>, tag: Option<u64>) -> Option<Message> {
        let matches =
            |m: &Message| from.is_none_or(|f| m.from == f) && tag.is_none_or(|t| m.tag == t);
        if let Some(pos) = self.pending.iter().position(matches) {
            return Some(self.pending.remove(pos));
        }
        while let Ok(m) = self.receiver.try_recv() {
            if matches(&m) {
                return Some(m);
            }
            self.pending.push(m);
        }
        None
    }

    /// Linear broadcast: the root sends `data` to every other rank; every
    /// rank (including the root) returns the broadcast payload.
    pub fn broadcast_from(&mut self, root: usize, data: Vec<u8>, tag: u64) -> Vec<u8> {
        if self.rank == root {
            for to in 0..self.ranks {
                if to != root {
                    self.send(to, tag, data.clone());
                }
            }
            data
        } else {
            self.recv_matching(Some(root), Some(tag)).payload
        }
    }

    /// Linear gather: every rank sends `data` to the root; the root returns
    /// the payloads in rank order (its own contribution included), other
    /// ranks return `None`.
    pub fn gather_to(&mut self, root: usize, data: Vec<u8>, tag: u64) -> Option<Vec<Vec<u8>>> {
        if self.rank == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.ranks];
            out[root] = data;
            for _ in 0..self.ranks - 1 {
                let m = self.recv_matching(None, Some(tag));
                out[m.from] = m.payload;
            }
            Some(out)
        } else {
            self.send(root, tag, data);
            None
        }
    }

    /// Blocks until every rank has reached the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// An opaque unit of work executed by a [`WorkerPool`] thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

std::thread_local! {
    /// Identity of the current thread when it is a [`WorkerPool`] worker:
    /// `(pool address, lane index)`. Gates the help-while-waiting path: a
    /// *worker* of the submitting pool blocked on a nested batch must keep
    /// executing queued jobs (or the pool could deadlock with every worker
    /// waiting), while an *external* caller — including a worker of some
    /// other pool — blocks passively, so the worker count stays an honest
    /// throughput knob and no spare core busy-polls.
    static WORKER_IDENTITY: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// How long a helping worker parks on the epoch condvar between sweeps of
/// the lanes. Epoch completion wakes the helper immediately; the timeout
/// only bounds the latency of spotting fresh lane work that arrived while
/// it slept.
const HELP_PARK: Duration = Duration::from_micros(100);

/// Slot-indexed result buffer for one `run_scoped_tasks` batch.
///
/// Each task owns exactly one slot: it writes its (caught) result there and
/// decrements `remaining`; the final decrement flips `done` under the mutex
/// and wakes every waiter. The caller reads the slots back **in index
/// order**, which re-establishes submission order at the merge without any
/// per-batch channel and independent of result arrival order.
struct Epoch<T> {
    slots: Vec<std::cell::UnsafeCell<Option<std::thread::Result<T>>>>,
    /// Count of slots not yet resolved. The `AcqRel` decrement chains every
    /// slot write into one release sequence, so a reader that observes zero
    /// with acquire ordering sees all the writes.
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: each `UnsafeCell` slot is written by exactly one task (the unique
// holder of its index) before that task's `remaining` decrement, and read
// only by the single merging thread after it observed `remaining == 0` with
// acquire ordering — the writes are disjoint and happen-before the reads.
unsafe impl<T: Send> Sync for Epoch<T> {}

impl<T> Epoch<T> {
    fn new(tasks: usize) -> Self {
        Epoch {
            slots: (0..tasks)
                .map(|_| std::cell::UnsafeCell::new(None))
                .collect(),
            remaining: AtomicUsize::new(tasks),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Records task `index`'s result and wakes the waiters if it was last.
    fn complete(&self, index: usize, result: std::thread::Result<T>) {
        // SAFETY: this task is the unique writer of slot `index`, and no
        // reader touches the slot before `remaining` reaches zero.
        unsafe { *self.slots[index].get() = Some(result) };
        self.resolve(1);
    }

    /// Marks `count` slots that will never run (their submission failed) as
    /// resolved, so the merge loop still terminates and can drain the tasks
    /// that *are* in flight before panicking.
    fn forfeit(&self, count: usize) {
        if count > 0 {
            self.resolve(count);
        }
    }

    fn resolve(&self, count: usize) {
        if self.remaining.fetch_sub(count, Ordering::AcqRel) == count {
            *self.done.lock().unwrap() = true;
            self.done_cv.notify_all();
        }
    }

    /// Blocks passively until the batch completes (external callers).
    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.done_cv.wait(done).unwrap();
        }
    }

    /// Parks for at most `timeout` or until the batch completes — the pause
    /// between lane sweeps of a helping worker.
    fn wait_timeout(&self, timeout: Duration) {
        let done = self.done.lock().unwrap();
        if !*done {
            let _ = self.done_cv.wait_timeout(done, timeout).unwrap();
        }
    }

    /// Takes task `index`'s result out of the buffer after completion;
    /// `None` for a forfeited slot.
    fn take(&self, index: usize) -> Option<std::thread::Result<T>> {
        debug_assert!(self.is_done());
        // SAFETY: `remaining == 0` was observed with acquire ordering, so
        // every writer has finished and the merging thread is the only
        // accessor left.
        unsafe { (*self.slots[index].get()).take() }
    }
}

/// State shared between the pool handle and its workers: one persistent
/// [`WorkLane`] per worker plus the dispatch bookkeeping.
struct PoolShared {
    lanes: Vec<WorkLane<Job>>,
    /// Bit `w` set ⇔ worker `w` is parked (or about to park) on its empty
    /// lane. Dispatch claims an idle worker first so a sleeping thread is
    /// woken ahead of piling work onto a busy one. Workers beyond index 63
    /// never advertise; they still receive round-robin work and steal from
    /// their siblings.
    idle: AtomicU64,
    /// Round-robin cursor for top-level dispatch when no worker is idle.
    cursor: AtomicUsize,
}

impl PoolShared {
    /// Stable identity of this pool for the thread-local worker tag (the
    /// `Arc` keeps the allocation pinned for the pool's lifetime).
    fn address(&self) -> usize {
        self as *const PoolShared as usize
    }

    fn idle_bit(worker: usize) -> Option<u64> {
        (worker < u64::BITS as usize).then(|| 1u64 << worker)
    }

    /// Claims one advertising idle worker, clearing its bit.
    fn claim_idle(&self) -> Option<usize> {
        loop {
            let mask = self.idle.load(Ordering::Relaxed);
            if mask == 0 {
                return None;
            }
            let worker = mask.trailing_zeros() as usize;
            if self
                .idle
                .compare_exchange_weak(
                    mask,
                    mask & !(1 << worker),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return Some(worker);
            }
        }
    }

    /// Routes one job to a lane. A parked worker is woken first; failing
    /// that, a *nested* submission (from worker `me`) jumps to the front of
    /// the submitter's own lane — its helping merge loop drains that lane
    /// next, so a barrier never waits behind long queued top-level jobs —
    /// and a top-level submission round-robins across the lanes.
    fn dispatch(&self, job: Job, me: Option<usize>) -> Result<(), Job> {
        if let Some(worker) = self.claim_idle() {
            return self.lanes[worker].push_front(job);
        }
        match me {
            Some(worker) => self.lanes[worker].push_front(job),
            None => {
                let worker = self.cursor.fetch_add(1, Ordering::Relaxed) % self.lanes.len();
                self.lanes[worker].push_back(job)
            }
        }
    }

    /// Takes one queued job from any lane, scanning from `start` for
    /// fairness. Lanes pop front-first, so stolen work inherits the nested
    /// jobs' priority.
    fn steal(&self, start: usize) -> Option<Job> {
        let lanes = self.lanes.len();
        for offset in 0..lanes {
            if let Ok(job) = self.lanes[(start + offset) % lanes].try_pop() {
                return Some(job);
            }
        }
        None
    }
}

/// Body of one worker thread: drain the own lane, steal from siblings, and
/// otherwise advertise idleness and park on the lane until a push (or
/// shutdown) wakes it.
fn worker_loop(shared: Arc<PoolShared>, me: usize) {
    WORKER_IDENTITY.with(|id| id.set(Some((shared.address(), me))));
    let bit = PoolShared::idle_bit(me);
    loop {
        match shared.lanes[me].try_pop() {
            Ok(job) => {
                job();
                continue;
            }
            Err(PopError::Closed) => return,
            Err(PopError::Empty) => {}
        }
        if let Some(job) = shared.steal(me + 1) {
            job();
            continue;
        }
        // Nothing anywhere: advertise, then park. The bit is set *before*
        // the blocking pop takes the lane lock, so a dispatcher that claims
        // it afterwards pushes into a lane this worker is provably about to
        // watch — no lost wakeup.
        if let Some(bit) = bit {
            shared.idle.fetch_or(bit, Ordering::SeqCst);
        }
        let popped = shared.lanes[me].pop();
        if let Some(bit) = bit {
            // The dispatcher that woke us normally cleared the bit when it
            // claimed us; clear defensively for close and spurious wakeups.
            shared.idle.fetch_and(!bit, Ordering::SeqCst);
        }
        match popped {
            Ok(job) => job(),
            Err(_) => return,
        }
    }
}

/// A persistent pool of OS worker threads, each owning a long-lived
/// [`WorkLane`] — the execution substrate of the `Threaded` backend in
/// `sime-parallel`.
///
/// Dispatch wakes a parked worker when one advertises idle and round-robins
/// across the per-worker lanes otherwise; workers steal from their
/// siblings' lanes before parking, so imbalanced batches still spread.
/// Every batch of [`WorkerPool::run_tasks`] / [`WorkerPool::run_scoped_tasks`]
/// resolves into a slot-indexed epoch buffer: each task writes its own slot
/// and the caller reads the slots back **in submission (index) order**, so
/// the merged output is independent of the number of workers and of OS
/// scheduling. That merge discipline is what lets the threaded SimE backend
/// stay bitwise deterministic — see `DESIGN.md` §4 ("Execution backends &
/// the determinism contract").
///
/// One pool serves both *rank-level* jobs (one task per simulated rank) and
/// *intra-rank* jobs (the chunked goodness / trial-scoring fan-out inside one
/// rank's task): a pool **worker** blocked in [`WorkerPool::run_tasks`] or
/// [`WorkerPool::run_scoped_tasks`] **helps** by draining its own lane and
/// stealing from its siblings while it waits, so a rank task running *on* a
/// pool worker can submit sub-jobs to the same pool without risking deadlock
/// even at one worker. Nested sub-jobs go to the *front* of a lane so a
/// helping worker never picks up a long queued top-level job ahead of the
/// short chunk work its barrier is waiting on. External (non-worker) callers
/// block passively on the epoch — the worker count stays an honest
/// throughput knob for the scaling benchmarks.
///
/// ```
/// use cluster_sim::comm::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..8)
///     .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
///     .collect();
/// // Results come back in submission order regardless of which worker ran
/// // which task.
/// assert_eq!(pool.run_tasks(tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
///
/// // Scoped tasks may borrow from the caller's stack: the call blocks until
/// // every task has finished, so the borrows cannot dangle.
/// let data = vec![1u64, 2, 3, 4];
/// let sums: Vec<u64> = pool.run_scoped_tasks(
///     data.chunks(2)
///         .map(|c| Box::new(move || c.iter().sum()) as Box<dyn FnOnce() -> u64 + Send + '_>)
///         .collect(),
/// );
/// assert_eq!(sums, vec![3, 7]);
/// ```
pub struct WorkerPool {
    shared: Option<Arc<PoolShared>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` OS threads, each parked on its own
    /// persistent work lane.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a worker pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            lanes: (0..workers).map(|_| WorkLane::new()).collect(),
            idle: AtomicU64::new(0),
            cursor: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared, worker))
            })
            .collect();
        WorkerPool {
            shared: Some(shared),
            handles,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Number of jobs currently queued across the per-worker lanes, i.e.
    /// submitted but not yet popped by any worker or helper. Quiesced pools
    /// report 0; a non-zero value after every batch has merged means a job
    /// was leaked. This is a monitoring snapshot (lanes drain concurrently),
    /// not a synchronisation primitive — but a pool with no in-flight
    /// batches cannot spontaneously grow it, so `assert_eq!(queued_jobs(),
    /// 0)` after a join point is a sound leak check.
    pub fn queued_jobs(&self) -> usize {
        self.shared
            .as_ref()
            .map(|shared| shared.lanes.iter().map(|lane| lane.len()).sum())
            .unwrap_or(0)
    }

    /// Executes `tasks` on the pool and returns their results **in
    /// submission (index) order** — the deterministic merge barrier.
    ///
    /// The calling thread blocks until every task has completed. An external
    /// caller blocks passively (the pool's `workers` count stays an honest
    /// throughput knob); a pool *worker* calling in — a task fanning
    /// sub-tasks out on its own pool — instead *helps* by executing queued
    /// jobs while it waits, which is what makes the nesting deadlock-free
    /// (see the [type docs](WorkerPool)). Tasks may finish in any order on
    /// any worker; the index carried alongside each result re-establishes
    /// the submission order at the merge.
    ///
    /// # Panics
    ///
    /// A panic inside a task is caught on the worker (which stays alive for
    /// later batches) and re-raised on the calling thread once **every** task
    /// of the batch has finished — at any worker count, with no hang. When
    /// several tasks panic, the lowest-indexed panic is re-raised, so the
    /// propagated payload is deterministic regardless of arrival order.
    pub fn run_tasks<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        self.run_scoped_tasks(tasks)
    }

    /// [`WorkerPool::run_tasks`] for tasks that borrow from the caller's
    /// stack (lifetime `'env`), the substrate of the intra-rank evaluation
    /// fan-out: chunk tasks borrow the shared engine state and per-chunk
    /// output buffers instead of cloning them behind `Arc`s.
    ///
    /// # Safety argument
    ///
    /// The task closures are lifetime-erased to `'static` so they can travel
    /// through the pool's work lanes, which is sound because this method
    /// does not return — not even by unwinding — until every submitted task
    /// has run to completion and resolved its epoch slot (panics included:
    /// they are caught in the job wrapper, collected at the merge, and
    /// re-raised only after the whole batch has been drained). No borrow can
    /// therefore outlive the frame it was taken from.
    pub fn run_scoped_tasks<'env, T: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        let shared = self.shared.as_ref().expect("worker pool already shut down");
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        // A batch submitted *from a worker thread of this pool* is a nested
        // fan-out and helps while it waits; anything else (external threads,
        // workers of other pools) merges passively.
        let me = WORKER_IDENTITY
            .with(|id| id.get())
            .and_then(|(pool, worker)| (pool == shared.address()).then_some(worker));
        let epoch = Arc::new(Epoch::<T>::new(n));
        let mut submit_failed = false;
        for (index, task) in tasks.into_iter().enumerate() {
            let task_epoch = Arc::clone(&epoch);
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                // AssertUnwindSafe: on Err the caller re-raises the panic and
                // never observes the task's captured state again.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                task_epoch.complete(index, result);
            });
            // SAFETY: lifetime erasure only — the layout of a boxed trait
            // object is lifetime-independent, and the merge loop below
            // guarantees the job has finished before any `'env` borrow can
            // expire (see the safety argument in the doc comment).
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            if shared.dispatch(job, me).is_err() {
                // The lanes are closed — workers are gone. Forfeit this slot
                // and the unsubmitted tail so the merge below still
                // terminates, drain what *is* in flight so no borrow
                // dangles, then panic.
                epoch.forfeit(n - index);
                submit_failed = true;
                break;
            }
        }

        match me {
            Some(worker) => {
                // Help while waiting: this thread occupies a worker slot, so
                // it must keep executing queued jobs (its own front-queued
                // sub-jobs first, by construction) or the pool could starve
                // with every worker blocked on a nested merge.
                while !epoch.is_done() {
                    if let Ok(job) = shared.lanes[worker].try_pop() {
                        job();
                    } else if let Some(job) = shared.steal(worker + 1) {
                        job();
                    } else {
                        epoch.wait_timeout(HELP_PARK);
                    }
                }
            }
            // External caller: block passively on the epoch. The pool's
            // workers do all the work, so `workers` remains an honest
            // throughput knob for the scaling benchmarks and no cycles are
            // burnt polling.
            None => epoch.wait(),
        }

        // Merge in slot (submission) order; re-raise the lowest-indexed
        // panic only now, after the whole batch has drained.
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let mut out = Vec::with_capacity(n);
        for index in 0..n {
            match epoch.take(index) {
                Some(Ok(value)) => out.push(value),
                Some(Err(payload)) if first_panic.is_none() => {
                    first_panic = Some(payload);
                }
                // Later panics are dropped — the lowest slot wins.
                Some(Err(_)) => {}
                // Forfeited slot — `submit_failed` reports it below.
                None => {}
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        if submit_failed {
            panic!("worker pool threads have exited");
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing every lane lets each worker drain its remaining jobs and
        // exit its blocking pop; join so no detached thread outlives the
        // pool.
        if let Some(shared) = self.shared.take() {
            for lane in &shared.lanes {
                lane.close();
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .finish()
    }
}

/// Thread-backed cluster launcher.
pub struct Cluster;

impl Cluster {
    /// Spawns `ranks` threads, runs `f` on each with its [`RankHandle`], and
    /// returns the per-rank results in rank order.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero or if any rank panics.
    pub fn run<T, F>(ranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Send + Sync,
    {
        assert!(ranks >= 1, "a cluster needs at least one rank");
        let mut senders = Vec::with_capacity(ranks);
        let mut receivers = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let barrier = Arc::new(Barrier::new(ranks));
        let f = &f;

        let mut handles: Vec<RankHandle> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| RankHandle {
                rank,
                ranks,
                senders: senders.clone(),
                receiver,
                barrier: Arc::clone(&barrier),
                pending: Vec::new(),
            })
            .collect();
        // Drop the original senders so channels close when all ranks finish.
        drop(senders);

        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(ranks);
            for handle in handles.drain(..) {
                joins.push(scope.spawn(move || f(handle)));
            }
            joins
                .into_iter()
                .map(|j| j.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_know_their_identity() {
        let ids = Cluster::run(4, |h| (h.rank(), h.ranks()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ring_pass_accumulates_contributions() {
        // Each rank adds its id and forwards to the next; rank 0 starts and
        // finally receives the total.
        let totals = Cluster::run(5, |mut h| {
            let next = (h.rank() + 1) % h.ranks();
            if h.rank() == 0 {
                h.send(next, 1, vec![0]);
                let m = h.recv_matching(None, Some(1));
                m.payload[0]
            } else {
                let m = h.recv_matching(None, Some(1));
                h.send(next, 1, vec![m.payload[0] + h.rank() as u8]);
                0
            }
        });
        assert_eq!(totals[0], (1 + 2 + 3 + 4) as u8);
    }

    #[test]
    fn broadcast_delivers_to_every_rank() {
        let out = Cluster::run(4, |mut h| {
            let data = if h.rank() == 2 { vec![7, 7, 7] } else { vec![] };
            h.broadcast_from(2, data, 9)
        });
        for payload in out {
            assert_eq!(payload, vec![7, 7, 7]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Cluster::run(4, |mut h| h.gather_to(0, vec![h.rank() as u8; 2], 3));
        let gathered = out[0].as_ref().unwrap();
        assert_eq!(gathered.len(), 4);
        for (rank, payload) in gathered.iter().enumerate() {
            assert_eq!(payload, &vec![rank as u8; 2]);
        }
        assert!(out[1].is_none() && out[2].is_none() && out[3].is_none());
    }

    #[test]
    fn tag_matching_buffers_out_of_order_messages() {
        let out = Cluster::run(2, |mut h| {
            if h.rank() == 0 {
                // Send tag 2 first, then tag 1; the receiver asks for tag 1
                // first and must still see both, in the order it asked.
                h.send(1, 2, vec![2]);
                h.send(1, 1, vec![1]);
                vec![]
            } else {
                let first = h.recv_matching(Some(0), Some(1)).payload;
                let second = h.recv_matching(Some(0), Some(2)).payload;
                vec![first[0], second[0]]
            }
        });
        assert_eq!(out[1], vec![1, 2]);
    }

    #[test]
    fn try_recv_returns_none_when_nothing_queued() {
        let out = Cluster::run(2, |mut h| {
            if h.rank() == 0 {
                h.barrier();
                // after the barrier rank 1 has already checked its queue
                h.send(1, 5, vec![9]);
                true
            } else {
                let nothing = h.try_recv_matching(None, None).is_none();
                h.barrier();
                let msg = h.recv_matching(Some(0), Some(5));
                nothing && msg.payload == vec![9]
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn barrier_synchronises_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let out = Cluster::run(6, |h| {
            counter.fetch_add(1, Ordering::SeqCst);
            h.barrier();
            // After the barrier every rank must observe all 6 increments.
            counter.load(Ordering::SeqCst)
        });
        assert!(out.iter().all(|&v| v == 6));
    }

    #[test]
    fn pool_results_arrive_in_submission_order() {
        for workers in [1, 2, 4, 7] {
            let pool = WorkerPool::new(workers);
            assert_eq!(pool.workers(), workers);
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..32)
                .map(|i| Box::new(move || i * 3) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = pool.run_tasks(tasks);
            assert_eq!(out, (0usize..32).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(3);
        for batch in 0..5usize {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6)
                .map(|i| Box::new(move || batch * 100 + i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = pool.run_tasks(tasks);
            assert_eq!(out, (0..6).map(|i| batch * 100 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_handles_more_tasks_than_workers() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..100u64)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> u64 + Send>)
            .collect();
        let out = pool.run_tasks(tasks);
        assert_eq!(out.iter().sum::<u64>(), (1..=100).sum::<u64>());
    }

    #[test]
    fn pool_empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(2);
        let out: Vec<usize> = pool.run_tasks(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn pool_rejects_zero_workers() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn pool_task_panic_propagates_and_pool_survives() {
        // A panicking task must re-raise on the caller — even on a one-worker
        // pool with further tasks queued behind it (no silent hang) — and the
        // worker must stay usable for the next batch.
        let pool = WorkerPool::new(1);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| panic!("task exploded")), Box::new(|| 7)];
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run_tasks(tasks)));
        let payload = caught.expect_err("the task panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("task exploded"), "got: {message}");

        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0usize..4).map(|i| Box::new(move || i) as _).collect();
        assert_eq!(pool.run_tasks(tasks), vec![0, 1, 2, 3]);
    }

    #[test]
    fn scoped_tasks_borrow_from_the_caller() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&[u64]> = data.chunks(7).collect();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = chunks
            .iter()
            .map(|c| {
                let c: &[u64] = c;
                Box::new(move || c.iter().sum::<u64>()) as Box<dyn FnOnce() -> u64 + Send + '_>
            })
            .collect();
        let sums = pool.run_scoped_tasks(tasks);
        assert_eq!(sums.len(), chunks.len());
        assert_eq!(sums.iter().sum::<u64>(), (0..100).sum::<u64>());
        // Chunk order is submission order.
        assert_eq!(sums[0], (0..7).sum::<u64>());
    }

    #[test]
    fn nested_submission_does_not_deadlock_even_on_one_worker() {
        // A task running on the pool's only worker fans sub-tasks out to the
        // same pool; the blocked merge loops (both the outer caller's and the
        // worker's) must help execute queued jobs or this hangs forever.
        for workers in [1, 2] {
            let pool = Arc::new(WorkerPool::new(workers));
            let outer: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4u64)
                .map(|i| {
                    let pool = Arc::clone(&pool);
                    Box::new(move || {
                        let inner: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..3u64)
                            .map(|j| {
                                Box::new(move || i * 10 + j) as Box<dyn FnOnce() -> u64 + Send>
                            })
                            .collect();
                        pool.run_tasks(inner).into_iter().sum()
                    }) as Box<dyn FnOnce() -> u64 + Send>
                })
                .collect();
            let totals = pool.run_tasks(outer);
            assert_eq!(totals, vec![3, 33, 63, 93], "workers={workers}");
        }
    }

    #[test]
    fn scoped_panic_is_raised_only_after_the_batch_drains() {
        // The scoped safety argument hinges on every task finishing before
        // the call unwinds; observe that the non-panicking sibling ran.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| panic!("scoped task exploded")),
            Box::new(|| {
                completed.fetch_add(1, Ordering::SeqCst);
            }),
            Box::new(|| {
                completed.fetch_add(1, Ordering::SeqCst);
            }),
        ];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_scoped_tasks(tasks)
        }));
        assert!(caught.is_err(), "the task panic must propagate");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            2,
            "every non-panicking task must have completed before the unwind"
        );
    }

    #[test]
    fn quiesced_pool_reports_no_queued_jobs() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.queued_jobs(), 0);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0usize..16).map(|i| Box::new(move || i) as _).collect();
        let _ = pool.run_tasks(tasks);
        // run_tasks is a join point: every submitted job has been popped and
        // completed, so the lanes must be empty again.
        assert_eq!(pool.queued_jobs(), 0);
    }

    #[test]
    fn single_rank_cluster_works() {
        let out = Cluster::run(1, |mut h| {
            let data = h.broadcast_from(0, vec![1, 2, 3], 0);
            let gathered = h.gather_to(0, data, 1).unwrap();
            gathered.len()
        });
        assert_eq!(out, vec![1]);
    }
}
