//! # cluster-sim
//!
//! A simulated message-passing cluster.
//!
//! The paper's experiments run on a dedicated cluster of eight 2 GHz
//! Pentium-4 machines connected by fast Ethernet, programmed with MPICH 1.2.5.
//! Neither the cluster nor a production MPI binding is available in this
//! reproduction, so this crate provides the two pieces the parallel SimE
//! strategies actually need:
//!
//! * [`timeline::ClusterTimeline`] — a **virtual-time accountant**. The
//!   strategy implementations execute their per-rank computation locally (the
//!   results are bit-exact with a real distributed run because the algorithms
//!   are deterministic given their RNG streams) and charge every unit of
//!   computation and every message to per-rank virtual clocks. Computation is
//!   priced by a calibrated [`machine::ComputeModel`]; messages are priced by
//!   a [`network::NetworkModel`] with fast-Ethernet defaults. The resulting
//!   makespan is the *modeled runtime* reported in the reproduced tables —
//!   this is what captures the paper's central finding that fast-Ethernet
//!   communication overheads erase the gains of Type I parallelization.
//!
//! * [`comm::Cluster`] — a small **thread-backed message-passing layer**
//!   (send / receive / broadcast / gather / barrier over crossbeam channels)
//!   with an MPI-like rank API. It demonstrates that the same strategies can
//!   run with real concurrency, and it is used by the wall-clock execution
//!   mode and by tests of message-passing semantics.
//!
//! * [`comm::WorkerPool`] — a persistent pool of OS worker threads fed
//!   through a crossbeam MPMC job channel, with results merged back **in
//!   submission order**. This is the backend seam the `sime-parallel` crate's
//!   `Threaded` execution backend builds on: strategies execute their
//!   per-rank work as pool tasks for real shared-memory parallelism while the
//!   [`timeline::ClusterTimeline`] keeps accounting the *modeled* cluster
//!   cost of the same schedule, so both backends report identical modeled
//!   runtimes and bitwise-identical search results.
//!
//! The substitution argument is recorded in `DESIGN.md` (S4); the backend
//! determinism contract lives in `DESIGN.md` §4.

#![warn(missing_docs)]

pub mod comm;
pub mod machine;
pub mod network;
pub mod timeline;

pub use comm::{Cluster, RankHandle, WorkerPool};
pub use machine::{ComputeModel, Workload};
pub use network::NetworkModel;
pub use timeline::{ClusterConfig, ClusterTimeline, CommStats};

/// Convenience prelude bringing the common cluster-simulation types into scope.
pub mod prelude {
    pub use crate::comm::{Cluster, RankHandle, WorkerPool};
    pub use crate::machine::{ComputeModel, Workload};
    pub use crate::network::NetworkModel;
    pub use crate::timeline::{ClusterConfig, ClusterTimeline, CommStats};
}
