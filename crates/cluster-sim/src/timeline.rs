//! Virtual-time accounting of a bulk-synchronous message-passing execution.
//!
//! A [`ClusterTimeline`] keeps one virtual clock per rank. The parallel SimE
//! strategies execute their per-rank work locally (so results are exact) and
//! report every unit of computation and every message here; the timeline
//! advances the clocks according to the configured
//! [`ComputeModel`] and [`NetworkModel`]. At the end of the run the
//! *makespan* (the largest clock) is the modeled runtime that the reproduced
//! tables report.
//!
//! Collectives follow the linear algorithms of MPICH 1.x on a shared
//! Ethernet segment:
//!
//! * `broadcast(root, bytes)` — the root sends a separate message to every
//!   other rank, one after another; peer `k` can continue only after its own
//!   message has arrived.
//! * `gather(root, bytes)` — every peer sends to the root; the root processes
//!   the messages serially and can continue only after the last one.
//! * `barrier()` — all clocks jump to the maximum (plus one latency per rank
//!   pair handled by the caller if desired; the simple max is enough for the
//!   bulk-synchronous strategies here).
//!
//! ```
//! use cluster_sim::machine::Workload;
//! use cluster_sim::timeline::{ClusterConfig, ClusterTimeline};
//!
//! // One bulk-synchronous step on the paper's 4-node cluster: broadcast,
//! // compute on every rank, gather at the master.
//! let mut timeline = ClusterTimeline::new(ClusterConfig::paper_cluster(4));
//! timeline.broadcast_tree(0, 4 * 561);
//! for rank in 0..4 {
//!     timeline.charge_compute(rank, &Workload::net_evals(10_000));
//! }
//! timeline.gather(0, &[0, 1024, 1024, 1024]);
//! assert!(timeline.makespan() > 0.0);
//! assert_eq!(timeline.stats().messages, 2 * 3); // 3 bcast + 3 gather msgs
//! ```

use crate::machine::{ComputeModel, Workload};
use crate::network::NetworkModel;
use serde::{Deserialize, Serialize};

/// Static description of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of ranks (processes). The paper uses 2–5 on an 8-node cluster.
    pub ranks: usize,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Per-node compute model.
    pub compute: ComputeModel,
}

impl ClusterConfig {
    /// The paper's setup: `ranks` Pentium-4 nodes on fast Ethernet.
    pub fn paper_cluster(ranks: usize) -> Self {
        ClusterConfig {
            ranks,
            network: NetworkModel::fast_ethernet(),
            compute: ComputeModel::pentium4_2ghz(),
        }
    }
}

/// Aggregate communication statistics of a simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives count their constituent
    /// messages).
    pub messages: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Number of collective operations (broadcasts + gathers + barriers).
    pub collectives: u64,
}

/// Per-rank virtual clocks plus communication statistics.
#[derive(Debug, Clone)]
pub struct ClusterTimeline {
    config: ClusterConfig,
    clocks: Vec<f64>,
    stats: CommStats,
}

impl ClusterTimeline {
    /// Creates a timeline with all clocks at zero.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.ranks >= 1, "a cluster needs at least one rank");
        ClusterTimeline {
            config,
            clocks: vec![0.0; config.ranks],
            stats: CommStats::default(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.config.ranks
    }

    /// Current virtual time of `rank`.
    pub fn time(&self, rank: usize) -> f64 {
        self.clocks[rank]
    }

    /// Largest clock — the modeled runtime of the execution so far.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Communication statistics so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Charges computation `workload` to `rank`.
    pub fn charge_compute(&mut self, rank: usize, workload: &Workload) {
        self.clocks[rank] += self.config.compute.seconds(workload);
    }

    /// Charges raw seconds to `rank` (for costs outside the work-unit model).
    pub fn charge_seconds(&mut self, rank: usize, seconds: f64) {
        assert!(seconds >= 0.0, "cannot charge negative time");
        self.clocks[rank] += seconds;
    }

    /// Point-to-point message of `bytes` from `from` to `to`. The receiver
    /// cannot have the data earlier than the sender finished sending it.
    pub fn send(&mut self, from: usize, to: usize, bytes: u64) {
        if from == to {
            return;
        }
        let t = self.config.network.message_time(bytes);
        self.clocks[from] += t;
        self.clocks[to] = self.clocks[to].max(self.clocks[from]);
        self.stats.messages += 1;
        self.stats.bytes += bytes;
    }

    /// Linear broadcast of `bytes` from `root` to every other rank.
    pub fn broadcast(&mut self, root: usize, bytes: u64) {
        let t = self.config.network.message_time(bytes);
        let mut root_clock = self.clocks[root];
        for rank in 0..self.config.ranks {
            if rank == root {
                continue;
            }
            root_clock += t;
            self.clocks[rank] = self.clocks[rank].max(root_clock);
            self.stats.messages += 1;
            self.stats.bytes += bytes;
        }
        self.clocks[root] = root_clock;
        self.stats.collectives += 1;
    }

    /// Binomial-tree broadcast of `bytes` from `root` to every other rank, as
    /// implemented by `MPI_Bcast` in MPICH 1.x: the number of communication
    /// rounds is `ceil(log2(ranks))` and every rank has the data after the
    /// last round it participates in. For simplicity all non-root ranks are
    /// charged the full tree depth (the difference to an exact per-rank
    /// schedule is under one message time).
    pub fn broadcast_tree(&mut self, root: usize, bytes: u64) {
        let ranks = self.config.ranks;
        if ranks <= 1 {
            self.stats.collectives += 1;
            return;
        }
        let rounds = (ranks as f64).log2().ceil() as u64;
        let t = self.config.network.message_time(bytes) * rounds as f64;
        let finish = self.clocks[root] + t;
        for rank in 0..ranks {
            self.clocks[rank] = self.clocks[rank].max(finish);
        }
        self.stats.messages += (ranks - 1) as u64;
        self.stats.bytes += bytes * (ranks - 1) as u64;
        self.stats.collectives += 1;
    }

    /// Linear gather into `root`; `bytes_per_rank[r]` is the payload sent by
    /// rank `r` (the root's own entry is ignored).
    pub fn gather(&mut self, root: usize, bytes_per_rank: &[u64]) {
        assert_eq!(bytes_per_rank.len(), self.config.ranks);
        let mut root_clock = self.clocks[root];
        for (rank, &bytes) in bytes_per_rank.iter().enumerate() {
            if rank == root {
                continue;
            }
            let t = self.config.network.message_time(bytes);
            // The root can start receiving this peer's data only once both
            // the peer has reached its send point and the root has finished
            // with the previous peer.
            root_clock = root_clock.max(self.clocks[rank]) + t;
            self.stats.messages += 1;
            self.stats.bytes += bytes_per_rank[rank];
        }
        self.clocks[root] = root_clock;
        self.stats.collectives += 1;
    }

    /// Synchronises every rank at the current maximum clock.
    pub fn barrier(&mut self) {
        let max = self.makespan();
        for c in &mut self.clocks {
            *c = max;
        }
        self.stats.collectives += 1;
    }

    /// Speed-up of this modeled run versus a reference serial time.
    pub fn speedup_versus(&self, serial_seconds: f64) -> f64 {
        if self.makespan() <= 0.0 {
            return 0.0;
        }
        serial_seconds / self.makespan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(ranks: usize) -> ClusterTimeline {
        ClusterTimeline::new(ClusterConfig {
            ranks,
            network: NetworkModel {
                latency: 1e-3,
                bandwidth: 1e6,
            },
            compute: ComputeModel {
                seconds_per_net_evaluation: 1e-6,
                seconds_per_misc_operation: 1e-7,
            },
        })
    }

    #[test]
    fn compute_charges_advance_only_that_rank() {
        let mut t = cluster(3);
        t.charge_compute(1, &Workload::net_evals(1000));
        assert_eq!(t.time(0), 0.0);
        assert!((t.time(1) - 1e-3).abs() < 1e-12);
        assert_eq!(t.time(2), 0.0);
        assert!((t.makespan() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn send_orders_receiver_after_sender() {
        let mut t = cluster(2);
        t.charge_seconds(0, 5.0);
        t.send(0, 1, 1000);
        // message time = 1e-3 + 1000/1e6 = 2e-3
        assert!((t.time(0) - 5.002).abs() < 1e-9);
        assert!((t.time(1) - 5.002).abs() < 1e-9);
        let stats = t.stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 1000);
    }

    #[test]
    fn send_to_self_is_free() {
        let mut t = cluster(2);
        t.send(0, 0, 1_000_000);
        assert_eq!(t.time(0), 0.0);
        assert_eq!(t.stats().messages, 0);
    }

    #[test]
    fn receiver_already_ahead_is_not_pulled_back() {
        let mut t = cluster(2);
        t.charge_seconds(1, 100.0);
        t.send(0, 1, 1000);
        assert!((t.time(1) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn broadcast_is_linear_in_ranks() {
        let mut t4 = cluster(4);
        t4.broadcast(0, 1000);
        // root pays 3 message times, last peer receives at the root's final time
        assert!((t4.time(0) - 3.0 * 0.002).abs() < 1e-9);
        assert!((t4.time(3) - 3.0 * 0.002).abs() < 1e-9);
        assert!((t4.time(1) - 0.002).abs() < 1e-9);
        assert_eq!(t4.stats().messages, 3);
        assert_eq!(t4.stats().collectives, 1);
    }

    #[test]
    fn tree_broadcast_costs_log_rounds() {
        let mut t2 = cluster(2);
        t2.broadcast_tree(0, 1000);
        assert!((t2.makespan() - 0.002).abs() < 1e-9);
        let mut t8 = cluster(8);
        t8.broadcast_tree(0, 1000);
        assert!((t8.makespan() - 3.0 * 0.002).abs() < 1e-9);
        assert_eq!(t8.stats().messages, 7);
        // tree broadcast is never slower than the linear one
        let mut lin = cluster(8);
        lin.broadcast(0, 1000);
        assert!(t8.makespan() <= lin.makespan() + 1e-12);
        // single-rank broadcast is free
        let mut t1 = cluster(1);
        t1.broadcast_tree(0, 1000);
        assert_eq!(t1.makespan(), 0.0);
    }

    #[test]
    fn gather_waits_for_the_slowest_peer() {
        let mut t = cluster(3);
        t.charge_seconds(2, 10.0);
        t.gather(0, &[0, 500, 500]);
        // root receives rank 1 first (finishes at 0 + 1.5e-3), then must wait
        // for rank 2 at 10.0 and pays another 1.5e-3.
        assert!((t.time(0) - (10.0 + 0.0015)).abs() < 1e-9);
    }

    #[test]
    fn barrier_aligns_all_clocks() {
        let mut t = cluster(4);
        t.charge_seconds(2, 7.0);
        t.barrier();
        for r in 0..4 {
            assert!((t.time(r) - 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn speedup_is_relative_to_serial_time() {
        let mut t = cluster(2);
        t.charge_seconds(0, 25.0);
        assert!((t.speedup_versus(100.0) - 4.0).abs() < 1e-12);
        let empty = cluster(2);
        assert_eq!(empty.speedup_versus(100.0), 0.0);
    }

    #[test]
    fn a_bsp_iteration_with_communication_is_slower_than_without() {
        // Emulates one Type-I-style iteration: broadcast placement, each rank
        // computes a partition of the goodness work, gather results. With a
        // slow network the makespan exceeds the serial compute time of the
        // same total work, reproducing the paper's negative Type I result.
        let total_work = 200_000u64; // net evals for the whole evaluation step
        let placement_bytes = 8 * 600u64;
        let goodness_bytes = 8 * 600u64;

        let mut serial = cluster(1);
        serial.charge_compute(0, &Workload::net_evals(total_work));
        let serial_time = serial.makespan();

        let ranks = 4;
        let mut par = cluster(ranks);
        par.broadcast(0, placement_bytes);
        for r in 0..ranks {
            par.charge_compute(r, &Workload::net_evals(total_work / ranks as u64));
        }
        let per_rank = vec![goodness_bytes; ranks];
        par.gather(0, &per_rank);

        // With this deliberately slow network (1 ms latency) communication
        // dominates the 50 ms of distributed work.
        assert!(par.makespan() > serial_time / ranks as f64);
        assert!(par.stats().messages as usize == 2 * (ranks - 1));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_rank_cluster_is_rejected() {
        let _ = ClusterTimeline::new(ClusterConfig {
            ranks: 0,
            network: NetworkModel::fast_ethernet(),
            compute: ComputeModel::default(),
        });
    }
}
