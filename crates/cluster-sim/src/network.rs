//! Network (interconnect) cost models.
//!
//! A point-to-point message of `b` bytes costs `latency + b / bandwidth`
//! seconds — the classical Hockney model, which is accurate enough for the
//! medium-sized, latency-dominated messages the SimE strategies exchange
//! (goodness vectors, placement rows, whole placements). Collectives are
//! priced the way MPICH 1.2.5 implemented them on a shared 100 Mbit/s
//! Ethernet segment: linear algorithms in which the root sends to (or
//! receives from) every peer in turn.

use serde::{Deserialize, Serialize};

/// Point-to-point network cost model (Hockney: `latency + bytes / bandwidth`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency in seconds (includes the MPI software stack).
    pub latency: f64,
    /// Sustained point-to-point bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl NetworkModel {
    /// 100 Mbit/s switched Ethernet as used in the paper's cluster: ~70 µs
    /// MPICH latency, ~11 MB/s sustained bandwidth.
    pub fn fast_ethernet() -> Self {
        NetworkModel {
            latency: 70e-6,
            bandwidth: 11.0e6,
        }
    }

    /// Gigabit Ethernet (for the "what if the interconnect were better"
    /// ablation): ~30 µs latency, ~110 MB/s.
    pub fn gigabit_ethernet() -> Self {
        NetworkModel {
            latency: 30e-6,
            bandwidth: 110.0e6,
        }
    }

    /// An idealised zero-cost interconnect; with it the modeled runtimes show
    /// pure workload-division effects.
    pub fn infinite() -> Self {
        NetworkModel {
            latency: 0.0,
            bandwidth: f64::INFINITY,
        }
    }

    /// Time for one point-to-point message of `bytes` bytes.
    pub fn message_time(&self, bytes: u64) -> f64 {
        if bytes == 0 && self.latency == 0.0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Time for a linear broadcast of `bytes` from one root to `ranks − 1`
    /// peers (the root's cost; each peer finishes after its own message).
    pub fn linear_broadcast_time(&self, bytes: u64, ranks: usize) -> f64 {
        self.message_time(bytes) * ranks.saturating_sub(1) as f64
    }

    /// Time for a linear gather of `bytes` from each of `ranks − 1` peers
    /// into the root.
    pub fn linear_gather_time(&self, bytes: u64, ranks: usize) -> f64 {
        self.linear_broadcast_time(bytes, ranks)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::fast_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_latency_plus_transfer() {
        let net = NetworkModel {
            latency: 1e-4,
            bandwidth: 1e6,
        };
        let t = net.message_time(10_000);
        assert!((t - (1e-4 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_message_still_pays_latency() {
        let net = NetworkModel::fast_ethernet();
        assert!(net.message_time(0) > 0.0);
        assert_eq!(NetworkModel::infinite().message_time(0), 0.0);
    }

    #[test]
    fn fast_ethernet_is_slower_than_gigabit() {
        let fe = NetworkModel::fast_ethernet();
        let ge = NetworkModel::gigabit_ethernet();
        assert!(fe.message_time(100_000) > ge.message_time(100_000));
    }

    #[test]
    fn infinite_network_is_free() {
        let net = NetworkModel::infinite();
        assert_eq!(net.message_time(1 << 30), 0.0);
        assert_eq!(net.linear_broadcast_time(1 << 20, 8), 0.0);
    }

    #[test]
    fn broadcast_scales_linearly_with_ranks() {
        let net = NetworkModel::fast_ethernet();
        let t4 = net.linear_broadcast_time(50_000, 4);
        let t8 = net.linear_broadcast_time(50_000, 8);
        assert!((t8 / t4 - 7.0 / 3.0).abs() < 1e-9);
        assert_eq!(net.linear_broadcast_time(50_000, 1), 0.0);
        assert_eq!(
            net.linear_gather_time(50_000, 5),
            net.linear_broadcast_time(50_000, 5)
        );
    }

    #[test]
    fn transfer_dominates_for_large_messages() {
        let net = NetworkModel::fast_ethernet();
        let big = net.message_time(10_000_000);
        assert!(big > 0.5, "10 MB over fast ethernet takes ~1 s, got {big}");
    }
}
