//! Contract tests for `cluster_sim::comm::WorkerPool` edge cases that the
//! persistent-lane rewrite must preserve.
//!
//! The pool is the concurrency spine of the threaded SimE backend, so its
//! semantics are pinned here as an integration suite, independent of the
//! unit tests inside the crate: zero-task epochs, panic propagation with
//! pool reuse afterwards, nested `run_scoped_tasks` from a worker thread,
//! and the priority of nested (front-of-lane) jobs over queued top-level
//! work under contention.

use cluster_sim::comm::WorkerPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

type Task<T> = Box<dyn FnOnce() -> T + Send + 'static>;

fn boxed<T, F: FnOnce() -> T + Send + 'static>(f: F) -> Task<T> {
    Box::new(f)
}

#[test]
fn zero_task_epoch_returns_immediately_and_leaves_the_pool_usable() {
    let pool = WorkerPool::new(3);
    for _ in 0..100 {
        let empty: Vec<Task<u32>> = Vec::new();
        assert_eq!(pool.run_tasks(empty), Vec::<u32>::new());
    }
    // The pool still executes real work after a storm of empty batches.
    let tasks: Vec<Task<u32>> = (0..7u32).map(|i| boxed(move || i + 1)).collect();
    assert_eq!(pool.run_tasks(tasks), vec![1, 2, 3, 4, 5, 6, 7]);
}

#[test]
fn task_panic_propagates_and_the_pool_is_reusable_afterwards() {
    let pool = Arc::new(WorkerPool::new(2));
    for round in 0..3 {
        let survivor = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&survivor);
        let tasks: Vec<Task<()>> = vec![
            boxed(move || {
                s.fetch_add(1, Ordering::SeqCst);
            }),
            boxed(move || panic!("pool semantics boom {round}")),
        ];
        let caught = {
            let pool = Arc::clone(&pool);
            // AssertUnwindSafe: the pool is designed to survive task panics;
            // that survival is exactly what this test verifies.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || pool.run_tasks(tasks)))
        };
        let payload = caught.expect_err("the task panic must re-raise at the merge");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload should be the formatted message");
        assert!(
            message.contains(&format!("pool semantics boom {round}")),
            "unexpected payload: {message}"
        );
        // The non-panicking task of the same batch ran to completion before
        // the panic was re-raised (full-drain guarantee).
        assert_eq!(survivor.load(Ordering::SeqCst), 1);
        // And the pool survives for the next round.
        let check: Vec<Task<usize>> = (0..4).map(|i| boxed(move || i * i)).collect();
        assert_eq!(pool.run_tasks(check), vec![0, 1, 4, 9]);
    }
}

#[test]
fn nested_scoped_batches_from_worker_threads_merge_in_submission_order() {
    // Every outer task fans out its own inner batch on the same pool; with
    // fewer workers than outer tasks, some workers must help while blocked
    // on their inner merge. Exercised at 1 worker (pure helping) and 4.
    for workers in [1usize, 4] {
        let pool = Arc::new(WorkerPool::new(workers));
        let outer: Vec<Task<Vec<usize>>> = (0..6usize)
            .map(|o| {
                let pool = Arc::clone(&pool);
                boxed(move || {
                    let inner: Vec<Task<usize>> =
                        (0..5usize).map(|i| boxed(move || o * 10 + i)).collect();
                    pool.run_tasks(inner)
                })
            })
            .collect();
        let results = pool.run_tasks(outer);
        for (o, inner) in results.into_iter().enumerate() {
            let expect: Vec<usize> = (0..5).map(|i| o * 10 + i).collect();
            assert_eq!(inner, expect, "outer task {o} on {workers} worker(s)");
        }
    }
}

#[test]
fn deeply_nested_batches_do_not_deadlock_on_one_worker() {
    // Three levels of nesting on a single worker: only the
    // help-while-waiting path can make progress here.
    let pool = Arc::new(WorkerPool::new(1));
    let p1 = Arc::clone(&pool);
    let tasks: Vec<Task<usize>> = vec![boxed(move || {
        let p2 = Arc::clone(&p1);
        let mid: Vec<Task<usize>> = vec![boxed(move || {
            let leaf: Vec<Task<usize>> = (0..3).map(|i| boxed(move || i + 100)).collect();
            p2.run_tasks(leaf).into_iter().sum()
        })];
        p1.run_tasks(mid)[0]
    })];
    assert_eq!(pool.run_tasks(tasks), vec![303]);
}

#[test]
fn nested_jobs_take_priority_over_queued_top_level_work_under_contention() {
    // One worker, so execution order is observable. While the worker is
    // pinned inside an outer task, an external thread queues a flood of
    // top-level jobs; the outer task then submits a nested batch. Nested
    // jobs go to the *front* of the lane, so the helping worker must run
    // all of them before any of the queued flood, and the flood only runs
    // once the outer task has fully retired.
    let pool = Arc::new(WorkerPool::new(1));
    let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    let worker_busy = Arc::new(Barrier::new(2));

    let flood_pool = Arc::clone(&pool);
    let flood_order = Arc::clone(&order);
    let flood_gate = Arc::clone(&worker_busy);
    let flood = std::thread::spawn(move || {
        // Wait until the only worker is provably inside the outer task,
        // then queue the top-level flood behind it.
        flood_gate.wait();
        let jobs: Vec<Task<()>> = (0..8)
            .map(|_| {
                let order = Arc::clone(&flood_order);
                boxed(move || order.lock().unwrap().push("flood"))
            })
            .collect();
        flood_pool.run_tasks(jobs);
    });

    let outer_pool = Arc::clone(&pool);
    let outer_order = Arc::clone(&order);
    let outer_gate = Arc::clone(&worker_busy);
    let outer: Vec<Task<()>> = vec![boxed(move || {
        // Release the flood thread, then give it time to enqueue. If the
        // flood loses the race anyway the ordering assertion below still
        // holds (it just exercises less contention) — the test cannot flake.
        outer_gate.wait();
        std::thread::sleep(Duration::from_millis(50));
        let nested: Vec<Task<()>> = (0..4)
            .map(|_| {
                let order = Arc::clone(&outer_order);
                boxed(move || order.lock().unwrap().push("nested"))
            })
            .collect();
        outer_pool.run_tasks(nested);
    })];

    pool.run_tasks(outer);
    flood.join().unwrap();
    let log = order.lock().unwrap().clone();
    assert_eq!(log.len(), 12);
    assert_eq!(&log[..4], &vec!["nested"; 4][..], "full log: {log:?}");
    assert_eq!(&log[4..], &vec!["flood"; 8][..], "full log: {log:?}");
}

#[test]
fn no_leaked_jobs_or_slots_after_batches_panics_and_nesting() {
    // `queued_jobs()` is the pool's leak detector: at every join point —
    // after a normal batch, after a panicking batch, after nested batches
    // under contention — every lane must be empty. A non-zero count here
    // means a job was enqueued and never drained (leaked job) or a slot was
    // claimed and never merged (leaked slot), both of which would wedge a
    // long-running server that reuses one pool forever.
    let pool = Arc::new(WorkerPool::new(3));
    assert_eq!(pool.queued_jobs(), 0, "fresh pool must be empty");

    // Normal batch.
    let tasks: Vec<Task<usize>> = (0..32).map(|i| boxed(move || i)).collect();
    assert_eq!(pool.run_tasks(tasks).len(), 32);
    assert_eq!(pool.queued_jobs(), 0, "leak after a plain batch");

    // Panicking batch: the panic re-raises at the merge, and the drain
    // guarantee means no task of the batch is left behind in a lane.
    for round in 0..3 {
        let tasks: Vec<Task<()>> = (0..6)
            .map(|i| {
                boxed(move || {
                    if i == 3 {
                        panic!("leak-check boom {round}");
                    }
                })
            })
            .collect();
        let pool2 = Arc::clone(&pool);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || pool2.run_tasks(tasks)));
        assert!(caught.is_err(), "round {round} must re-raise");
        assert_eq!(pool.queued_jobs(), 0, "leak after a panicking batch");
    }

    // Nested batches from worker threads, more outer tasks than workers, so
    // helping-while-waiting is exercised; then the same leak assertion.
    let outer: Vec<Task<usize>> = (0..8)
        .map(|o| {
            let pool = Arc::clone(&pool);
            boxed(move || {
                let inner: Vec<Task<usize>> = (0..4).map(|i| boxed(move || o * 10 + i)).collect();
                pool.run_tasks(inner).into_iter().sum()
            })
        })
        .collect();
    let sums = pool.run_tasks(outer);
    assert_eq!(sums.len(), 8);
    assert_eq!(pool.queued_jobs(), 0, "leak after nested batches");

    // External threads hammering one pool concurrently (the server shape:
    // many jobs sharing one pool), then the pool is quiet.
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for round in 0..5 {
                    let tasks: Vec<Task<usize>> = (0..8)
                        .map(move |i| boxed(move || t * 100 + round * 10 + i))
                        .collect();
                    assert_eq!(pool.run_tasks(tasks).len(), 8);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        pool.queued_jobs(),
        0,
        "leak after concurrent external batches"
    );
}
