//! Row-based standard-cell placement.
//!
//! A placement assigns every cell of a netlist to a *slot*: a row index and an
//! ordinal position within that row. Cells in a row are packed left-to-right
//! with no overlap, so the x coordinate of a cell is the sum of the widths of
//! the cells to its left; the y coordinate is the row index times the common
//! row height. This is the layout model used by the SimE allocation operator
//! ("sorted individual best fit" inserts a cell at the best slot) and by the
//! Type II row-wise domain decomposition.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use vlsi_netlist::{CellId, Netlist};

/// Source of unique placement identities (see [`Placement::uid`]). Identity
/// only gates cache reuse — it never influences the search — so a process-wide
/// atomic does not affect determinism.
static PLACEMENT_UID: AtomicU64 = AtomicU64::new(1);

fn next_placement_uid() -> u64 {
    PLACEMENT_UID.fetch_add(1, Ordering::Relaxed)
}

/// Height of a placement row in layout units. Standard cells share a common
/// height, so the value only scales the vertical component of wirelength.
pub const ROW_HEIGHT: f64 = 8.0;

/// A position a cell can occupy: a row and an insertion index within the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slot {
    /// Row index, `0 ..< num_rows`.
    pub row: usize,
    /// Ordinal position within the row (0 = leftmost).
    pub index: usize,
}

/// Errors reported by placement validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A cell appears in no row.
    MissingCell(CellId),
    /// A cell appears more than once.
    DuplicateCell(CellId),
    /// The recorded row of a cell disagrees with the row lists.
    InconsistentRow(CellId),
    /// The placement has a different number of cells than the netlist.
    CellCountMismatch {
        /// Cells in the placement.
        placed: usize,
        /// Cells in the netlist.
        expected: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::MissingCell(c) => write!(f, "cell {c} is not placed"),
            PlacementError::DuplicateCell(c) => write!(f, "cell {c} is placed more than once"),
            PlacementError::InconsistentRow(c) => {
                write!(f, "cell {c} row bookkeeping is inconsistent")
            }
            PlacementError::CellCountMismatch { placed, expected } => {
                write!(f, "placement has {placed} cells, netlist has {expected}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A legal row-based placement of all cells of a netlist.
///
/// The structure keeps per-cell cached coordinates so that cost evaluation is
/// cheap; the caches are refreshed for a whole row whenever that row changes.
/// Note: deliberately **not** `Serialize`/`Deserialize`. The `uid` field
/// must be unique per live object (incremental caches key on it), so a
/// derived round-trip that restored a stored uid verbatim could alias two
/// placements and make [`crate::kernel::NetLengthCache`] skip rows that
/// actually changed. If persistence is ever needed, serialize the row lists
/// and rebuild through [`Placement::from_rows`], which assigns a fresh uid.
#[derive(Debug)]
pub struct Placement {
    /// Cells of each row, in left-to-right order.
    rows: Vec<Vec<CellId>>,
    /// Row of each cell.
    cell_row: Vec<u32>,
    /// Cached ordinal index of each cell within its row (maintained by
    /// [`Placement::rebuild_row_x`], which already walks the row).
    cell_index: Vec<u32>,
    /// Cached centre x coordinate of each cell.
    cell_x: Vec<f64>,
    /// Cached width of each cell (copied from the netlist to avoid lookups).
    cell_width: Vec<u32>,
    /// Total width of each row.
    row_width: Vec<u64>,
    /// Unique identity of this placement object; refreshed on clone so
    /// incremental caches keyed on a placement never confuse two objects that
    /// share a mutation history (e.g. per-rank clones in Type II).
    uid: u64,
    /// Monotone mutation counter; bumped on every row rebuild.
    epoch: u64,
    /// For each row, the `epoch` at which it last changed. An incremental
    /// cost cache is valid for a row iff it has seen this epoch.
    row_epoch: Vec<u64>,
}

impl Clone for Placement {
    fn clone(&self) -> Self {
        Placement {
            rows: self.rows.clone(),
            cell_row: self.cell_row.clone(),
            cell_index: self.cell_index.clone(),
            cell_x: self.cell_x.clone(),
            cell_width: self.cell_width.clone(),
            row_width: self.row_width.clone(),
            uid: next_placement_uid(),
            epoch: self.epoch,
            row_epoch: self.row_epoch.clone(),
        }
    }
}

impl Placement {
    /// Creates a placement by dealing cells round-robin into `num_rows` rows
    /// in cell-id order. Deterministic; mainly useful for tests.
    pub fn round_robin(netlist: &Netlist, num_rows: usize) -> Self {
        assert!(num_rows > 0, "a placement needs at least one row");
        let order: Vec<CellId> = netlist.cell_ids().collect();
        Self::from_order(netlist, num_rows, &order)
    }

    /// Creates a random initial placement: cells are shuffled and dealt into
    /// rows so that row widths stay balanced.
    pub fn random<R: Rng + ?Sized>(netlist: &Netlist, num_rows: usize, rng: &mut R) -> Self {
        assert!(num_rows > 0, "a placement needs at least one row");
        let mut order: Vec<CellId> = netlist.cell_ids().collect();
        order.shuffle(rng);
        Self::from_order(netlist, num_rows, &order)
    }

    /// Builds a placement by dealing `order` into rows, always appending to
    /// the currently narrowest row (greedy width balancing).
    pub fn from_order(netlist: &Netlist, num_rows: usize, order: &[CellId]) -> Self {
        assert!(num_rows > 0, "a placement needs at least one row");
        let n = netlist.num_cells();
        let mut p = Placement {
            rows: vec![Vec::with_capacity(n / num_rows + 1); num_rows],
            cell_row: vec![0; n],
            cell_index: vec![0; n],
            cell_x: vec![0.0; n],
            cell_width: netlist.cells().iter().map(|c| c.width).collect(),
            row_width: vec![0; num_rows],
            uid: next_placement_uid(),
            epoch: 0,
            row_epoch: vec![0; num_rows],
        };
        for &cell in order {
            let row = (0..num_rows)
                .min_by_key(|&r| p.row_width[r])
                .expect("num_rows > 0");
            p.rows[row].push(cell);
            p.cell_row[cell.index()] = row as u32;
            p.row_width[row] += p.cell_width[cell.index()] as u64;
        }
        for r in 0..num_rows {
            p.rebuild_row_x(r);
        }
        p
    }

    /// Rebuilds a placement from explicit per-row cell orderings (used by the
    /// Type II domain decomposition when merging the partial placements
    /// returned by the slaves).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty. Call [`Placement::validate`] afterwards to
    /// check that every cell appears exactly once.
    pub fn from_rows(netlist: &Netlist, rows: Vec<Vec<CellId>>) -> Self {
        assert!(!rows.is_empty(), "a placement needs at least one row");
        let n = netlist.num_cells();
        let mut p = Placement {
            cell_row: vec![0; n],
            cell_index: vec![0; n],
            cell_x: vec![0.0; n],
            cell_width: netlist.cells().iter().map(|c| c.width).collect(),
            row_width: vec![0; rows.len()],
            uid: next_placement_uid(),
            epoch: 0,
            row_epoch: vec![0; rows.len()],
            rows,
        };
        for r in 0..p.rows.len() {
            let cells = std::mem::take(&mut p.rows[r]);
            let mut width = 0u64;
            for &cell in &cells {
                p.cell_row[cell.index()] = r as u32;
                width += p.cell_width[cell.index()] as u64;
            }
            p.row_width[r] = width;
            p.rows[r] = cells;
            p.rebuild_row_x(r);
        }
        p
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of placed cells.
    pub fn num_cells(&self) -> usize {
        self.cell_row.len()
    }

    /// The cells of a row in left-to-right order.
    #[inline]
    pub fn row(&self, row: usize) -> &[CellId] {
        &self.rows[row]
    }

    /// Row currently containing `cell`.
    #[inline]
    pub fn row_of(&self, cell: CellId) -> usize {
        self.cell_row[cell.index()] as usize
    }

    /// Ordinal index of `cell` within its row. O(1): the ordinal is cached
    /// per cell and maintained by the same row walk that refreshes the x
    /// coordinates, because `slot_of`/`trial_position` sit under the
    /// allocation trial loop.
    #[inline]
    pub fn index_in_row(&self, cell: CellId) -> usize {
        let idx = self.cell_index[cell.index()] as usize;
        // Always-on fail-fast, like the linear scan this replaced: an
        // unplaced cell (e.g. a double remove_cell) must panic here, not
        // silently evict whichever cell sits at its stale cached ordinal.
        // O(1), negligible next to the O(row) mutations that call this.
        assert_eq!(
            self.rows[self.row_of(cell)].get(idx).copied(),
            Some(cell),
            "cell {cell} is not placed at its cached ordinal"
        );
        idx
    }

    /// Slot currently occupied by `cell`.
    pub fn slot_of(&self, cell: CellId) -> Slot {
        Slot {
            row: self.row_of(cell),
            index: self.index_in_row(cell),
        }
    }

    /// Cached centre x coordinate of `cell` (the first component of
    /// [`Placement::position`], without recomputing the y coordinate).
    #[inline]
    pub fn x_of(&self, cell: CellId) -> f64 {
        self.cell_x[cell.index()]
    }

    /// Centre coordinates of `cell` in layout units.
    #[inline]
    pub fn position(&self, cell: CellId) -> (f64, f64) {
        (
            self.cell_x[cell.index()],
            (self.cell_row[cell.index()] as f64 + 0.5) * ROW_HEIGHT,
        )
    }

    /// Total width of `row`.
    #[inline]
    pub fn row_width(&self, row: usize) -> u64 {
        self.row_width[row]
    }

    /// Maximum row width — the layout `Width` used by the width constraint.
    pub fn width(&self) -> u64 {
        self.row_width.iter().copied().max().unwrap_or(0)
    }

    /// Average row width `w_avg = Σ cell widths / num_rows`, the minimum
    /// possible layout width.
    pub fn avg_row_width(&self) -> f64 {
        let total: u64 = self.cell_width.iter().map(|&w| w as u64).sum();
        total as f64 / self.num_rows() as f64
    }

    /// `true` if the layout width satisfies `Width − w_avg ≤ α · w_avg`.
    pub fn width_within(&self, alpha: f64) -> bool {
        (self.width() as f64) <= (1.0 + alpha) * self.avg_row_width()
    }

    /// Removes `cell` from its row and returns the slot it occupied.
    pub fn remove_cell(&mut self, cell: CellId) -> Slot {
        let slot = self.slot_of(cell);
        self.rows[slot.row].remove(slot.index);
        self.row_width[slot.row] -= self.cell_width[cell.index()] as u64;
        // Cells left of the removal point keep their exact coordinates.
        self.rebuild_row_x_from(slot.row, slot.index);
        slot
    }

    /// Inserts a previously removed `cell` at `slot`. The insertion index is
    /// clamped to the current row length.
    pub fn insert_cell(&mut self, cell: CellId, slot: Slot) {
        let index = slot.index.min(self.rows[slot.row].len());
        self.rows[slot.row].insert(index, cell);
        self.cell_row[cell.index()] = slot.row as u32;
        self.row_width[slot.row] += self.cell_width[cell.index()] as u64;
        // Cells left of the insertion point keep their exact coordinates.
        self.rebuild_row_x_from(slot.row, index);
    }

    /// Moves `cell` to `slot` (remove + insert).
    pub fn move_cell(&mut self, cell: CellId, slot: Slot) {
        self.remove_cell(cell);
        self.insert_cell(cell, slot);
    }

    /// Swaps the slots of two cells (a classical SA/TS/GA move).
    pub fn swap_cells(&mut self, a: CellId, b: CellId) {
        if a == b {
            return;
        }
        let sa = self.slot_of(a);
        let sb = self.slot_of(b);
        self.rows[sa.row][sa.index] = b;
        self.rows[sb.row][sb.index] = a;
        self.cell_row[a.index()] = sb.row as u32;
        self.cell_row[b.index()] = sa.row as u32;
        let wa = self.cell_width[a.index()] as u64;
        let wb = self.cell_width[b.index()] as u64;
        if sa.row != sb.row {
            self.row_width[sa.row] = self.row_width[sa.row] - wa + wb;
            self.row_width[sb.row] = self.row_width[sb.row] - wb + wa;
        }
        if sa.row == sb.row {
            self.rebuild_row_x_from(sa.row, sa.index.min(sb.index));
        } else {
            self.rebuild_row_x_from(sa.row, sa.index);
            self.rebuild_row_x_from(sb.row, sb.index);
        }
    }

    /// Hypothetical centre position of `cell` if it were inserted at `slot`,
    /// without modifying the placement. Used by allocation to evaluate trial
    /// positions cheaply. The cell must currently be *removed* from the
    /// placement for the returned x coordinate to be exact; if it is still
    /// placed in the same row the estimate ignores its own width.
    pub fn trial_position(&self, cell: CellId, slot: Slot) -> (f64, f64) {
        let row = &self.rows[slot.row];
        let index = slot.index.min(row.len());
        // O(1) via the cached centre coordinate of the left neighbour: its
        // right edge is the insertion point. Cell widths are integers, so
        // every centre/edge is an exact half-integer double and this matches
        // the former prefix-sum loop bit for bit.
        let x = if index == 0 {
            0.0
        } else {
            let prev = row[index - 1].index();
            self.cell_x[prev] + self.cell_width[prev] as f64 / 2.0
        };
        let w = self.cell_width[cell.index()] as f64;
        (x + w / 2.0, (slot.row as f64 + 0.5) * ROW_HEIGHT)
    }

    /// Number of insertion slots currently available in `row` (one more than
    /// the number of cells in it).
    pub fn slots_in_row(&self, row: usize) -> usize {
        self.rows[row].len() + 1
    }

    /// Checks structural invariants against the netlist: every cell placed
    /// exactly once, bookkeeping consistent.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), PlacementError> {
        if self.cell_row.len() != netlist.num_cells() {
            return Err(PlacementError::CellCountMismatch {
                placed: self.cell_row.len(),
                expected: netlist.num_cells(),
            });
        }
        let mut seen = vec![false; netlist.num_cells()];
        for (r, row) in self.rows.iter().enumerate() {
            let mut width = 0u64;
            for (i, &cell) in row.iter().enumerate() {
                if seen[cell.index()] {
                    return Err(PlacementError::DuplicateCell(cell));
                }
                seen[cell.index()] = true;
                if self.cell_row[cell.index()] as usize != r {
                    return Err(PlacementError::InconsistentRow(cell));
                }
                if self.cell_index[cell.index()] as usize != i {
                    return Err(PlacementError::InconsistentRow(cell));
                }
                width += self.cell_width[cell.index()] as u64;
            }
            if width != self.row_width[r] {
                // Row width bookkeeping is internal; treat divergence as an
                // inconsistent row on the first cell of the row (or a
                // mismatch if the row is empty, which cannot happen when
                // width differs from 0).
                if let Some(&first) = row.first() {
                    return Err(PlacementError::InconsistentRow(first));
                }
            }
        }
        for (i, &s) in seen.iter().enumerate() {
            if !s {
                return Err(PlacementError::MissingCell(CellId::from(i)));
            }
        }
        Ok(())
    }

    /// Identity of this placement object. Fresh per construction and per
    /// clone; incremental caches use it to detect that they are looking at a
    /// different placement than the one they were synchronised with.
    #[inline]
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The epoch at which `row` last changed (monotone across the whole
    /// placement). Together with [`Placement::uid`] this is the invalidation
    /// signal for incremental net-length caches: a row's cells can only move
    /// (x or y) through a row rebuild, which bumps this value.
    #[inline]
    pub fn row_epoch(&self, row: usize) -> u64 {
        self.row_epoch[row]
    }

    /// Rebuilds the cached x coordinates and ordinals of every cell in `row`
    /// and records the mutation in the row's epoch.
    fn rebuild_row_x(&mut self, row: usize) {
        self.rebuild_row_x_from(row, 0);
    }

    /// Rebuilds the cached x coordinates and ordinals of `row` starting at
    /// ordinal `start`, resuming from the (untouched) left neighbour's right
    /// edge. Left edges are exact cumulative integer sums in doubles, so the
    /// resumed prefix sum reproduces a from-zero rebuild bit for bit — this
    /// is what lets every single-slot mutation repack only the row suffix.
    /// Records the mutation in the row's epoch regardless of `start`.
    fn rebuild_row_x_from(&mut self, row: usize, start: usize) {
        // Split borrows: the row list is read while the coordinate cache is
        // written, so take the row out temporarily.
        let cells = std::mem::take(&mut self.rows[row]);
        let start = start.min(cells.len());
        let mut x = if start == 0 {
            0.0
        } else {
            let prev = cells[start - 1].index();
            self.cell_x[prev] + self.cell_width[prev] as f64 / 2.0
        };
        for (i, &cell) in cells.iter().enumerate().skip(start) {
            let w = self.cell_width[cell.index()] as f64;
            self.cell_x[cell.index()] = x + w / 2.0;
            self.cell_index[cell.index()] = i as u32;
            x += w;
        }
        self.rows[row] = cells;
        self.epoch += 1;
        self.row_epoch[row] = self.epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};

    fn netlist() -> Netlist {
        CircuitGenerator::new(GeneratorConfig::sized("layout_test", 120, 3)).generate()
    }

    #[test]
    fn round_robin_places_every_cell_once() {
        let nl = netlist();
        let p = Placement::round_robin(&nl, 7);
        p.validate(&nl).unwrap();
        assert_eq!(p.num_rows(), 7);
        let placed: usize = (0..7).map(|r| p.row(r).len()).sum();
        assert_eq!(placed, nl.num_cells());
    }

    #[test]
    fn random_placement_is_legal_and_balanced() {
        let nl = netlist();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = Placement::random(&nl, 6, &mut rng);
        p.validate(&nl).unwrap();
        let widths: Vec<u64> = (0..6).map(|r| p.row_width(r)).collect();
        let max = *widths.iter().max().unwrap() as f64;
        let min = *widths.iter().min().unwrap() as f64;
        assert!(
            max - min <= 16.0,
            "greedy balancing should keep rows within one max cell width: {widths:?}"
        );
    }

    #[test]
    fn positions_reflect_row_packing() {
        let nl = netlist();
        let p = Placement::round_robin(&nl, 5);
        for r in 0..p.num_rows() {
            let mut x = 0.0;
            for &cell in p.row(r) {
                let w = nl.cell(cell).width as f64;
                let (cx, cy) = p.position(cell);
                assert!((cx - (x + w / 2.0)).abs() < 1e-9);
                assert!((cy - (r as f64 + 0.5) * ROW_HEIGHT).abs() < 1e-9);
                x += w;
            }
            assert_eq!(x as u64, p.row_width(r));
        }
    }

    #[test]
    fn remove_insert_roundtrip_preserves_legality() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        let cell = CellId(10);
        let slot = p.remove_cell(cell);
        assert!(p.validate(&nl).is_err(), "cell is temporarily missing");
        p.insert_cell(cell, slot);
        p.validate(&nl).unwrap();
    }

    #[test]
    fn move_cell_relocates() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        let cell = CellId(3);
        let target = Slot { row: 4, index: 0 };
        p.move_cell(cell, target);
        p.validate(&nl).unwrap();
        assert_eq!(p.row_of(cell), 4);
        assert_eq!(p.index_in_row(cell), 0);
    }

    #[test]
    fn swap_cells_across_rows_updates_widths() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        // find two cells in different rows with different widths
        let a = p.row(0)[0];
        let b = p.row(1)[0];
        let before: u64 = (0..5).map(|r| p.row_width(r)).sum();
        p.swap_cells(a, b);
        p.validate(&nl).unwrap();
        assert_eq!(p.row_of(a), 1);
        assert_eq!(p.row_of(b), 0);
        let after: u64 = (0..5).map(|r| p.row_width(r)).sum();
        assert_eq!(before, after, "total width is conserved by swaps");
    }

    #[test]
    fn swap_with_self_is_a_noop() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        let a = p.row(0)[0];
        let before = p.clone();
        p.swap_cells(a, a);
        assert_eq!(p.row_of(a), before.row_of(a));
        assert_eq!(p.index_in_row(a), before.index_in_row(a));
    }

    #[test]
    fn trial_position_matches_actual_insertion() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        let cell = p.row(2)[1];
        p.remove_cell(cell);
        let slot = Slot { row: 3, index: 2 };
        let predicted = p.trial_position(cell, slot);
        p.insert_cell(cell, slot);
        let actual = p.position(cell);
        assert!((predicted.0 - actual.0).abs() < 1e-9);
        assert!((predicted.1 - actual.1).abs() < 1e-9);
    }

    #[test]
    fn width_constraint_helper() {
        let nl = netlist();
        let p = Placement::round_robin(&nl, 5);
        // Round-robin in id order is not balanced by width, but with alpha
        // large enough the constraint always holds.
        assert!(p.width_within(10.0));
        assert!(p.width() as f64 >= p.avg_row_width());
    }

    #[test]
    fn from_rows_roundtrips_an_existing_placement() {
        let nl = netlist();
        let p = Placement::round_robin(&nl, 6);
        let rows: Vec<Vec<CellId>> = (0..6).map(|r| p.row(r).to_vec()).collect();
        let q = Placement::from_rows(&nl, rows);
        q.validate(&nl).unwrap();
        for c in nl.cell_ids() {
            assert_eq!(p.row_of(c), q.row_of(c));
            assert_eq!(p.position(c), q.position(c));
        }
        assert_eq!(p.width(), q.width());
    }

    #[test]
    fn validate_detects_duplicates_and_missing() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 4);
        let cell = p.row(0)[0];
        p.remove_cell(cell);
        assert_eq!(
            p.validate(&nl).unwrap_err(),
            PlacementError::MissingCell(cell)
        );
        // Insert twice to create a duplicate.
        p.insert_cell(cell, Slot { row: 0, index: 0 });
        p.rows[1].push(cell);
        assert_eq!(
            p.validate(&nl).unwrap_err(),
            PlacementError::DuplicateCell(cell)
        );
    }
}
