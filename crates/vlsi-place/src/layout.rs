//! Row-based standard-cell placement.
//!
//! A placement assigns every cell of a netlist to a *slot*: a row index and an
//! ordinal position within that row. Cells in a row are packed left-to-right
//! with no overlap, so the x coordinate of a cell is the sum of the widths of
//! the cells to its left; the y coordinate is the row index times the common
//! row height. This is the layout model used by the SimE allocation operator
//! ("sorted individual best fit" inserts a cell at the best slot) and by the
//! Type II row-wise domain decomposition.
//!
//! # Mixed-size layouts
//!
//! Fixed cells (pad rings, multi-row macro blocks) never enter the packed
//! rows. Their positions are a *deterministic function of the netlist*: pads
//! line up at negative x outside the packing region, macros become **blocked
//! spans** — per-row intervals that row packing flows around, exactly as if
//! an invisible cell occupied them. Every constructor derives this fixed
//! layout from the netlist, so two placements of the same circuit always
//! agree on where the fixed cells sit (which is what lets a `.pl` round-trip
//! validate fixed positions instead of trusting the file). Circuits without
//! fixed cells have no blocked spans and pack bitwise identically to the
//! original gap-free model.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use vlsi_netlist::{CellId, CellKind, Netlist};

/// Source of unique placement identities (see [`Placement::uid`]). Identity
/// only gates cache reuse — it never influences the search — so a process-wide
/// atomic does not affect determinism.
static PLACEMENT_UID: AtomicU64 = AtomicU64::new(1);

fn next_placement_uid() -> u64 {
    PLACEMENT_UID.fetch_add(1, Ordering::Relaxed)
}

/// Height of a placement row in layout units. Standard cells share a common
/// height, so the value only scales the vertical component of wirelength.
pub const ROW_HEIGHT: f64 = 8.0;

/// A position a cell can occupy: a row and an insertion index within the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slot {
    /// Row index, `0 ..< num_rows`.
    pub row: usize,
    /// Ordinal position within the row (0 = leftmost).
    pub index: usize,
}

/// Errors reported by placement validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A cell appears in no row.
    MissingCell(CellId),
    /// A cell appears more than once.
    DuplicateCell(CellId),
    /// The recorded row of a cell disagrees with the row lists.
    InconsistentRow(CellId),
    /// A fixed cell (pad, macro) appears inside a packed row.
    FixedCellInRow(CellId),
    /// The placement has a different number of cells than the netlist.
    CellCountMismatch {
        /// Cells in the placement.
        placed: usize,
        /// Cells in the netlist.
        expected: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::MissingCell(c) => write!(f, "cell {c} is not placed"),
            PlacementError::DuplicateCell(c) => write!(f, "cell {c} is placed more than once"),
            PlacementError::InconsistentRow(c) => {
                write!(f, "cell {c} row bookkeeping is inconsistent")
            }
            PlacementError::FixedCellInRow(c) => {
                write!(f, "fixed cell {c} appears inside a packed row")
            }
            PlacementError::CellCountMismatch { placed, expected } => {
                write!(f, "placement has {placed} cells, netlist has {expected}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A legal row-based placement of all cells of a netlist.
///
/// The structure keeps per-cell cached coordinates so that cost evaluation is
/// cheap; the caches are refreshed for a whole row whenever that row changes.
/// Note: deliberately **not** `Serialize`/`Deserialize`. The `uid` field
/// must be unique per live object (incremental caches key on it), so a
/// derived round-trip that restored a stored uid verbatim could alias two
/// placements and make [`crate::kernel::NetLengthCache`] skip rows that
/// actually changed. If persistence is ever needed, serialize the row lists
/// and rebuild through [`Placement::from_rows`], which assigns a fresh uid.
#[derive(Debug)]
pub struct Placement {
    /// Cells of each row, in left-to-right order.
    rows: Vec<Vec<CellId>>,
    /// Row of each cell.
    cell_row: Vec<u32>,
    /// Cached ordinal index of each cell within its row (maintained by
    /// [`Placement::rebuild_row_x`], which already walks the row).
    cell_index: Vec<u32>,
    /// Cached centre x coordinate of each cell.
    cell_x: Vec<f64>,
    /// Cached width of each cell (copied from the netlist to avoid lookups).
    cell_width: Vec<u32>,
    /// Total movable width of each row (fixed cells are not row members).
    row_width: Vec<u64>,
    /// `true` for cells that are pre-placed and excluded from the rows.
    fixed: Vec<bool>,
    /// Per-row blocked intervals `[lo, hi)` (macro footprints), sorted by
    /// start and pairwise disjoint. Row packing flows around them.
    blocked: Vec<Vec<(f64, f64)>>,
    /// Packing cursor after the last movable cell of each row — the row's
    /// right extent, including any gaps forced by blocked spans.
    row_extent: Vec<f64>,
    /// Total width of all movable cells (denominator of `avg_row_width`).
    movable_total_width: u64,
    /// Unique identity of this placement object; refreshed on clone so
    /// incremental caches keyed on a placement never confuse two objects that
    /// share a mutation history (e.g. per-rank clones in Type II).
    uid: u64,
    /// Monotone mutation counter; bumped on every row rebuild.
    epoch: u64,
    /// For each row, the `epoch` at which it last changed. An incremental
    /// cost cache is valid for a row iff it has seen this epoch.
    row_epoch: Vec<u64>,
}

impl Clone for Placement {
    fn clone(&self) -> Self {
        Placement {
            rows: self.rows.clone(),
            cell_row: self.cell_row.clone(),
            cell_index: self.cell_index.clone(),
            cell_x: self.cell_x.clone(),
            cell_width: self.cell_width.clone(),
            row_width: self.row_width.clone(),
            fixed: self.fixed.clone(),
            blocked: self.blocked.clone(),
            row_extent: self.row_extent.clone(),
            movable_total_width: self.movable_total_width,
            uid: next_placement_uid(),
            epoch: self.epoch,
            row_epoch: self.row_epoch.clone(),
        }
    }
}

impl Placement {
    /// Creates a placement by dealing cells round-robin into `num_rows` rows
    /// in cell-id order. Deterministic; mainly useful for tests.
    pub fn round_robin(netlist: &Netlist, num_rows: usize) -> Self {
        assert!(num_rows > 0, "a placement needs at least one row");
        let order: Vec<CellId> = netlist.cell_ids().collect();
        Self::from_order(netlist, num_rows, &order)
    }

    /// Creates a random initial placement: cells are shuffled and dealt into
    /// rows so that row widths stay balanced.
    pub fn random<R: Rng + ?Sized>(netlist: &Netlist, num_rows: usize, rng: &mut R) -> Self {
        assert!(num_rows > 0, "a placement needs at least one row");
        let mut order: Vec<CellId> = netlist.cell_ids().collect();
        order.shuffle(rng);
        Self::from_order(netlist, num_rows, &order)
    }

    /// Builds a placement by dealing `order` into rows, always appending to
    /// the currently narrowest row (greedy width balancing). Fixed cells in
    /// `order` are skipped — their positions come from the deterministic
    /// fixed layout, never from the deal.
    pub fn from_order(netlist: &Netlist, num_rows: usize, order: &[CellId]) -> Self {
        assert!(num_rows > 0, "a placement needs at least one row");
        let mut p = Placement::empty(netlist, num_rows);
        for &cell in order {
            if p.fixed[cell.index()] {
                continue;
            }
            let row = (0..num_rows)
                .min_by_key(|&r| p.row_width[r])
                .expect("num_rows > 0");
            p.rows[row].push(cell);
            p.cell_row[cell.index()] = row as u32;
            p.row_width[row] += p.cell_width[cell.index()] as u64;
        }
        for r in 0..num_rows {
            p.rebuild_row_x(r);
        }
        p
    }

    /// Shared constructor core: an all-rows-empty placement with the fixed
    /// layout (pad positions, macro blocked spans) already derived from the
    /// netlist.
    fn empty(netlist: &Netlist, num_rows: usize) -> Self {
        let n = netlist.num_cells();
        let (positions, blocked) = default_fixed_layout(netlist, num_rows);
        let movable_total_width = netlist
            .cells()
            .iter()
            .filter(|c| !c.fixed)
            .map(|c| c.width as u64)
            .sum();
        let mut p = Placement {
            rows: vec![Vec::with_capacity(n / num_rows + 1); num_rows],
            cell_row: vec![0; n],
            cell_index: vec![0; n],
            cell_x: vec![0.0; n],
            cell_width: netlist.cells().iter().map(|c| c.width).collect(),
            row_width: vec![0; num_rows],
            fixed: netlist.cells().iter().map(|c| c.fixed).collect(),
            blocked,
            row_extent: vec![0.0; num_rows],
            movable_total_width,
            uid: next_placement_uid(),
            epoch: 0,
            row_epoch: vec![0; num_rows],
        };
        for (cell, cx, row) in positions {
            p.cell_x[cell.index()] = cx;
            p.cell_row[cell.index()] = row;
        }
        p
    }

    /// Rebuilds a placement from explicit per-row cell orderings (used by the
    /// Type II domain decomposition when merging the partial placements
    /// returned by the slaves).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty. Call [`Placement::validate`] afterwards to
    /// check that every cell appears exactly once.
    pub fn from_rows(netlist: &Netlist, rows: Vec<Vec<CellId>>) -> Self {
        assert!(!rows.is_empty(), "a placement needs at least one row");
        let mut p = Placement::empty(netlist, rows.len());
        p.rows = rows;
        for r in 0..p.rows.len() {
            let cells = std::mem::take(&mut p.rows[r]);
            let mut width = 0u64;
            for &cell in &cells {
                p.cell_row[cell.index()] = r as u32;
                width += p.cell_width[cell.index()] as u64;
            }
            p.row_width[r] = width;
            p.rows[r] = cells;
            p.rebuild_row_x(r);
        }
        p
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of placed cells.
    pub fn num_cells(&self) -> usize {
        self.cell_row.len()
    }

    /// The cells of a row in left-to-right order.
    #[inline]
    pub fn row(&self, row: usize) -> &[CellId] {
        &self.rows[row]
    }

    /// Row currently containing `cell`.
    #[inline]
    pub fn row_of(&self, cell: CellId) -> usize {
        self.cell_row[cell.index()] as usize
    }

    /// Ordinal index of `cell` within its row. O(1): the ordinal is cached
    /// per cell and maintained by the same row walk that refreshes the x
    /// coordinates, because `slot_of`/`trial_position` sit under the
    /// allocation trial loop.
    #[inline]
    pub fn index_in_row(&self, cell: CellId) -> usize {
        let idx = self.cell_index[cell.index()] as usize;
        // Always-on fail-fast, like the linear scan this replaced: an
        // unplaced cell (e.g. a double remove_cell) must panic here, not
        // silently evict whichever cell sits at its stale cached ordinal.
        // O(1), negligible next to the O(row) mutations that call this.
        assert_eq!(
            self.rows[self.row_of(cell)].get(idx).copied(),
            Some(cell),
            "cell {cell} is not placed at its cached ordinal"
        );
        idx
    }

    /// Slot currently occupied by `cell`.
    pub fn slot_of(&self, cell: CellId) -> Slot {
        Slot {
            row: self.row_of(cell),
            index: self.index_in_row(cell),
        }
    }

    /// Cached centre x coordinate of `cell` (the first component of
    /// [`Placement::position`], without recomputing the y coordinate).
    #[inline]
    pub fn x_of(&self, cell: CellId) -> f64 {
        self.cell_x[cell.index()]
    }

    /// Centre coordinates of `cell` in layout units.
    #[inline]
    pub fn position(&self, cell: CellId) -> (f64, f64) {
        (
            self.cell_x[cell.index()],
            (self.cell_row[cell.index()] as f64 + 0.5) * ROW_HEIGHT,
        )
    }

    /// Total movable width of `row` (blocked spans and fixed cells excluded).
    #[inline]
    pub fn row_width(&self, row: usize) -> u64 {
        self.row_width[row]
    }

    /// Right extent of `row`: the packing cursor after its last movable
    /// cell, including any gaps forced by blocked spans. Equals
    /// [`Placement::row_width`] exactly when the row has no blocked spans.
    #[inline]
    pub fn row_extent(&self, row: usize) -> f64 {
        self.row_extent[row]
    }

    /// `true` when `cell` is pre-placed (pad, macro) and excluded from the
    /// packed rows.
    #[inline]
    pub fn is_fixed(&self, cell: CellId) -> bool {
        self.fixed[cell.index()]
    }

    /// The blocked intervals `[lo, hi)` of `row`, sorted by start and
    /// pairwise disjoint (macro footprints the packing flows around).
    #[inline]
    pub fn blocked_spans(&self, row: usize) -> &[(f64, f64)] {
        &self.blocked[row]
    }

    /// Maximum row width — the layout `Width` used by the width constraint.
    pub fn width(&self) -> u64 {
        self.row_width.iter().copied().max().unwrap_or(0)
    }

    /// Average row width `w_avg = Σ movable cell widths / num_rows`, the
    /// minimum possible layout width. Fixed cells sit outside the packed
    /// rows, so they do not count against the width constraint.
    pub fn avg_row_width(&self) -> f64 {
        self.movable_total_width as f64 / self.num_rows() as f64
    }

    /// `true` if the layout width satisfies `Width − w_avg ≤ α · w_avg`.
    pub fn width_within(&self, alpha: f64) -> bool {
        (self.width() as f64) <= (1.0 + alpha) * self.avg_row_width()
    }

    /// Removes `cell` from its row and returns the slot it occupied.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is fixed — fixed cells are never row members.
    pub fn remove_cell(&mut self, cell: CellId) -> Slot {
        assert!(
            !self.fixed[cell.index()],
            "fixed cell {cell} cannot be moved"
        );
        let slot = self.slot_of(cell);
        self.rows[slot.row].remove(slot.index);
        self.row_width[slot.row] -= self.cell_width[cell.index()] as u64;
        // Cells left of the removal point keep their exact coordinates.
        self.rebuild_row_x_from(slot.row, slot.index);
        slot
    }

    /// Inserts a previously removed `cell` at `slot`. The insertion index is
    /// clamped to the current row length.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is fixed — fixed cells are never row members.
    pub fn insert_cell(&mut self, cell: CellId, slot: Slot) {
        assert!(
            !self.fixed[cell.index()],
            "fixed cell {cell} cannot be moved"
        );
        let index = slot.index.min(self.rows[slot.row].len());
        self.rows[slot.row].insert(index, cell);
        self.cell_row[cell.index()] = slot.row as u32;
        self.row_width[slot.row] += self.cell_width[cell.index()] as u64;
        // Cells left of the insertion point keep their exact coordinates.
        self.rebuild_row_x_from(slot.row, index);
    }

    /// Moves `cell` to `slot` (remove + insert).
    pub fn move_cell(&mut self, cell: CellId, slot: Slot) {
        self.remove_cell(cell);
        self.insert_cell(cell, slot);
    }

    /// Swaps the slots of two cells (a classical SA/TS/GA move).
    ///
    /// # Panics
    ///
    /// Panics if either cell is fixed — fixed cells are never row members.
    pub fn swap_cells(&mut self, a: CellId, b: CellId) {
        assert!(
            !self.fixed[a.index()] && !self.fixed[b.index()],
            "fixed cells cannot be swapped"
        );
        if a == b {
            return;
        }
        let sa = self.slot_of(a);
        let sb = self.slot_of(b);
        self.rows[sa.row][sa.index] = b;
        self.rows[sb.row][sb.index] = a;
        self.cell_row[a.index()] = sb.row as u32;
        self.cell_row[b.index()] = sa.row as u32;
        let wa = self.cell_width[a.index()] as u64;
        let wb = self.cell_width[b.index()] as u64;
        if sa.row != sb.row {
            self.row_width[sa.row] = self.row_width[sa.row] - wa + wb;
            self.row_width[sb.row] = self.row_width[sb.row] - wb + wa;
        }
        if sa.row == sb.row {
            self.rebuild_row_x_from(sa.row, sa.index.min(sb.index));
        } else {
            self.rebuild_row_x_from(sa.row, sa.index);
            self.rebuild_row_x_from(sb.row, sb.index);
        }
    }

    /// Hypothetical centre position of `cell` if it were inserted at `slot`,
    /// without modifying the placement. Used by allocation to evaluate trial
    /// positions cheaply. The cell must currently be *removed* from the
    /// placement for the returned x coordinate to be exact; if it is still
    /// placed in the same row the estimate ignores its own width.
    pub fn trial_position(&self, cell: CellId, slot: Slot) -> (f64, f64) {
        let row = &self.rows[slot.row];
        let index = slot.index.min(row.len());
        // O(1) via the cached centre coordinate of the left neighbour: its
        // right edge is the insertion point (advanced past any blocked span
        // the cell would overlap). Cell widths are integers, so every
        // centre/edge is an exact half-integer double and this matches a
        // from-scratch prefix-sum repack bit for bit.
        let x = if index == 0 {
            0.0
        } else {
            let prev = row[index - 1].index();
            self.cell_x[prev] + self.cell_width[prev] as f64 / 2.0
        };
        let w = self.cell_width[cell.index()] as f64;
        let x = next_free(&self.blocked[slot.row], x, w);
        (x + w / 2.0, (slot.row as f64 + 0.5) * ROW_HEIGHT)
    }

    /// Number of insertion slots currently available in `row` (one more than
    /// the number of cells in it).
    pub fn slots_in_row(&self, row: usize) -> usize {
        self.rows[row].len() + 1
    }

    /// Checks structural invariants against the netlist: every cell placed
    /// exactly once, bookkeeping consistent.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), PlacementError> {
        if self.cell_row.len() != netlist.num_cells() {
            return Err(PlacementError::CellCountMismatch {
                placed: self.cell_row.len(),
                expected: netlist.num_cells(),
            });
        }
        let mut seen = vec![false; netlist.num_cells()];
        for (r, row) in self.rows.iter().enumerate() {
            let mut width = 0u64;
            for (i, &cell) in row.iter().enumerate() {
                if self.fixed[cell.index()] {
                    return Err(PlacementError::FixedCellInRow(cell));
                }
                if seen[cell.index()] {
                    return Err(PlacementError::DuplicateCell(cell));
                }
                seen[cell.index()] = true;
                if self.cell_row[cell.index()] as usize != r {
                    return Err(PlacementError::InconsistentRow(cell));
                }
                if self.cell_index[cell.index()] as usize != i {
                    return Err(PlacementError::InconsistentRow(cell));
                }
                width += self.cell_width[cell.index()] as u64;
            }
            if width != self.row_width[r] {
                // Row width bookkeeping is internal; treat divergence as an
                // inconsistent row on the first cell of the row (or a
                // mismatch if the row is empty, which cannot happen when
                // width differs from 0).
                if let Some(&first) = row.first() {
                    return Err(PlacementError::InconsistentRow(first));
                }
            }
        }
        for (i, &s) in seen.iter().enumerate() {
            if !s && !self.fixed[i] {
                return Err(PlacementError::MissingCell(CellId::from(i)));
            }
        }
        Ok(())
    }

    /// Identity of this placement object. Fresh per construction and per
    /// clone; incremental caches use it to detect that they are looking at a
    /// different placement than the one they were synchronised with.
    #[inline]
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The epoch at which `row` last changed (monotone across the whole
    /// placement). Together with [`Placement::uid`] this is the invalidation
    /// signal for incremental net-length caches: a row's cells can only move
    /// (x or y) through a row rebuild, which bumps this value.
    #[inline]
    pub fn row_epoch(&self, row: usize) -> u64 {
        self.row_epoch[row]
    }

    /// Rebuilds the cached x coordinates and ordinals of every cell in `row`
    /// and records the mutation in the row's epoch.
    fn rebuild_row_x(&mut self, row: usize) {
        self.rebuild_row_x_from(row, 0);
    }

    /// Rebuilds the cached x coordinates and ordinals of `row` starting at
    /// ordinal `start`, resuming from the (untouched) left neighbour's right
    /// edge. Left edges are exact cumulative integer sums in doubles, so the
    /// resumed prefix sum reproduces a from-zero rebuild bit for bit — this
    /// is what lets every single-slot mutation repack only the row suffix.
    /// Records the mutation in the row's epoch regardless of `start`.
    fn rebuild_row_x_from(&mut self, row: usize, start: usize) {
        // Split borrows: the row list is read while the coordinate cache is
        // written, so take the row out temporarily.
        let cells = std::mem::take(&mut self.rows[row]);
        let start = start.min(cells.len());
        let mut x = if start == 0 {
            0.0
        } else {
            let prev = cells[start - 1].index();
            self.cell_x[prev] + self.cell_width[prev] as f64 / 2.0
        };
        for (i, &cell) in cells.iter().enumerate().skip(start) {
            let w = self.cell_width[cell.index()] as f64;
            let left = next_free(&self.blocked[row], x, w);
            self.cell_x[cell.index()] = left + w / 2.0;
            self.cell_index[cell.index()] = i as u32;
            x = left + w;
        }
        self.rows[row] = cells;
        self.row_extent[row] = x;
        self.epoch += 1;
        self.row_epoch[row] = self.epoch;
    }
}

/// Advances `x` to the smallest left edge `>= x` where a cell of `width`
/// avoids every blocked interval. `blocked` is sorted by start and pairwise
/// disjoint; with no intervals the cursor is returned unchanged, which keeps
/// fixed-free circuits bitwise identical to the gap-free packing.
#[inline]
fn next_free(blocked: &[(f64, f64)], mut x: f64, width: f64) -> f64 {
    for &(lo, hi) in blocked {
        if x + width <= lo {
            break;
        }
        if x < hi {
            x = hi;
        }
    }
    x
}

/// Clearance between the pad ring and the packing region (x = 0).
const PAD_CLEARANCE: f64 = 8.0;

/// Spacing between successive macro blocks sharing a row, so their footprints
/// stay distinct intervals (narrow movable cells may pack into the gap).
const MACRO_GAP: u64 = 4;

/// Per fixed cell its `(cell, centre x, pin row)`, plus the per-row blocked
/// intervals macro footprints carve out of the packing region.
type FixedLayout = (Vec<(CellId, f64, u32)>, Vec<Vec<(f64, f64)>>);

/// Derives the deterministic fixed layout of a circuit: per fixed cell its
/// `(cell, centre x, pin row)`, plus the per-row blocked intervals macro
/// footprints carve out of the packing region.
///
/// Pads (fixed single-row non-macro cells) line up at negative x, dealt
/// round-robin across rows in cell-id order. Macros stagger down the rows —
/// the `j`-th macro of height `h` occupies rows `(j·h) mod (num_rows−h+1)`
/// onward — flush against the previous macro in those rows (plus a small
/// gap); their net pin sits on the middle row of the band. The layout is a
/// pure function of `(netlist, num_rows)`, so every placement of a circuit
/// agrees on it.
fn default_fixed_layout(netlist: &Netlist, num_rows: usize) -> FixedLayout {
    let mut positions = Vec::new();
    let mut blocked: Vec<Vec<(f64, f64)>> = vec![Vec::new(); num_rows];
    let mut pad_cursor: Vec<u64> = vec![0; num_rows];
    let mut macro_cursor: Vec<u64> = vec![0; num_rows];
    let mut pads = 0usize;
    let mut macros = 0usize;
    for (i, cell) in netlist.cells().iter().enumerate() {
        if !cell.fixed {
            continue;
        }
        let id = CellId::from(i);
        let w = cell.width as u64;
        if cell.height <= 1 && cell.kind != CellKind::Macro {
            // Pad ring: parked left of the packing region.
            let row = pads % num_rows;
            let cx = -(PAD_CLEARANCE + pad_cursor[row] as f64 + cell.width as f64 / 2.0);
            pad_cursor[row] += w;
            positions.push((id, cx, row as u32));
            pads += 1;
        } else {
            // Macro block: a blocked span across `h` consecutive rows.
            let h = (cell.height as usize).min(num_rows);
            let band = (macros * h) % (num_rows - h + 1);
            let left = (band..band + h)
                .map(|r| macro_cursor[r])
                .max()
                .expect("h >= 1");
            for r in band..band + h {
                blocked[r].push((left as f64, (left + w) as f64));
                macro_cursor[r] = left + w + MACRO_GAP;
            }
            let pin_row = (band + h / 2).min(num_rows - 1) as u32;
            positions.push((id, left as f64 + cell.width as f64 / 2.0, pin_row));
            macros += 1;
        }
    }
    (positions, blocked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};

    fn netlist() -> Netlist {
        CircuitGenerator::new(GeneratorConfig::sized("layout_test", 120, 3)).generate()
    }

    fn mixed_netlist() -> Netlist {
        use vlsi_netlist::generator::MixedSizeSpec;
        let cfg = GeneratorConfig::sized("layout_mixed", 160, 7).with_mixed(MixedSizeSpec {
            num_macros: 3,
            macro_height: 3,
            pad_ring: true,
        });
        CircuitGenerator::new(cfg).generate()
    }

    #[test]
    fn round_robin_places_every_cell_once() {
        let nl = netlist();
        let p = Placement::round_robin(&nl, 7);
        p.validate(&nl).unwrap();
        assert_eq!(p.num_rows(), 7);
        let placed: usize = (0..7).map(|r| p.row(r).len()).sum();
        assert_eq!(placed, nl.num_cells());
    }

    #[test]
    fn random_placement_is_legal_and_balanced() {
        let nl = netlist();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = Placement::random(&nl, 6, &mut rng);
        p.validate(&nl).unwrap();
        let widths: Vec<u64> = (0..6).map(|r| p.row_width(r)).collect();
        let max = *widths.iter().max().unwrap() as f64;
        let min = *widths.iter().min().unwrap() as f64;
        assert!(
            max - min <= 16.0,
            "greedy balancing should keep rows within one max cell width: {widths:?}"
        );
    }

    #[test]
    fn positions_reflect_row_packing() {
        let nl = netlist();
        let p = Placement::round_robin(&nl, 5);
        for r in 0..p.num_rows() {
            let mut x = 0.0;
            for &cell in p.row(r) {
                let w = nl.cell(cell).width as f64;
                let (cx, cy) = p.position(cell);
                assert!((cx - (x + w / 2.0)).abs() < 1e-9);
                assert!((cy - (r as f64 + 0.5) * ROW_HEIGHT).abs() < 1e-9);
                x += w;
            }
            assert_eq!(x as u64, p.row_width(r));
        }
    }

    #[test]
    fn remove_insert_roundtrip_preserves_legality() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        let cell = CellId(10);
        let slot = p.remove_cell(cell);
        assert!(p.validate(&nl).is_err(), "cell is temporarily missing");
        p.insert_cell(cell, slot);
        p.validate(&nl).unwrap();
    }

    #[test]
    fn move_cell_relocates() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        let cell = CellId(3);
        let target = Slot { row: 4, index: 0 };
        p.move_cell(cell, target);
        p.validate(&nl).unwrap();
        assert_eq!(p.row_of(cell), 4);
        assert_eq!(p.index_in_row(cell), 0);
    }

    #[test]
    fn swap_cells_across_rows_updates_widths() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        // find two cells in different rows with different widths
        let a = p.row(0)[0];
        let b = p.row(1)[0];
        let before: u64 = (0..5).map(|r| p.row_width(r)).sum();
        p.swap_cells(a, b);
        p.validate(&nl).unwrap();
        assert_eq!(p.row_of(a), 1);
        assert_eq!(p.row_of(b), 0);
        let after: u64 = (0..5).map(|r| p.row_width(r)).sum();
        assert_eq!(before, after, "total width is conserved by swaps");
    }

    #[test]
    fn swap_with_self_is_a_noop() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        let a = p.row(0)[0];
        let before = p.clone();
        p.swap_cells(a, a);
        assert_eq!(p.row_of(a), before.row_of(a));
        assert_eq!(p.index_in_row(a), before.index_in_row(a));
    }

    #[test]
    fn trial_position_matches_actual_insertion() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 5);
        let cell = p.row(2)[1];
        p.remove_cell(cell);
        let slot = Slot { row: 3, index: 2 };
        let predicted = p.trial_position(cell, slot);
        p.insert_cell(cell, slot);
        let actual = p.position(cell);
        assert!((predicted.0 - actual.0).abs() < 1e-9);
        assert!((predicted.1 - actual.1).abs() < 1e-9);
    }

    #[test]
    fn width_constraint_helper() {
        let nl = netlist();
        let p = Placement::round_robin(&nl, 5);
        // Round-robin in id order is not balanced by width, but with alpha
        // large enough the constraint always holds.
        assert!(p.width_within(10.0));
        assert!(p.width() as f64 >= p.avg_row_width());
    }

    #[test]
    fn from_rows_roundtrips_an_existing_placement() {
        let nl = netlist();
        let p = Placement::round_robin(&nl, 6);
        let rows: Vec<Vec<CellId>> = (0..6).map(|r| p.row(r).to_vec()).collect();
        let q = Placement::from_rows(&nl, rows);
        q.validate(&nl).unwrap();
        for c in nl.cell_ids() {
            assert_eq!(p.row_of(c), q.row_of(c));
            assert_eq!(p.position(c), q.position(c));
        }
        assert_eq!(p.width(), q.width());
    }

    #[test]
    fn fixed_cells_stay_out_of_rows_and_packing_avoids_blocked_spans() {
        let nl = mixed_netlist();
        let p = Placement::round_robin(&nl, 6);
        p.validate(&nl).unwrap();
        // Only movable cells are dealt into rows.
        let placed: usize = (0..6).map(|r| p.row(r).len()).sum();
        let movable = nl.cells().iter().filter(|c| !c.fixed).count();
        assert!(movable < nl.num_cells(), "circuit has fixed cells");
        assert_eq!(placed, movable);
        // Movable cells never overlap a blocked span, and the row extent
        // accounts for the packing gaps the spans force.
        let mut spans_seen = 0;
        for r in 0..p.num_rows() {
            spans_seen += p.blocked_spans(r).len();
            for &cell in p.row(r) {
                let w = nl.cell(cell).width as f64;
                let left = p.x_of(cell) - w / 2.0;
                for &(lo, hi) in p.blocked_spans(r) {
                    assert!(
                        left + w <= lo || left >= hi,
                        "cell {cell} [{left}, {}) overlaps blocked [{lo}, {hi}) in row {r}",
                        left + w
                    );
                }
            }
            assert!(p.row_extent(r) >= p.row_width(r) as f64);
        }
        assert!(spans_seen > 0, "macros produce blocked spans");
        // Pads park left of the packing region; macros sit inside it.
        for (i, c) in nl.cells().iter().enumerate() {
            let id = CellId::from(i);
            assert_eq!(p.is_fixed(id), c.fixed);
            if c.fixed && c.kind != vlsi_netlist::CellKind::Macro {
                assert!(p.x_of(id) < 0.0, "pad {id} must sit at negative x");
            }
            if c.kind == vlsi_netlist::CellKind::Macro {
                assert!(p.x_of(id) >= 0.0);
            }
        }
    }

    #[test]
    fn fixed_layout_is_identical_across_constructors() {
        let nl = mixed_netlist();
        let a = Placement::round_robin(&nl, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let b = Placement::random(&nl, 6, &mut rng);
        for (i, c) in nl.cells().iter().enumerate() {
            if c.fixed {
                let id = CellId::from(i);
                assert_eq!(a.position(id), b.position(id));
            }
        }
        for r in 0..6 {
            assert_eq!(a.blocked_spans(r), b.blocked_spans(r));
        }
    }

    #[test]
    fn trial_position_matches_insertion_around_blocked_spans() {
        let nl = mixed_netlist();
        let mut p = Placement::round_robin(&nl, 6);
        let row = (0..6)
            .find(|&r| !p.blocked_spans(r).is_empty())
            .expect("some row is blocked");
        for index in 0..p.slots_in_row(row).min(12) {
            let cell = p.row((row + 1) % 6)[0];
            p.remove_cell(cell);
            let predicted = p.trial_position(cell, Slot { row, index });
            p.insert_cell(cell, Slot { row, index });
            let actual = p.position(cell);
            assert_eq!(predicted.0.to_bits(), actual.0.to_bits());
            assert_eq!(predicted.1.to_bits(), actual.1.to_bits());
            p.move_cell(
                cell,
                Slot {
                    row: (row + 1) % 6,
                    index: 0,
                },
            );
        }
    }

    #[test]
    fn suffix_rebuild_matches_full_rebuild_with_blocked_spans() {
        let nl = mixed_netlist();
        let mut p = Placement::round_robin(&nl, 6);
        let row = (0..6)
            .find(|&r| !p.blocked_spans(r).is_empty())
            .expect("some row is blocked");
        let cell = p.row(row)[p.row(row).len() / 2];
        p.move_cell(cell, Slot { row, index: 0 });
        let rows: Vec<Vec<CellId>> = (0..6).map(|r| p.row(r).to_vec()).collect();
        let q = Placement::from_rows(&nl, rows);
        for c in nl.cell_ids() {
            assert_eq!(p.position(c).0.to_bits(), q.position(c).0.to_bits());
            assert_eq!(p.position(c).1.to_bits(), q.position(c).1.to_bits());
        }
        for r in 0..6 {
            assert_eq!(p.row_extent(r).to_bits(), q.row_extent(r).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "cannot be moved")]
    fn moving_a_fixed_cell_panics() {
        let nl = mixed_netlist();
        let fixed = nl
            .cell_ids()
            .find(|&c| nl.cell(c).fixed)
            .expect("circuit has fixed cells");
        let mut p = Placement::round_robin(&nl, 6);
        p.remove_cell(fixed);
    }

    #[test]
    fn pure_circuits_have_no_blocked_spans_and_full_extent() {
        let nl = netlist();
        let p = Placement::round_robin(&nl, 5);
        for r in 0..5 {
            assert!(p.blocked_spans(r).is_empty());
            assert_eq!(p.row_extent(r).to_bits(), (p.row_width(r) as f64).to_bits());
        }
    }

    #[test]
    fn validate_detects_duplicates_and_missing() {
        let nl = netlist();
        let mut p = Placement::round_robin(&nl, 4);
        let cell = p.row(0)[0];
        p.remove_cell(cell);
        assert_eq!(
            p.validate(&nl).unwrap_err(),
            PlacementError::MissingCell(cell)
        );
        // Insert twice to create a duplicate.
        p.insert_cell(cell, Slot { row: 0, index: 0 });
        p.rows[1].push(cell);
        assert_eq!(
            p.validate(&nl).unwrap_err(),
            PlacementError::DuplicateCell(cell)
        );
    }
}
