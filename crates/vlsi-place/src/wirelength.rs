//! Per-net interconnect length estimation.
//!
//! The paper estimates the wirelength of each net with a Steiner tree
//! (Section 2). For row-based standard-cell layouts the customary
//! approximation is the *single-trunk Steiner tree*: a horizontal trunk at the
//! median pin y-coordinate spanning the horizontal extent of the net, plus a
//! vertical branch from every pin to the trunk. The half-perimeter wirelength
//! (HPWL) of the bounding box is also provided as a cheaper estimator and as a
//! lower bound used in tests.

use serde::{Deserialize, Serialize};

/// Which per-net estimator the cost model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum WirelengthModel {
    /// Single-trunk Steiner approximation (the paper's estimator).
    #[default]
    SingleTrunkSteiner,
    /// Half-perimeter of the pin bounding box.
    HalfPerimeter,
}

impl WirelengthModel {
    /// Estimates the length of a net from its pin positions using this model.
    /// Returns 0 for nets with fewer than two pins.
    pub fn estimate(self, pins: &[(f64, f64)]) -> f64 {
        match self {
            WirelengthModel::SingleTrunkSteiner => single_trunk_steiner(pins),
            WirelengthModel::HalfPerimeter => hpwl(pins),
        }
    }
}

/// Half-perimeter wirelength of the bounding box of `pins`.
pub fn hpwl(pins: &[(f64, f64)]) -> f64 {
    if pins.len() < 2 {
        return 0.0;
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in pins {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    (max_x - min_x) + (max_y - min_y)
}

/// Single-trunk Steiner tree estimate: horizontal trunk at the median pin y,
/// spanning `[min_x, max_x]`, plus a vertical branch from every pin to the
/// trunk.
pub fn single_trunk_steiner(pins: &[(f64, f64)]) -> f64 {
    if pins.len() < 2 {
        return 0.0;
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, _) in pins {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
    }
    let mut ys: Vec<f64> = pins.iter().map(|&(_, y)| y).collect();
    ys.sort_by(|a, b| a.partial_cmp(b).expect("pin coordinates are finite"));
    let trunk_y = ys[ys.len() / 2];
    let trunk = max_x - min_x;
    let branches: f64 = pins.iter().map(|&(_, y)| (y - trunk_y).abs()).sum();
    trunk + branches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_nets_have_zero_length() {
        assert_eq!(hpwl(&[]), 0.0);
        assert_eq!(hpwl(&[(3.0, 4.0)]), 0.0);
        assert_eq!(single_trunk_steiner(&[]), 0.0);
        assert_eq!(single_trunk_steiner(&[(3.0, 4.0)]), 0.0);
    }

    #[test]
    fn two_pin_net_matches_manhattan_distance() {
        let pins = [(0.0, 0.0), (3.0, 4.0)];
        assert_eq!(hpwl(&pins), 7.0);
        assert_eq!(single_trunk_steiner(&pins), 7.0);
    }

    #[test]
    fn steiner_is_at_least_hpwl_horizontal_span() {
        let pins = [(0.0, 0.0), (10.0, 8.0), (5.0, 16.0), (2.0, 8.0)];
        let st = single_trunk_steiner(&pins);
        assert!(st >= 10.0, "trunk must cover the horizontal span");
        // With pins on 3 distinct rows the Steiner estimate exceeds HPWL.
        assert!(st >= hpwl(&pins));
    }

    #[test]
    fn collinear_pins_cost_only_the_span() {
        let pins = [(0.0, 4.0), (5.0, 4.0), (9.0, 4.0)];
        assert_eq!(single_trunk_steiner(&pins), 9.0);
        assert_eq!(hpwl(&pins), 9.0);
    }

    #[test]
    fn trunk_at_median_minimises_vertical_wire_for_odd_counts() {
        // Pins on rows 0, 8, 80: the median (8) gives branches 8 + 72 = 80;
        // placing the trunk at the mean would be worse.
        let pins = [(0.0, 0.0), (1.0, 8.0), (2.0, 80.0)];
        let st = single_trunk_steiner(&pins);
        assert!((st - (2.0 + 80.0)).abs() < 1e-9);
    }

    #[test]
    fn model_dispatch() {
        let pins = [(0.0, 0.0), (10.0, 8.0), (5.0, 16.0)];
        assert_eq!(WirelengthModel::HalfPerimeter.estimate(&pins), hpwl(&pins));
        assert_eq!(
            WirelengthModel::SingleTrunkSteiner.estimate(&pins),
            single_trunk_steiner(&pins)
        );
        assert_eq!(
            WirelengthModel::default(),
            WirelengthModel::SingleTrunkSteiner
        );
    }
}
