//! Per-cell multiobjective goodness (the SimE Evaluation step).
//!
//! SimE measures how well each element is placed with a goodness
//! `gᵢ = Oᵢ / Cᵢ ∈ [0, 1]`, where `Oᵢ` is an estimate of the optimal cost of
//! element `i` and `Cᵢ` its actual cost (Section 3). Because the placement is
//! multiobjective, each cell gets one goodness per objective and the values
//! are folded with the same fuzzy AND used for the solution-level quality:
//!
//! * **wirelength goodness** — ratio of the lower bound to the actual summed
//!   length of the nets incident to the cell. Computing the actual length
//!   requires the positions of all fan-in cells, which is exactly the data
//!   dependency that complicates the paper's Type I partitioning.
//! * **power goodness** — same ratio with switching-weighted lengths.
//! * **delay goodness** — for cells on stored critical paths, the ratio of
//!   the best achievable delay of those paths to their current delay; cells
//!   on no stored path have delay goodness 1.

use crate::cost::{CostEvaluator, Objectives};
use crate::layout::Placement;
use vlsi_netlist::CellId;

/// Per-objective goodness of one cell plus the combined scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodnessVector {
    /// Wirelength goodness in [0, 1].
    pub wirelength: f64,
    /// Power goodness in [0, 1].
    pub power: f64,
    /// Delay goodness in [0, 1] (1 when the cell is on no stored path or the
    /// delay objective is disabled).
    pub delay: f64,
    /// Fuzzy-combined goodness in [0, 1]; this is the value SimE selection
    /// uses.
    pub combined: f64,
}

/// Computes per-cell goodness values from a [`CostEvaluator`].
#[derive(Debug, Clone)]
pub struct GoodnessEvaluator {
    evaluator: CostEvaluator,
    /// For each cell, the indices of stored paths that pass through it.
    cell_paths: Vec<Vec<u32>>,
}

impl GoodnessEvaluator {
    /// Builds a goodness evaluator sharing the given cost evaluator.
    pub fn new(evaluator: CostEvaluator) -> Self {
        let netlist = evaluator.netlist().clone();
        let mut cell_paths = vec![Vec::new(); netlist.num_cells()];
        for (pi, path) in evaluator.paths().iter().enumerate() {
            for &c in &path.cells {
                cell_paths[c.index()].push(pi as u32);
            }
        }
        GoodnessEvaluator {
            evaluator,
            cell_paths,
        }
    }

    /// The underlying cost evaluator.
    pub fn evaluator(&self) -> &CostEvaluator {
        &self.evaluator
    }

    /// Indices (into [`CostEvaluator::paths`]) of the stored critical paths
    /// passing through `cell`. Empty when the cell is on no stored path.
    ///
    /// A distributed evaluation of `cell`'s goodness needs the lengths of the
    /// nets on exactly these paths (in addition to the cell's incident nets);
    /// exposing the mapping lets the Type I partitioned evaluation fill the
    /// same sparse length buffer that [`GoodnessEvaluator::cell_goodness`]
    /// fills internally.
    pub fn paths_of_cell(&self, cell: CellId) -> &[u32] {
        &self.cell_paths[cell.index()]
    }

    /// Goodness of a single cell, given precomputed per-net lengths for the
    /// current placement (so that evaluating all cells costs one pass over
    /// the pins instead of many).
    pub fn cell_goodness_from_lengths(&self, cell: CellId, net_lengths: &[f64]) -> GoodnessVector {
        let netlist = self.evaluator.netlist();
        let bounds = self.evaluator.bounds();

        let mut wire_cost = 0.0;
        let mut power_cost = 0.0;
        for &net in netlist.nets_of_cell(cell) {
            let len = net_lengths[net.index()];
            wire_cost += len;
            power_cost += len * netlist.net(net).switching_prob;
        }
        let wire_lb = bounds.cell_wire_lower[cell.index()];
        let power_lb = bounds.cell_power_lower[cell.index()];
        let wirelength = ratio_goodness(wire_lb, wire_cost);
        let power = ratio_goodness(power_lb, power_cost);

        let delay = if self.evaluator.objectives().includes_delay()
            && !self.cell_paths[cell.index()].is_empty()
        {
            let mut worst = 1.0f64;
            for &pi in &self.cell_paths[cell.index()] {
                let path = &self.evaluator.paths()[pi as usize];
                let actual = self.evaluator.path_delay_from_lengths(path, net_lengths);
                let lb = self.evaluator.bounds().path_lower[pi as usize];
                worst = worst.min(ratio_goodness(lb, actual));
            }
            worst
        } else {
            1.0
        };

        let combined = self.combine(wirelength, power, delay);
        GoodnessVector {
            wirelength,
            power,
            delay,
            combined,
        }
    }

    /// Goodness of a single cell under `placement` (computes the incident net
    /// lengths on the fly; prefer the `_from_lengths` variant in loops).
    pub fn cell_goodness(&self, placement: &Placement, cell: CellId) -> GoodnessVector {
        let netlist = self.evaluator.netlist();
        // Only the incident nets and the paths through the cell are needed;
        // compute just those lengths into a sparse buffer.
        let mut lengths = vec![0.0; netlist.num_nets()];
        for &net in netlist.nets_of_cell(cell) {
            lengths[net.index()] = self.evaluator.net_length(placement, net);
        }
        for &pi in &self.cell_paths[cell.index()] {
            for &net in &self.evaluator.paths()[pi as usize].nets {
                lengths[net.index()] = self.evaluator.net_length(placement, net);
            }
        }
        self.cell_goodness_from_lengths(cell, &lengths)
    }

    /// Combined goodness of every cell under `placement`.
    pub fn all_goodness(&self, placement: &Placement) -> Vec<f64> {
        let lengths = self.evaluator.net_lengths(placement);
        self.all_goodness_from_lengths(&lengths)
    }

    /// Combined goodness of every cell from precomputed net lengths.
    pub fn all_goodness_from_lengths(&self, net_lengths: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.all_goodness_into(net_lengths, &mut out);
        out
    }

    /// Combined goodness of every cell from precomputed net lengths, written
    /// into a caller-owned buffer (the allocation-free variant used by the
    /// engine's per-iteration scratch space).
    pub fn all_goodness_into(&self, net_lengths: &[f64], out: &mut Vec<f64>) {
        self.goodness_range_into(net_lengths, 0..self.evaluator.netlist().num_cells(), out);
    }

    /// Combined goodness of the cells whose indices lie in `range`, written
    /// into a caller-owned buffer — one chunk of the intra-rank parallel
    /// goodness pass. Each cell's value is computed exactly as the full
    /// [`GoodnessEvaluator::all_goodness_into`] pass computes it (same
    /// inputs, same per-cell arithmetic, no cross-cell state), so
    /// concatenating the chunks of any index partition in ascending order
    /// reproduces the full pass bitwise.
    pub fn goodness_range_into(
        &self,
        net_lengths: &[f64],
        range: std::ops::Range<usize>,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(
            self.evaluator
                .netlist()
                .cell_ids()
                .skip(range.start)
                .take(range.len())
                .map(|c| self.cell_goodness_from_lengths(c, net_lengths).combined),
        );
    }

    /// Average combined goodness of a goodness vector — SimE's convergence
    /// indicator.
    pub fn average(goodness: &[f64]) -> f64 {
        if goodness.is_empty() {
            0.0
        } else {
            goodness.iter().sum::<f64>() / goodness.len() as f64
        }
    }

    /// Fuzzy combination of the per-objective goodness values, consistent
    /// with the solution-level aggregation.
    fn combine(&self, wirelength: f64, power: f64, delay: f64) -> f64 {
        let fuzzy = self.evaluator.fuzzy();
        match self.evaluator.objectives() {
            Objectives::WirelengthPower => fuzzy.aggregate(&[wirelength, power]),
            Objectives::WirelengthPowerDelay => fuzzy.aggregate(&[wirelength, power, delay]),
        }
    }
}

/// `O / C` clamped to [0, 1]; 1 when the actual cost is zero (isolated cell).
fn ratio_goodness(lower_bound: f64, actual: f64) -> f64 {
    if actual <= 0.0 {
        1.0
    } else {
        (lower_bound / actual).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Objectives;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_netlist::Netlist;

    fn setup(objectives: Objectives) -> (Arc<Netlist>, GoodnessEvaluator, Placement) {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("goodness_test", 160, 33)).generate(),
        );
        let eval = CostEvaluator::new(Arc::clone(&nl), objectives);
        let placement = Placement::round_robin(&nl, 8);
        (nl, GoodnessEvaluator::new(eval), placement)
    }

    #[test]
    fn goodness_values_are_in_unit_interval() {
        let (nl, ge, placement) = setup(Objectives::WirelengthPowerDelay);
        let lengths = ge.evaluator().net_lengths(&placement);
        for cell in nl.cell_ids() {
            let g = ge.cell_goodness_from_lengths(cell, &lengths);
            for v in [g.wirelength, g.power, g.delay, g.combined] {
                assert!((0.0..=1.0).contains(&v), "goodness {v} out of range");
            }
        }
    }

    #[test]
    fn all_goodness_matches_per_cell_computation() {
        let (nl, ge, placement) = setup(Objectives::WirelengthPower);
        let all = ge.all_goodness(&placement);
        assert_eq!(all.len(), nl.num_cells());
        let lengths = ge.evaluator().net_lengths(&placement);
        for cell in nl.cell_ids().take(20) {
            let g = ge.cell_goodness_from_lengths(cell, &lengths);
            assert!((all[cell.index()] - g.combined).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_cell_goodness_agrees_with_dense() {
        let (nl, ge, placement) = setup(Objectives::WirelengthPowerDelay);
        let lengths = ge.evaluator().net_lengths(&placement);
        for cell in nl.cell_ids().take(25) {
            let dense = ge.cell_goodness_from_lengths(cell, &lengths);
            let sparse = ge.cell_goodness(&placement, cell);
            assert!((dense.wirelength - sparse.wirelength).abs() < 1e-12);
            assert!((dense.power - sparse.power).abs() < 1e-12);
            assert!((dense.delay - sparse.delay).abs() < 1e-12);
        }
    }

    #[test]
    fn delay_goodness_is_one_without_delay_objective() {
        let (nl, ge, placement) = setup(Objectives::WirelengthPower);
        let lengths = ge.evaluator().net_lengths(&placement);
        for cell in nl.cell_ids().take(25) {
            assert_eq!(ge.cell_goodness_from_lengths(cell, &lengths).delay, 1.0);
        }
    }

    #[test]
    fn range_chunks_concatenate_to_the_full_pass_bitwise() {
        let (nl, ge, placement) = setup(Objectives::WirelengthPowerDelay);
        let lengths = ge.evaluator().net_lengths(&placement);
        let mut full = Vec::new();
        ge.all_goodness_into(&lengths, &mut full);
        for chunks in [1usize, 2, 3, 7] {
            let size = nl.num_cells().div_ceil(chunks);
            let mut merged = Vec::new();
            let mut buf = Vec::new();
            let mut start = 0;
            while start < nl.num_cells() {
                let end = (start + size).min(nl.num_cells());
                ge.goodness_range_into(&lengths, start..end, &mut buf);
                merged.extend_from_slice(&buf);
                start = end;
            }
            assert_eq!(full.len(), merged.len());
            for (a, b) in full.iter().zip(&merged) {
                assert_eq!(a.to_bits(), b.to_bits(), "chunks={chunks}");
            }
        }
    }

    #[test]
    fn average_goodness_behaves() {
        assert_eq!(GoodnessEvaluator::average(&[]), 0.0);
        assert!((GoodnessEvaluator::average(&[0.25, 0.75]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn improving_a_cells_nets_improves_its_goodness() {
        let (nl, ge, placement) = setup(Objectives::WirelengthPower);
        // Take a logic cell and compare its goodness in the current placement
        // vs a fake length vector where its incident nets are at their bound.
        let cell = nl
            .cell_ids()
            .find(|&c| nl.nets_of_cell(c).len() >= 2)
            .unwrap();
        let lengths = ge.evaluator().net_lengths(&placement);
        let actual = ge.cell_goodness_from_lengths(cell, &lengths);
        let mut ideal = lengths.clone();
        for &net in nl.nets_of_cell(cell) {
            ideal[net.index()] = ge.evaluator().bounds().net_lower[net.index()];
        }
        let better = ge.cell_goodness_from_lengths(cell, &ideal);
        assert!(better.combined >= actual.combined);
        assert!((better.wirelength - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_goodness_edge_cases() {
        assert_eq!(ratio_goodness(10.0, 0.0), 1.0);
        assert_eq!(ratio_goodness(10.0, 5.0), 1.0);
        assert!((ratio_goodness(5.0, 10.0) - 0.5).abs() < 1e-12);
        assert_eq!(ratio_goodness(0.0, 10.0), 0.0);
    }
}
