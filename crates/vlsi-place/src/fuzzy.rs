//! Fuzzy membership functions and aggregation.
//!
//! The paper optimises three objectives simultaneously and folds them into a
//! single scalar quality `µ(s) ∈ [0, 1]` using fuzzy logic (Section 2,
//! "Overall Fuzzy Cost Function", following reference \[9\]). Each objective
//! cost `C_j` is mapped to a membership `µ_j ∈ [0, 1]` relative to a lower
//! bound `O_j`:
//!
//! * `µ_j = 1` when the cost reaches its lower bound,
//! * `µ_j = 0` when the cost reaches `goal_j · O_j` (the "goal" multiple of
//!   the lower bound),
//! * linear in between.
//!
//! The per-objective memberships are combined with an ordered-weighted-average
//! fuzzy AND: `µ = β · min_j µ_j + (1 − β) · mean_j µ_j`. The layout-width
//! constraint enters as an additional membership that is 1 while the
//! constraint `Width ≤ (1 + α) · w_avg` holds and decays once it is violated,
//! so constraint violations drag the whole quality measure down.

use serde::{Deserialize, Serialize};

/// Per-objective fuzzy memberships of a solution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzyLevel {
    /// Membership of the wirelength objective.
    pub wirelength: f64,
    /// Membership of the power objective.
    pub power: f64,
    /// Membership of the delay objective (1.0 when delay is not optimised).
    pub delay: f64,
    /// Membership of the layout-width constraint.
    pub width: f64,
}

/// Configuration of the fuzzy cost aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzyConfig {
    /// Cost multiple of the lower bound at which the wirelength membership
    /// reaches zero.
    pub goal_wirelength: f64,
    /// Cost multiple of the lower bound at which the power membership reaches
    /// zero.
    pub goal_power: f64,
    /// Cost multiple of the lower bound at which the delay membership reaches
    /// zero.
    pub goal_delay: f64,
    /// OWA weight of the `min` term in the fuzzy AND (`β` in \[9\]); the
    /// remaining `1 − β` weights the arithmetic mean.
    pub beta: f64,
    /// Width-constraint ratio `α`: the layout width must not exceed
    /// `(1 + α) · w_avg`.
    pub alpha_width: f64,
}

impl Default for FuzzyConfig {
    /// Defaults calibrated so that converged placements of the synthetic
    /// benchmark suite land in the µ ≈ 0.4–0.7 band the paper reports: the
    /// per-net lower bounds assume every net packed contiguously in a single
    /// row, which real (multi-row, shared) placements of the paper-sized
    /// circuits exceed by a measured factor of roughly 20–40× for wirelength
    /// and power and 10–18× for delay, so the memberships must reach zero
    /// only well above those ratios or µ degenerates to the width-only
    /// floor for every placement (`(1 − β)/3` with two objectives,
    /// `(1 − β)/4` when delay is included).
    fn default() -> Self {
        FuzzyConfig {
            goal_wirelength: 60.0,
            goal_power: 60.0,
            goal_delay: 30.0,
            beta: 0.7,
            alpha_width: 0.25,
        }
    }
}

impl FuzzyConfig {
    /// Linear membership of a cost relative to its lower bound: 1 at the
    /// bound, 0 at `goal · bound`.
    pub fn membership(cost: f64, lower_bound: f64, goal: f64) -> f64 {
        debug_assert!(goal > 1.0, "goal multiple must exceed 1.0");
        if lower_bound <= 0.0 {
            return 1.0;
        }
        let zero_at = goal * lower_bound;
        if cost <= lower_bound {
            1.0
        } else if cost >= zero_at {
            0.0
        } else {
            (zero_at - cost) / (zero_at - lower_bound)
        }
    }

    /// Membership of the width constraint: 1 while satisfied, then decaying
    /// as the ratio of the limit to the actual width.
    pub fn width_membership(&self, width: f64, avg_row_width: f64) -> f64 {
        if avg_row_width <= 0.0 {
            return 1.0;
        }
        let limit = (1.0 + self.alpha_width) * avg_row_width;
        if width <= limit {
            1.0
        } else {
            (limit / width).clamp(0.0, 1.0)
        }
    }

    /// Ordered-weighted-average fuzzy AND of a set of memberships:
    /// `β · min + (1 − β) · mean`.
    pub fn aggregate(&self, memberships: &[f64]) -> f64 {
        if memberships.is_empty() {
            return 1.0;
        }
        let min = memberships.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = memberships.iter().sum::<f64>() / memberships.len() as f64;
        (self.beta * min + (1.0 - self.beta) * mean).clamp(0.0, 1.0)
    }

    /// Aggregates a full [`FuzzyLevel`] into the scalar quality `µ(s)`,
    /// including only the objectives listed in `use_delay` and always
    /// including the width-constraint membership.
    pub fn mu(&self, level: &FuzzyLevel, use_delay: bool) -> f64 {
        let mut parts = vec![level.wirelength, level.power];
        if use_delay {
            parts.push(level.delay);
        }
        parts.push(level.width);
        self.aggregate(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_saturates_at_bound_and_goal() {
        assert_eq!(FuzzyConfig::membership(50.0, 100.0, 2.0), 1.0);
        assert_eq!(FuzzyConfig::membership(100.0, 100.0, 2.0), 1.0);
        assert_eq!(FuzzyConfig::membership(200.0, 100.0, 2.0), 0.0);
        assert_eq!(FuzzyConfig::membership(400.0, 100.0, 2.0), 0.0);
    }

    #[test]
    fn membership_is_linear_between_bound_and_goal() {
        let m = FuzzyConfig::membership(150.0, 100.0, 2.0);
        assert!((m - 0.5).abs() < 1e-12);
        let m = FuzzyConfig::membership(125.0, 100.0, 2.0);
        assert!((m - 0.75).abs() < 1e-12);
    }

    #[test]
    fn membership_is_monotone_in_cost() {
        let mut last = 1.0;
        for i in 0..100 {
            let cost = 100.0 + i as f64 * 3.0;
            let m = FuzzyConfig::membership(cost, 100.0, 2.5);
            assert!(m <= last + 1e-12);
            last = m;
        }
    }

    #[test]
    fn zero_lower_bound_gives_full_membership() {
        assert_eq!(FuzzyConfig::membership(123.0, 0.0, 2.0), 1.0);
    }

    #[test]
    fn width_membership_kicks_in_past_the_limit() {
        let cfg = FuzzyConfig::default();
        let wavg = 100.0;
        assert_eq!(cfg.width_membership(100.0, wavg), 1.0);
        assert_eq!(cfg.width_membership(125.0, wavg), 1.0); // exactly at (1+α)
        let m = cfg.width_membership(250.0, wavg);
        assert!(m < 1.0 && m > 0.0);
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_is_between_min_and_mean() {
        let cfg = FuzzyConfig {
            beta: 0.7,
            ..Default::default()
        };
        let parts = [0.2, 0.8, 0.6];
        let agg = cfg.aggregate(&parts);
        let min = 0.2;
        let mean = (0.2 + 0.8 + 0.6) / 3.0;
        assert!(agg >= min - 1e-12 && agg <= mean + 1e-12);
        assert!((agg - (0.7 * min + 0.3 * mean)).abs() < 1e-12);
    }

    #[test]
    fn aggregate_of_perfect_memberships_is_one() {
        let cfg = FuzzyConfig::default();
        assert_eq!(cfg.aggregate(&[1.0, 1.0, 1.0, 1.0]), 1.0);
        assert_eq!(cfg.aggregate(&[]), 1.0);
    }

    #[test]
    fn mu_includes_delay_only_when_asked() {
        let cfg = FuzzyConfig {
            beta: 1.0, // pure min, easier to reason about
            ..Default::default()
        };
        let level = FuzzyLevel {
            wirelength: 0.9,
            power: 0.8,
            delay: 0.1,
            width: 1.0,
        };
        let without = cfg.mu(&level, false);
        let with = cfg.mu(&level, true);
        assert!((without - 0.8).abs() < 1e-12);
        assert!((with - 0.1).abs() < 1e-12);
        assert!(with < without);
    }

    #[test]
    fn mu_is_monotone_in_each_membership() {
        let cfg = FuzzyConfig::default();
        let base = FuzzyLevel {
            wirelength: 0.5,
            power: 0.5,
            delay: 0.5,
            width: 1.0,
        };
        let better = FuzzyLevel {
            wirelength: 0.6,
            ..base
        };
        assert!(cfg.mu(&better, true) >= cfg.mu(&base, true));
        let worse = FuzzyLevel { power: 0.3, ..base };
        assert!(cfg.mu(&worse, true) <= cfg.mu(&base, true));
    }
}
