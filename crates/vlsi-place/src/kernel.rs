//! Allocation-free incremental cost kernel.
//!
//! The SimE allocation operator scores thousands of trial positions per
//! iteration, and each score needs the estimated length of every net incident
//! to the moved cell. The reference implementations in [`crate::cost`] pay a
//! heap allocation per net (the pin buffer) and an `O(p log p)` sort per
//! Steiner estimate (the median pin y). This module provides the equivalent
//! hot path with zero allocations per call:
//!
//! * [`TrialScorer`] owns reusable scratch buffers and computes the
//!   single-trunk-Steiner median by *per-row counting* — cell y coordinates
//!   are discrete multiples of [`ROW_HEIGHT`], so a counting pass over the
//!   pin rows finds the median without sorting.
//! * [`NetLengthCache`] keeps the per-net length vector of a placement alive
//!   across SimE iterations and re-evaluates only the nets *dirtied* since
//!   the last refresh, using the placement's per-row mutation epochs.
//!
//! # Bitwise determinism
//!
//! Both structures are drop-in replacements for the naive path at the bit
//! level: pins are visited in the same canonical order (the netlist's sorted
//! CSR `net_cells` arena), partial sums are accumulated in the same order,
//! and the counting median selects exactly the element the sort-based median
//! picks. `tests/kernel_differential.rs` asserts `==` (not approximate
//! equality) against the [`crate::cost::CostEvaluator`] oracle across random
//! placements and mutation sequences.
//!
//! # Cache invalidation invariants
//!
//! [`NetLengthCache::refresh`] is exact as long as cell coordinates only
//! change through [`Placement`] methods (which funnel every mutation through
//! a row rebuild that bumps the row's epoch):
//!
//! * cached entries are keyed on [`Placement::uid`]; evaluating a *different*
//!   placement object (including clones, which take a fresh uid) triggers a
//!   full recompute,
//! * a net is re-evaluated iff it touches a cell of a row whose
//!   [`Placement::row_epoch`] advanced since the last refresh,
//! * a cell that is ripped up (`remove_cell`) keeps its last coordinates, so
//!   nets that reference it mid-allocation evaluate exactly as the oracle
//!   does; its eventual re-insertion dirties the target row and restores
//!   freshness.

use crate::cost::{CellCost, CostEvaluator};
use crate::layout::{Placement, ROW_HEIGHT};
use crate::wirelength::WirelengthModel;
use vlsi_netlist::{CellId, NetId};

/// Maps a row-lattice y coordinate (`(row + 0.5) * ROW_HEIGHT`) back to its
/// row index. Exact for every row index the layout can produce, because the
/// lattice values are exact doubles.
#[inline]
fn row_of_lattice_y(y: f64) -> u32 {
    let row = (y / ROW_HEIGHT - 0.5).round();
    debug_assert!(
        ((row + 0.5) * ROW_HEIGHT - y).abs() == 0.0,
        "y = {y} is not a row-lattice coordinate"
    );
    row as u32
}

/// Precomputed summary of one net incident to a prepared cell: everything
/// about the *other* pins that trial scoring needs, so each candidate slot is
/// scored in `O(distinct rows)` instead of `O(pins)`.
///
/// The summaries rely on two exactness facts that make the reductions
/// order-independent (and therefore bit-compatible with the oracle's
/// pin-order loops): `f64::min`/`f64::max` are commutative for finite values,
/// and every vertical distance is an exact multiple of [`ROW_HEIGHT`] (cell x
/// coordinates are exact half-integers, y coordinates exact lattice points),
/// so the branch sums incur no rounding in any summation order.
#[derive(Debug, Clone, Copy)]
struct NetSummary {
    /// Total pin count of the net, including the prepared cell.
    total_pins: u32,
    /// Extent of the other pins' x coordinates.
    min_x: f64,
    max_x: f64,
    /// Extent of the other pins' rows.
    min_row: u32,
    max_row: u32,
    /// Range of this net's `(row, count)` histogram in the scorer's arena.
    hist_start: u32,
    hist_end: u32,
    /// Net switching probability (power weight).
    switching_prob: f64,
    /// Whether the net lies on a stored critical path.
    critical: bool,
    /// Minimum vertical contribution of this net over every candidate row
    /// inside the other pins' row extent, under the prepare-time wirelength
    /// model. For half-perimeter this is `(max_row - min_row) * ROW_HEIGHT`
    /// (exact); for single-trunk Steiner it is the other pins' branch sum at
    /// their own counting upper median, which lower-bounds the merged branch
    /// sum for *any* trunk row the full score can pick. Exact multiple of
    /// [`ROW_HEIGHT`]. Candidate rows outside the extent additionally pay a
    /// `gap * ROW_HEIGHT` term (see [`PreparedSummaries::bound_floor`]).
    min_branch: f64,
}

/// Row holding the `k`-th (0-based) smallest pin y among a sorted-by-row
/// `(row, count)` histogram merged with one extra pin at `extra_row`.
/// Equivalent to sorting all pin ys ascending and taking index `k`, which is
/// what the sort-based oracle median does.
///
/// The walk is split in three phases around the merge point of the extra pin
/// (entries strictly below it, the merge point itself, the rest), so the two
/// hot loops carry no per-entry "is the extra pin still pending" branch —
/// this is the counting-median inner loop of every Steiner trial score.
fn merged_median_row(hist: &[(u32, u32)], extra_row: u32, k: usize) -> u32 {
    let mut acc = 0usize;
    let mut i = 0usize;
    // Phase 1: histogram entries strictly below the extra pin's row.
    while i < hist.len() && hist[i].0 < extra_row {
        acc += hist[i].1 as usize;
        if acc > k {
            return hist[i].0;
        }
        i += 1;
    }
    // Merge point: the extra pin joins the walk here. When it shares a row
    // with the next entry the answer for both is that same row, so checking
    // after each addition preserves the merged order exactly.
    acc += 1;
    if acc > k {
        return extra_row;
    }
    if i < hist.len() && hist[i].0 == extra_row {
        acc += hist[i].1 as usize;
        if acc > k {
            return extra_row;
        }
        i += 1;
    }
    // Phase 3: the remaining entries, all above the extra pin.
    while i < hist.len() {
        acc += hist[i].1 as usize;
        if acc > k {
            return hist[i].0;
        }
        i += 1;
    }
    // Only reachable when k indexes past the merged multiset, which the
    // scorer never produces (k = total_pins / 2 < total_pins).
    if cfg!(debug_assertions) {
        unreachable!("k must index into the merged pin multiset");
    }
    extra_row
}

/// Reusable, allocation-free scorer for net lengths and allocation trial
/// positions. One instance per worker thread; the buffers grow to the largest
/// net once and are reused for every subsequent call.
#[derive(Debug, Clone)]
pub struct TrialScorer {
    model: WirelengthModel,
    /// Pin x coordinates of the net being scored, in canonical pin order.
    xs: Vec<f64>,
    /// Pin row indices, parallel to `xs`.
    rows: Vec<u32>,
    /// Per-row pin counts used by the counting median; indexed by row,
    /// grown on demand, cleared after every estimate.
    row_counts: Vec<u32>,
    /// Per-incident-net summaries of the currently prepared cell.
    prepared: Vec<NetSummary>,
    /// Flat `(row, count)` histogram arena for the prepared summaries,
    /// sorted by row within each net's range.
    hist: Vec<(u32, u32)>,
    /// Flat arena of every *other* pin's x coordinate gathered during the
    /// last prepare, in canonical (net, pin) walk order — one entry per
    /// incidence, duplicates included, exactly the multiset the legacy
    /// windowed-candidate gather produced.
    pin_xs: Vec<f64>,
}

impl TrialScorer {
    /// Creates a scorer for the given wirelength model.
    pub fn new(model: WirelengthModel) -> Self {
        TrialScorer {
            model,
            xs: Vec::with_capacity(16),
            rows: Vec::with_capacity(16),
            row_counts: Vec::new(),
            prepared: Vec::new(),
            hist: Vec::new(),
            pin_xs: Vec::new(),
        }
    }

    /// Creates a scorer matching an evaluator's wirelength model.
    pub fn for_evaluator(evaluator: &CostEvaluator) -> Self {
        Self::new(evaluator.wirelength_model())
    }

    /// The wirelength model this scorer computes.
    pub fn model(&self) -> WirelengthModel {
        self.model
    }

    /// Estimated length of `net` under `placement`. Bitwise identical to
    /// [`CostEvaluator::net_length`], without the per-call allocation/sort.
    pub fn net_length(
        &mut self,
        evaluator: &CostEvaluator,
        placement: &Placement,
        net: NetId,
    ) -> f64 {
        let cells = evaluator.net_cells(net);
        if cells.len() < 2 {
            return 0.0;
        }
        self.xs.clear();
        self.rows.clear();
        for &c in cells {
            self.xs.push(placement.x_of(c));
            self.rows.push(placement.row_of(c) as u32);
        }
        self.estimate()
    }

    /// Estimated length of `net` with the position of `cell` overridden to
    /// `pos` (a row-lattice position, as produced by
    /// [`Placement::trial_position`]). Bitwise identical to
    /// [`CostEvaluator::net_length_with_override`].
    pub fn net_length_with_override(
        &mut self,
        evaluator: &CostEvaluator,
        placement: &Placement,
        net: NetId,
        cell: CellId,
        pos: (f64, f64),
    ) -> f64 {
        let cells = evaluator.net_cells(net);
        if cells.len() < 2 {
            return 0.0;
        }
        let override_row = row_of_lattice_y(pos.1);
        self.xs.clear();
        self.rows.clear();
        for &c in cells {
            if c == cell {
                self.xs.push(pos.0);
                self.rows.push(override_row);
            } else {
                self.xs.push(placement.x_of(c));
                self.rows.push(placement.row_of(c) as u32);
            }
        }
        self.estimate()
    }

    /// Cost of the nets incident to `cell` if it sat at `pos`. Bitwise
    /// identical to [`CostEvaluator::cell_cost_at`]; this is the inner loop
    /// of allocation trial scoring.
    pub fn cell_cost_at(
        &mut self,
        evaluator: &CostEvaluator,
        placement: &Placement,
        cell: CellId,
        pos: (f64, f64),
    ) -> CellCost {
        let netlist = evaluator.netlist();
        let mut cost = CellCost::default();
        for &net in netlist.nets_of_cell(cell) {
            let len = self.net_length_with_override(evaluator, placement, net, cell, pos);
            cost.wirelength += len;
            cost.power += len * netlist.net(net).switching_prob;
            if evaluator.net_is_critical(net) {
                cost.critical_wirelength += len;
            }
        }
        cost
    }

    /// Precomputes per-net summaries of the *other* pins of every net
    /// incident to `cell`, so that subsequent
    /// [`TrialScorer::prepared_cost_at`] calls score a candidate position in
    /// `O(distinct rows)` per net instead of re-walking every pin. The
    /// summaries stay valid while no cell other than `cell` moves — exactly
    /// the situation inside one allocation trial loop, where `cell` is ripped
    /// up and only hypothetically placed.
    pub fn prepare_cell(&mut self, evaluator: &CostEvaluator, placement: &Placement, cell: CellId) {
        build_cell_summaries(
            evaluator,
            placement,
            cell,
            self.model,
            &mut self.row_counts,
            &mut self.prepared,
            &mut self.hist,
            &mut self.pin_xs,
        );
    }

    /// Borrowed view over the summaries of the last
    /// [`TrialScorer::prepare_cell`], exposing the candidate lower-bound and
    /// median-position machinery. Valid under the same conditions as
    /// [`TrialScorer::prepared_cost_at`].
    pub fn prepared_summaries(&self) -> PreparedSummaries<'_> {
        PreparedSummaries {
            model: self.model,
            prepared: &self.prepared,
            hist: &self.hist,
            xs: &self.pin_xs,
        }
    }

    /// Cost of the prepared cell's nets if the cell sat at `pos` (a
    /// row-lattice position). Requires a preceding
    /// [`TrialScorer::prepare_cell`] for this cell under the current
    /// placement; bitwise identical to [`CostEvaluator::cell_cost_at`].
    ///
    /// Takes `&self`: the prepared summaries are immutable once built, so one
    /// prepared scorer can be **shared across worker threads** (`TrialScorer`
    /// is `Sync`) and the candidate slots of one allocation scored in
    /// parallel chunks — the intra-rank trial-scoring fan-out of
    /// `sime_core::allocation`.
    pub fn prepared_cost_at(&self, pos: (f64, f64)) -> CellCost {
        summaries_cost_at(&self.prepared, &self.hist, self.model, pos)
    }

    /// Estimates the gathered pins (`xs`/`rows`) under the scorer's model.
    fn estimate(&mut self) -> f64 {
        let n = self.xs.len();
        if n < 2 {
            return 0.0;
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &self.xs {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
        }
        let (mut min_row, mut max_row) = (u32::MAX, 0u32);
        for &r in &self.rows {
            min_row = min_row.min(r);
            max_row = max_row.max(r);
        }
        match self.model {
            WirelengthModel::HalfPerimeter => {
                let min_y = (min_row as f64 + 0.5) * ROW_HEIGHT;
                let max_y = (max_row as f64 + 0.5) * ROW_HEIGHT;
                (max_x - min_x) + (max_y - min_y)
            }
            WirelengthModel::SingleTrunkSteiner => {
                // Counting median over the discrete rows: the sort-based
                // oracle picks sorted_ys[n / 2], i.e. the (n/2)-th smallest
                // (0-based); the first row whose cumulative count exceeds
                // n / 2 holds exactly that element.
                if max_row as usize >= self.row_counts.len() {
                    self.row_counts.resize(max_row as usize + 1, 0);
                }
                for &r in &self.rows {
                    self.row_counts[r as usize] += 1;
                }
                let k = n / 2;
                let mut acc = 0usize;
                let mut median_row = max_row;
                for r in min_row..=max_row {
                    acc += self.row_counts[r as usize] as usize;
                    if acc > k {
                        median_row = r;
                        break;
                    }
                }
                for r in min_row..=max_row {
                    self.row_counts[r as usize] = 0;
                }
                let trunk_y = (median_row as f64 + 0.5) * ROW_HEIGHT;
                let trunk = max_x - min_x;
                let mut branches = 0.0f64;
                for &r in &self.rows {
                    branches += ((r as f64 + 0.5) * ROW_HEIGHT - trunk_y).abs();
                }
                trunk + branches
            }
        }
    }
}

/// Builds the per-net summaries of `cell`'s incident nets into
/// `prepared`/`hist`, using `row_counts` as the per-row counting scratch
/// (left all-zero afterwards). Shared body of [`TrialScorer::prepare_cell`]
/// and [`PreparedCell::prepare`]; a pure function of the *other* pins'
/// positions, so equal placements yield bit-equal summaries no matter which
/// buffer (or thread) runs the pass.
///
/// Also fills `pin_xs` with every other pin's x coordinate in canonical
/// walk order (the legacy windowed-candidate gather multiset) and computes
/// each net's `min_branch` — both byproducts of the walk the pass already
/// performs.
#[allow(clippy::too_many_arguments)]
fn build_cell_summaries(
    evaluator: &CostEvaluator,
    placement: &Placement,
    cell: CellId,
    model: WirelengthModel,
    row_counts: &mut Vec<u32>,
    prepared: &mut Vec<NetSummary>,
    hist: &mut Vec<(u32, u32)>,
    pin_xs: &mut Vec<f64>,
) {
    let netlist = evaluator.netlist();
    prepared.clear();
    hist.clear();
    pin_xs.clear();
    for &net in netlist.nets_of_cell(cell) {
        let cells = evaluator.net_cells(net);
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_row, mut max_row) = (u32::MAX, 0u32);
        let mut others = 0usize;
        for &c in cells {
            if c == cell {
                continue;
            }
            let x = placement.x_of(c);
            pin_xs.push(x);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            let r = placement.row_of(c) as u32;
            min_row = min_row.min(r);
            max_row = max_row.max(r);
            if r as usize >= row_counts.len() {
                row_counts.resize(r as usize + 1, 0);
            }
            row_counts[r as usize] += 1;
            others += 1;
        }
        let hist_start = hist.len() as u32;
        if min_row != u32::MAX {
            for r in min_row..=max_row {
                let c = row_counts[r as usize];
                if c > 0 {
                    hist.push((r, c));
                    row_counts[r as usize] = 0;
                }
            }
        }
        let mut min_branch = 0.0f64;
        if cells.len() >= 2 && min_row != u32::MAX {
            min_branch = match model {
                WirelengthModel::HalfPerimeter => (max_row - min_row) as f64 * ROW_HEIGHT,
                WirelengthModel::SingleTrunkSteiner => {
                    // Branch sum of the other pins at their own counting
                    // upper median m* (k = others / 2): any trunk row m the
                    // merged median can pick satisfies Σ|r_p − m| ≥ Σ|r_p −
                    // m*| because a weighted median minimises the sum of
                    // absolute deviations. Every term is an exact multiple
                    // of ROW_HEIGHT, so the sum is exact.
                    let h = &hist[hist_start as usize..];
                    let k = others / 2;
                    let mut acc = 0usize;
                    let mut m = max_row;
                    for &(r, c) in h {
                        acc += c as usize;
                        if acc > k {
                            m = r;
                            break;
                        }
                    }
                    let mf = m as f64;
                    let mut sum = 0.0f64;
                    for &(r, c) in h {
                        let d = if r < m {
                            (mf - r as f64) * ROW_HEIGHT
                        } else {
                            (r as f64 - mf) * ROW_HEIGHT
                        };
                        sum += c as f64 * d;
                    }
                    sum
                }
            };
        }
        prepared.push(NetSummary {
            total_pins: cells.len() as u32,
            min_x,
            max_x,
            min_row,
            max_row,
            hist_start,
            hist_end: hist.len() as u32,
            switching_prob: netlist.net(net).switching_prob,
            critical: evaluator.net_is_critical(net),
            min_branch,
        });
    }
}

/// Scores one candidate position against a set of per-net summaries — the
/// shared body of [`TrialScorer::prepared_cost_at`] and
/// [`PreparedCell::cost_at`].
fn summaries_cost_at(
    prepared: &[NetSummary],
    hist_arena: &[(u32, u32)],
    model: WirelengthModel,
    pos: (f64, f64),
) -> CellCost {
    let row = row_of_lattice_y(pos.1);
    let mut cost = CellCost::default();
    for s in prepared {
        if s.total_pins < 2 {
            continue;
        }
        let min_x = s.min_x.min(pos.0);
        let max_x = s.max_x.max(pos.0);
        let min_row = s.min_row.min(row);
        let max_row = s.max_row.max(row);
        let len = match model {
            WirelengthModel::HalfPerimeter => {
                (max_x - min_x) + (max_row - min_row) as f64 * ROW_HEIGHT
            }
            WirelengthModel::SingleTrunkSteiner => {
                let hist = &hist_arena[s.hist_start as usize..s.hist_end as usize];
                let median_row = merged_median_row(hist, row, s.total_pins as usize / 2);
                // All vertical distances are exact multiples of ROW_HEIGHT,
                // so this reduction is exact and matches the oracle's
                // pin-order sum bit for bit. The |r - median| walk is split
                // at the median (hist is row-sorted), which drops the
                // per-entry abs; the split is exact because negating an
                // exact product only flips the sign bit.
                let m = median_row as f64;
                let split = hist.partition_point(|&(r, _)| r < median_row);
                let mut branches = 0.0f64;
                for &(r, c) in &hist[..split] {
                    branches += c as f64 * ((m - r as f64) * ROW_HEIGHT);
                }
                for &(r, c) in &hist[split..] {
                    branches += c as f64 * ((r as f64 - m) * ROW_HEIGHT);
                }
                branches += ((row as f64 - m) * ROW_HEIGHT).abs();
                (max_x - min_x) + branches
            }
        };
        cost.wirelength += len;
        cost.power += len * s.switching_prob;
        if s.critical {
            cost.critical_wirelength += len;
        }
    }
    cost
}

/// Borrowed view over the per-net summaries of one prepared cell (from
/// either a [`TrialScorer`] or a [`PreparedCell`]), exposing the candidate
/// **score lower bound** and the median-position machinery that the
/// allocation operator's pruned trial scan builds on.
///
/// # Bound validity (the §3a pruning invariant)
///
/// For a candidate position `(x, row)` each net's *length* lower bound
/// decomposes into three exact, independently-valid parts:
///
/// * horizontal: `trunk(x) = (max(max_x, x) - min(min_x, x)) =
///   trunk_min + max(0, min_x - x) + max(0, x - max_x)` — the *exact*
///   horizontal span, not an estimate;
/// * vertical floor: the summary's precomputed `min_branch` plus
///   `gap(row) * ROW_HEIGHT` where `gap = max(0, min_row - row,
///   row - max_row)` — a lower bound on the model's vertical term for any
///   trunk row;
/// * every operand is an exact double (half-integer x, `ROW_HEIGHT`
///   multiples vertically), so the per-net length bound `lb_net` is exact
///   and satisfies `lb_net ≤ len_net` as real numbers *and* as doubles.
///
/// The bound methods then fold `lb_net` into a [`CellCost`] with **the same
/// per-net accumulation the full score uses** (`wirelength += lb`,
/// `power += lb * switching_prob`, `critical += lb`, in net order). Since
/// IEEE-754 multiplication by a non-negative factor and round-to-nearest
/// addition are monotone, term-wise domination in identical accumulation
/// order carries through every rounding step:
/// `bound.cmp ≤ cost.cmp` for each component, hence
/// `allocation_score(bound) ≤ allocation_score(cost)` for the full score of
/// the same candidate. A strict `bound > best_so_far` comparison can never
/// prune the true argmin.
///
/// [`PreparedSummaries::exit_bound_at`] additionally lower-bounds *every*
/// candidate at `x' ≥ x` in the same row (per net: the increasing branch of
/// the hinge when `x` already passed `max_x`, the row floor otherwise),
/// which the scan uses for early row exit over sorted-by-x candidates.
/// Beyond the bounds, the view exposes the **row-hoisted exact score**: at a
/// fixed candidate row, each net's vertical (branch) contribution is a
/// constant — only the horizontal trunk depends on the candidate `x`.
/// [`PreparedSummaries::prepare_row`] computes those per-net constants once
/// (bit-identical to the walk the full per-candidate scorer performs)
/// and [`PreparedSummaries::cost_at_in_row`] then scores each candidate of
/// the row in a handful of flops, still bit-identical to the full score.
#[derive(Debug, Clone, Copy)]
pub struct PreparedSummaries<'a> {
    model: WirelengthModel,
    prepared: &'a [NetSummary],
    hist: &'a [(u32, u32)],
    xs: &'a [f64],
}

/// Per-net length lower bound at candidate row `row`, independent of the
/// horizontal position: exact trunk minimum plus the vertical floor.
#[inline]
fn net_floor_len(s: &NetSummary, row: u32) -> f64 {
    let gap = if row < s.min_row {
        s.min_row - row
    } else {
        row.saturating_sub(s.max_row)
    };
    (s.max_x - s.min_x) + s.min_branch + gap as f64 * ROW_HEIGHT
}

/// Folds one net's length bound into `cost` exactly the way
/// [`summaries_cost_at`] folds the net's true length — same operations, same
/// order, so term-wise `lb ≤ len` survives rounding component-wise.
#[inline]
fn fold_net_bound(cost: &mut CellCost, s: &NetSummary, lb: f64) {
    cost.wirelength += lb;
    cost.power += lb * s.switching_prob;
    if s.critical {
        cost.critical_wirelength += lb;
    }
}

impl<'a> PreparedSummaries<'a> {
    /// Every other pin's x coordinate of the prepared cell's nets, one entry
    /// per incidence in canonical (net, pin) order — the exact multiset the
    /// legacy windowed-candidate gather assembled by re-walking the CSR.
    pub fn other_pin_xs(&self) -> &'a [f64] {
        self.xs
    }

    /// Median position `(opt_x, opt_y)` of the other pins, bitwise identical
    /// to sorting the gathered x and y vectors and taking index `len / 2` —
    /// the optimum the windowed allocation strategy centres its window on.
    /// Returns `None` when the cell has no connected pins. `xs_scratch` and
    /// `row_counts` are caller scratch (contents irrelevant; `row_counts`
    /// is left all-zero).
    pub fn median_position(
        &self,
        xs_scratch: &mut Vec<f64>,
        row_counts: &mut Vec<u32>,
    ) -> Option<(f64, f64)> {
        if self.xs.is_empty() {
            return None;
        }
        let k = self.xs.len() / 2;
        xs_scratch.clear();
        xs_scratch.extend_from_slice(self.xs);
        // k-th smallest: the same *value* sort_by + index k selects, and all
        // pin x's are positive finite doubles, so equal values share bits.
        let (_, &mut opt_x, _) = xs_scratch
            .select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("pin x must be finite"));
        // Counting median over the merged per-net row histograms: the row
        // lattice is monotone in the row index, so the first row whose
        // cumulative merged count exceeds k holds sorted_ys[k].
        let (mut min_row, mut max_row) = (u32::MAX, 0u32);
        for s in self.prepared {
            for &(r, c) in &self.hist[s.hist_start as usize..s.hist_end as usize] {
                if r as usize >= row_counts.len() {
                    row_counts.resize(r as usize + 1, 0);
                }
                row_counts[r as usize] += c;
                min_row = min_row.min(r);
                max_row = max_row.max(r);
            }
        }
        let mut acc = 0usize;
        let mut median_row = max_row;
        for r in min_row..=max_row {
            acc += row_counts[r as usize] as usize;
            if acc > k {
                median_row = r;
                break;
            }
        }
        for r in min_row..=max_row {
            row_counts[r as usize] = 0;
        }
        Some((opt_x, (median_row as f64 + 0.5) * ROW_HEIGHT))
    }

    /// Row-dependent, position-independent floor of the score bound: each
    /// scoreable net contributes `trunk_min + min_branch + gap(row) *
    /// ROW_HEIGHT`, folded per net exactly like the full score. Every
    /// candidate in `row` costs at least this much component-wise; compute
    /// it once per row run.
    pub fn bound_floor(&self, row: u32) -> CellCost {
        let mut cost = CellCost::default();
        for s in self.prepared {
            if s.total_pins < 2 || s.min_row == u32::MAX {
                continue;
            }
            fold_net_bound(&mut cost, s, net_floor_len(s, row));
        }
        cost
    }

    /// Score lower bound for a candidate at `(x, row)`: per net the floor
    /// length plus the exact horizontal extension of the trunk, folded like
    /// the full score. Component-wise `≤` the full [`CellCost`] of the same
    /// candidate (see the type-level invariant), so
    /// `allocation_score(bound) ≤ allocation_score(cost)`.
    pub fn bound_at(&self, x: f64, row: u32) -> CellCost {
        let mut cost = CellCost::default();
        for s in self.prepared {
            if s.total_pins < 2 || s.min_row == u32::MAX {
                continue;
            }
            let mut lb = net_floor_len(s, row);
            if x < s.min_x {
                lb += s.min_x - x;
            } else if x > s.max_x {
                lb += x - s.max_x;
            }
            fold_net_bound(&mut cost, s, lb);
        }
        cost
    }

    /// Fills `vertical` with each prepared net's vertical (branch)
    /// contribution to the score of **any** candidate in `row` — one entry
    /// per net, in net order, with unscoreable nets as `0.0`. The walk is
    /// bit-identical to the per-candidate walk of the full score, so
    /// [`PreparedSummaries::cost_at_in_row`] over these constants reproduces
    /// [`TrialScorer::prepared_cost_at`] exactly. Compute once per
    /// contiguous same-row candidate run.
    pub fn prepare_row(&self, row: u32, vertical: &mut Vec<f64>) {
        vertical.clear();
        for s in self.prepared {
            if s.total_pins < 2 {
                vertical.push(0.0);
                continue;
            }
            let v = match self.model {
                WirelengthModel::HalfPerimeter => {
                    let min_row = s.min_row.min(row);
                    let max_row = s.max_row.max(row);
                    (max_row - min_row) as f64 * ROW_HEIGHT
                }
                WirelengthModel::SingleTrunkSteiner => {
                    let hist = &self.hist[s.hist_start as usize..s.hist_end as usize];
                    let median_row = merged_median_row(hist, row, s.total_pins as usize / 2);
                    let m = median_row as f64;
                    let split = hist.partition_point(|&(r, _)| r < median_row);
                    let mut branches = 0.0f64;
                    for &(r, c) in &hist[..split] {
                        branches += c as f64 * ((m - r as f64) * ROW_HEIGHT);
                    }
                    for &(r, c) in &hist[split..] {
                        branches += c as f64 * ((r as f64 - m) * ROW_HEIGHT);
                    }
                    branches += ((row as f64 - m) * ROW_HEIGHT).abs();
                    branches
                }
            };
            vertical.push(v);
        }
    }

    /// Exact score of a candidate at horizontal position `x` in the row
    /// `vertical` was prepared for: per net the exact merged trunk span plus
    /// the hoisted vertical constant, folded like the full score — bitwise
    /// identical to [`TrialScorer::prepared_cost_at`] at the same position,
    /// at a fraction of the cost (no median walk per candidate).
    pub fn cost_at_in_row(&self, x: f64, vertical: &[f64]) -> CellCost {
        debug_assert_eq!(vertical.len(), self.prepared.len());
        let mut cost = CellCost::default();
        for (s, &v) in self.prepared.iter().zip(vertical) {
            if s.total_pins < 2 {
                continue;
            }
            let min_x = s.min_x.min(x);
            let max_x = s.max_x.max(x);
            let len = (max_x - min_x) + v;
            cost.wirelength += len;
            cost.power += len * s.switching_prob;
            if s.critical {
                cost.critical_wirelength += len;
            }
        }
        cost
    }

    /// Maximum other-pin x over the scoreable nets (`-inf` when there is
    /// none). For candidates at `x ≥ max_other_x` every net's trunk is on
    /// its increasing branch, so the exact score is non-decreasing in `x`
    /// (term-wise, hence component-wise through the fold) — the scan uses
    /// this for its monotone tail exit over sorted-by-x runs.
    pub fn max_other_x(&self) -> f64 {
        let mut max_x = f64::NEG_INFINITY;
        for s in self.prepared {
            if s.total_pins < 2 || s.min_row == u32::MAX {
                continue;
            }
            max_x = max_x.max(s.max_x);
        }
        max_x
    }

    /// Score lower bound valid for **every** candidate at `x' ≥ x` in `row`
    /// — the early-row-exit bound for ascending-x candidate runs. Per net:
    /// once `x ≥ max_x` the net's hinge is on its increasing branch, so its
    /// bound at any `x' ≥ x` is at least its bound at `x` (exact reals,
    /// exact doubles); otherwise the row floor applies. Folded in the same
    /// net order as the full score, so the component-wise domination chain
    /// `exit_bound_at(x) ≤ bound_at(x') ≤ cost(x')` survives rounding.
    pub fn exit_bound_at(&self, x: f64, row: u32) -> CellCost {
        let mut cost = CellCost::default();
        for s in self.prepared {
            if s.total_pins < 2 || s.min_row == u32::MAX {
                continue;
            }
            let mut lb = net_floor_len(s, row);
            if x >= s.max_x {
                lb += x - s.max_x;
            }
            fold_net_bound(&mut cost, s, lb);
        }
        cost
    }
}

/// Detached snapshot of the per-net summaries [`TrialScorer::prepare_cell`]
/// builds for one cell, with its own counting scratch — so the prepare
/// passes of *many* cells can run concurrently on different worker threads
/// (one snapshot buffer per cell) and be scored later through
/// [`PreparedCell::cost_at`].
///
/// The snapshot is a pure function of the *other* pins' positions at
/// preparation time: it stays bitwise-valid exactly while none of the
/// prepared cell's net neighbours moves. Staleness tracking is the caller's
/// job (`sime-core`'s allocation wave records insertion steps); a stale
/// snapshot must simply be discarded and the cell re-prepared.
#[derive(Debug, Clone, Default)]
pub struct PreparedCell {
    /// Wirelength model recorded at the last prepare (`None` before any).
    model: Option<WirelengthModel>,
    prepared: Vec<NetSummary>,
    hist: Vec<(u32, u32)>,
    row_counts: Vec<u32>,
    pin_xs: Vec<f64>,
}

impl PreparedCell {
    /// Creates an empty (unprepared) snapshot buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)builds the snapshot for `cell` under `placement`, producing
    /// summaries bit-identical to [`TrialScorer::prepare_cell`] on a scorer
    /// of the same `model`. The buffers are reused across calls.
    pub fn prepare(
        &mut self,
        evaluator: &CostEvaluator,
        placement: &Placement,
        cell: CellId,
        model: WirelengthModel,
    ) {
        self.model = Some(model);
        build_cell_summaries(
            evaluator,
            placement,
            cell,
            model,
            &mut self.row_counts,
            &mut self.prepared,
            &mut self.hist,
            &mut self.pin_xs,
        );
    }

    /// Borrowed view over this snapshot's summaries, exposing the candidate
    /// lower-bound and median-position machinery — bitwise identical to
    /// [`TrialScorer::prepared_summaries`] after an equivalent prepare.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was never prepared.
    pub fn summaries(&self) -> PreparedSummaries<'_> {
        PreparedSummaries {
            model: self
                .model
                .expect("PreparedCell::summaries called before prepare"),
            prepared: &self.prepared,
            hist: &self.hist,
            xs: &self.pin_xs,
        }
    }

    /// Cost of the prepared cell's nets if it sat at `pos` (a row-lattice
    /// position). Bitwise identical to [`TrialScorer::prepared_cost_at`]
    /// after an equivalent prepare.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was never prepared.
    pub fn cost_at(&self, pos: (f64, f64)) -> CellCost {
        let model = self
            .model
            .expect("PreparedCell::cost_at called before prepare");
        summaries_cost_at(&self.prepared, &self.hist, model, pos)
    }
}

/// Incremental per-net length vector for one evolving placement.
///
/// [`NetLengthCache::refresh`] returns the same vector
/// [`CostEvaluator::net_lengths`] would, but after the first (full) refresh
/// of a placement object it re-evaluates only the nets touching rows whose
/// epoch advanced. See the module docs for the exact invalidation invariants.
#[derive(Debug, Clone, Default)]
pub struct NetLengthCache {
    lengths: Vec<f64>,
    /// `uid` of the placement the cache is synchronised with (0 = none).
    placement_uid: u64,
    /// Per-row epochs at the last refresh.
    row_epoch_seen: Vec<u64>,
    /// Per-net visit stamp of the current delta pass (avoids re-evaluating a
    /// net reachable from several dirty rows).
    net_stamp: Vec<u32>,
    stamp: u32,
    /// Reusable dirty-net list for the monolithic [`NetLengthCache::refresh`].
    dirty_scratch: Vec<NetId>,
    full_refreshes: u64,
    delta_refreshes: u64,
    nets_recomputed: u64,
}

impl NetLengthCache {
    /// Creates an empty (unsynchronised) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the association with any placement; the next refresh recomputes
    /// every net.
    pub fn invalidate(&mut self) {
        self.placement_uid = 0;
    }

    /// The cached net lengths from the last [`NetLengthCache::refresh`].
    pub fn lengths(&self) -> &[f64] {
        &self.lengths
    }

    /// Number of full (every-net) refreshes performed.
    pub fn full_refreshes(&self) -> u64 {
        self.full_refreshes
    }

    /// Number of delta refreshes that re-evaluated at least one net.
    pub fn delta_refreshes(&self) -> u64 {
        self.delta_refreshes
    }

    /// Number of individual net re-evaluations performed by delta refreshes.
    pub fn nets_recomputed(&self) -> u64 {
        self.nets_recomputed
    }

    /// Brings the cache in sync with `placement` and returns the per-net
    /// lengths, bitwise identical to [`CostEvaluator::net_lengths`].
    pub fn refresh(
        &mut self,
        evaluator: &CostEvaluator,
        scorer: &mut TrialScorer,
        placement: &Placement,
    ) -> &[f64] {
        let mut dirty = std::mem::take(&mut self.dirty_scratch);
        self.plan_refresh(evaluator, placement, &mut dirty);
        for &net in &dirty {
            let length = scorer.net_length(evaluator, placement, net);
            self.lengths[net.index()] = length;
        }
        self.dirty_scratch = dirty;
        &self.lengths
    }

    /// Phase 1 of a split refresh: advances all cache bookkeeping (row
    /// epochs, net stamps, placement uid, the work counters) and fills
    /// `dirty` with the nets whose lengths must be recomputed — every net on
    /// a full refresh (returns `true`), only the nets touching changed rows
    /// on a delta refresh (`false`). Each net appears at most once.
    ///
    /// The caller *must* complete the plan by computing each listed net's
    /// length against the same placement and handing the results to
    /// [`NetLengthCache::store_length`] / [`NetLengthCache::store_lengths`]
    /// before the next refresh — per-net length is a pure function of the
    /// placement, so the computations may run on any thread in any order and
    /// the completed vector is bitwise identical to a monolithic
    /// [`NetLengthCache::refresh`].
    pub fn plan_refresh(
        &mut self,
        evaluator: &CostEvaluator,
        placement: &Placement,
        dirty: &mut Vec<NetId>,
    ) -> bool {
        dirty.clear();
        let netlist = evaluator.netlist();
        let num_nets = netlist.num_nets();
        let num_rows = placement.num_rows();
        let full = self.placement_uid != placement.uid()
            || self.lengths.len() != num_nets
            || self.row_epoch_seen.len() != num_rows;
        if full {
            self.lengths.clear();
            self.lengths.resize(num_nets, 0.0);
            dirty.extend(netlist.net_ids());
            self.row_epoch_seen.clear();
            self.row_epoch_seen
                .extend((0..num_rows).map(|r| placement.row_epoch(r)));
            self.net_stamp.clear();
            self.net_stamp.resize(num_nets, 0);
            self.stamp = 0;
            self.placement_uid = placement.uid();
            self.full_refreshes += 1;
        } else {
            self.stamp = self.stamp.wrapping_add(1);
            if self.stamp == 0 {
                self.net_stamp.iter_mut().for_each(|s| *s = 0);
                self.stamp = 1;
            }
            for r in 0..num_rows {
                let epoch = placement.row_epoch(r);
                if epoch == self.row_epoch_seen[r] {
                    continue;
                }
                self.row_epoch_seen[r] = epoch;
                for &c in placement.row(r) {
                    for &net in netlist.nets_of_cell(c) {
                        let i = net.index();
                        if self.net_stamp[i] != self.stamp {
                            self.net_stamp[i] = self.stamp;
                            dirty.push(net);
                        }
                    }
                }
            }
            if !dirty.is_empty() {
                self.delta_refreshes += 1;
            }
            self.nets_recomputed += dirty.len() as u64;
        }
        full
    }

    /// Phase 2 of a split refresh: records one computed net length. `net`
    /// must come from the current [`NetLengthCache::plan_refresh`] plan.
    #[inline]
    pub fn store_length(&mut self, net: NetId, length: f64) {
        self.lengths[net.index()] = length;
    }

    /// Phase 2 of a split refresh, batched: records the computed `lengths`
    /// of `nets` (parallel slices, e.g. one chunk of the plan).
    pub fn store_lengths(&mut self, nets: &[NetId], lengths: &[f64]) {
        debug_assert_eq!(nets.len(), lengths.len());
        for (&net, &length) in nets.iter().zip(lengths) {
            self.lengths[net.index()] = length;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Objectives;
    use crate::layout::Slot;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};

    fn setup(model: WirelengthModel) -> (CostEvaluator, Placement) {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("kernel_test", 170, 29)).generate(),
        );
        let eval = CostEvaluator::with_models(
            Arc::clone(&nl),
            Objectives::WirelengthPowerDelay,
            model,
            Default::default(),
            Default::default(),
            Default::default(),
        );
        let placement = Placement::round_robin(&nl, 9);
        (eval, placement)
    }

    #[test]
    fn scorer_matches_oracle_net_lengths_bitwise() {
        for model in [
            WirelengthModel::SingleTrunkSteiner,
            WirelengthModel::HalfPerimeter,
        ] {
            let (eval, placement) = setup(model);
            let mut scorer = TrialScorer::for_evaluator(&eval);
            for net in eval.netlist().net_ids() {
                let naive = eval.net_length(&placement, net);
                let kernel = scorer.net_length(&eval, &placement, net);
                assert_eq!(naive.to_bits(), kernel.to_bits(), "{model:?} net {net}");
            }
        }
    }

    #[test]
    fn prepared_scorer_is_shareable_across_threads() {
        // The intra-rank trial-scoring fan-out scores candidate slots of one
        // prepared cell from several worker threads at once; the prepared
        // state must be readable through `&TrialScorer` (Sync) and produce
        // the serial bits from every thread.
        fn assert_sync<T: Sync>() {}
        assert_sync::<TrialScorer>();

        let (eval, mut placement) = setup(WirelengthModel::SingleTrunkSteiner);
        let cell = eval
            .netlist()
            .cell_ids()
            .max_by_key(|&c| eval.netlist().nets_of_cell(c).len())
            .unwrap();
        placement.remove_cell(cell);
        let mut scorer = TrialScorer::for_evaluator(&eval);
        scorer.prepare_cell(&eval, &placement, cell);
        let positions: Vec<(f64, f64)> = (0..placement.num_rows())
            .map(|row| placement.trial_position(cell, Slot { row, index: 0 }))
            .collect();
        let serial: Vec<CellCost> = positions
            .iter()
            .map(|&p| scorer.prepared_cost_at(p))
            .collect();
        let shared = &scorer;
        let parallel: Vec<CellCost> = std::thread::scope(|scope| {
            positions
                .iter()
                .map(|&p| scope.spawn(move || shared.prepared_cost_at(p)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.wirelength.to_bits(), b.wirelength.to_bits());
            assert_eq!(a.power.to_bits(), b.power.to_bits());
            assert_eq!(
                a.critical_wirelength.to_bits(),
                b.critical_wirelength.to_bits()
            );
        }
    }

    #[test]
    fn scorer_matches_oracle_trial_scores_bitwise() {
        let (eval, mut placement) = setup(WirelengthModel::SingleTrunkSteiner);
        let mut scorer = TrialScorer::for_evaluator(&eval);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let cell = vlsi_netlist::CellId(rng.gen_range(0..eval.netlist().num_cells() as u32));
            let row = rng.gen_range(0..placement.num_rows());
            let index = rng.gen_range(0..placement.row(row).len() + 1);
            placement.remove_cell(cell);
            let pos = placement.trial_position(cell, Slot { row, index });
            let naive = eval.cell_cost_at(&placement, cell, pos);
            let fast = scorer.cell_cost_at(&eval, &placement, cell, pos);
            assert_eq!(naive.wirelength.to_bits(), fast.wirelength.to_bits());
            assert_eq!(naive.power.to_bits(), fast.power.to_bits());
            assert_eq!(
                naive.critical_wirelength.to_bits(),
                fast.critical_wirelength.to_bits()
            );
            placement.insert_cell(cell, Slot { row, index });
        }
    }

    #[test]
    fn prepared_scoring_matches_oracle_bitwise() {
        for model in [
            WirelengthModel::SingleTrunkSteiner,
            WirelengthModel::HalfPerimeter,
        ] {
            let (eval, mut placement) = setup(model);
            let mut scorer = TrialScorer::for_evaluator(&eval);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            for _ in 0..40 {
                let cell =
                    vlsi_netlist::CellId(rng.gen_range(0..eval.netlist().num_cells() as u32));
                placement.remove_cell(cell);
                scorer.prepare_cell(&eval, &placement, cell);
                let back = placement.num_rows() - 1;
                for _ in 0..8 {
                    let row = rng.gen_range(0..placement.num_rows());
                    let index = rng.gen_range(0..placement.row(row).len() + 1);
                    let pos = placement.trial_position(cell, Slot { row, index });
                    let naive = eval.cell_cost_at(&placement, cell, pos);
                    let fast = scorer.prepared_cost_at(pos);
                    assert_eq!(
                        naive.wirelength.to_bits(),
                        fast.wirelength.to_bits(),
                        "{model:?}"
                    );
                    assert_eq!(naive.power.to_bits(), fast.power.to_bits());
                    assert_eq!(
                        naive.critical_wirelength.to_bits(),
                        fast.critical_wirelength.to_bits()
                    );
                }
                placement.insert_cell(
                    cell,
                    Slot {
                        row: back,
                        index: 0,
                    },
                );
            }
        }
    }

    #[test]
    fn prepared_cell_snapshot_matches_scorer_bitwise() {
        // A detached `PreparedCell` snapshot must score candidate positions
        // bit-for-bit like the scorer it mirrors — this is what lets the
        // allocation wave prepare many cells on worker threads and still
        // keep the trajectory bitwise-serial.
        for model in [
            WirelengthModel::SingleTrunkSteiner,
            WirelengthModel::HalfPerimeter,
        ] {
            let (eval, mut placement) = setup(model);
            let mut scorer = TrialScorer::for_evaluator(&eval);
            let mut snapshot = PreparedCell::new();
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            for _ in 0..40 {
                let cell =
                    vlsi_netlist::CellId(rng.gen_range(0..eval.netlist().num_cells() as u32));
                placement.remove_cell(cell);
                scorer.prepare_cell(&eval, &placement, cell);
                snapshot.prepare(&eval, &placement, cell, model);
                for _ in 0..8 {
                    let row = rng.gen_range(0..placement.num_rows());
                    let index = rng.gen_range(0..placement.row(row).len() + 1);
                    let pos = placement.trial_position(cell, Slot { row, index });
                    let own = scorer.prepared_cost_at(pos);
                    let detached = snapshot.cost_at(pos);
                    assert_eq!(
                        own.wirelength.to_bits(),
                        detached.wirelength.to_bits(),
                        "{model:?}"
                    );
                    assert_eq!(own.power.to_bits(), detached.power.to_bits());
                    assert_eq!(
                        own.critical_wirelength.to_bits(),
                        detached.critical_wirelength.to_bits()
                    );
                }
                placement.insert_cell(
                    cell,
                    Slot {
                        row: placement.num_rows() - 1,
                        index: 0,
                    },
                );
            }
        }
    }

    #[test]
    fn cache_delta_refresh_matches_full_recompute() {
        let (eval, mut placement) = setup(WirelengthModel::SingleTrunkSteiner);
        let mut scorer = TrialScorer::for_evaluator(&eval);
        let mut cache = NetLengthCache::new();
        cache.refresh(&eval, &mut scorer, &placement);
        assert_eq!(cache.full_refreshes(), 1);

        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for round in 0..20 {
            let cell = vlsi_netlist::CellId(rng.gen_range(0..eval.netlist().num_cells() as u32));
            let row = rng.gen_range(0..placement.num_rows());
            let index = rng.gen_range(0..placement.row(row).len() + 1);
            placement.move_cell(cell, Slot { row, index });
            let cached = cache.refresh(&eval, &mut scorer, &placement).to_vec();
            let oracle = eval.net_lengths(&placement);
            for (n, (a, b)) in cached.iter().zip(oracle.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "round {round} net {n}");
            }
        }
        assert_eq!(
            cache.full_refreshes(),
            1,
            "mutations must take the delta path"
        );
        assert!(cache.delta_refreshes() > 0);
    }

    #[test]
    fn cache_fully_recomputes_for_clones() {
        let (eval, placement) = setup(WirelengthModel::HalfPerimeter);
        let mut scorer = TrialScorer::for_evaluator(&eval);
        let mut cache = NetLengthCache::new();
        cache.refresh(&eval, &mut scorer, &placement);
        let clone = placement.clone();
        assert_ne!(placement.uid(), clone.uid());
        cache.refresh(&eval, &mut scorer, &clone);
        assert_eq!(cache.full_refreshes(), 2);
    }

    #[test]
    fn unchanged_placement_refreshes_for_free() {
        let (eval, placement) = setup(WirelengthModel::SingleTrunkSteiner);
        let mut scorer = TrialScorer::for_evaluator(&eval);
        let mut cache = NetLengthCache::new();
        cache.refresh(&eval, &mut scorer, &placement);
        let before = cache.nets_recomputed();
        cache.refresh(&eval, &mut scorer, &placement);
        assert_eq!(cache.nets_recomputed(), before);
        assert_eq!(cache.full_refreshes(), 1);
    }

    #[test]
    fn prepared_bound_is_a_true_lower_bound_and_median_matches_sort() {
        // The §3a pruning invariant: for every candidate position,
        // bound_at ≤ the full score's wirelength (no rounding slack), the
        // per-row floor ≤ the bound, and the summary-derived median position
        // is bit-identical to the sort-based gather it replaces.
        for model in [
            WirelengthModel::SingleTrunkSteiner,
            WirelengthModel::HalfPerimeter,
        ] {
            let (eval, mut placement) = setup(model);
            let mut scorer = TrialScorer::for_evaluator(&eval);
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let mut xs_scratch = Vec::new();
            let mut row_counts = Vec::new();
            for _ in 0..40 {
                let cell =
                    vlsi_netlist::CellId(rng.gen_range(0..eval.netlist().num_cells() as u32));
                placement.remove_cell(cell);
                scorer.prepare_cell(&eval, &placement, cell);
                let view = scorer.prepared_summaries();

                let mut gx = Vec::new();
                let mut gy = Vec::new();
                for &net in eval.netlist().nets_of_cell(cell) {
                    for &other in eval.net_cells(net) {
                        if other == cell {
                            continue;
                        }
                        let (x, y) = placement.position(other);
                        gx.push(x);
                        gy.push(y);
                    }
                }
                match view.median_position(&mut xs_scratch, &mut row_counts) {
                    Some((opt_x, opt_y)) => {
                        gx.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        gy.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        assert_eq!(opt_x.to_bits(), gx[gx.len() / 2].to_bits(), "{model:?}");
                        assert_eq!(opt_y.to_bits(), gy[gy.len() / 2].to_bits(), "{model:?}");
                    }
                    None => assert!(gx.is_empty()),
                }

                let le = |a: &CellCost, b: &CellCost| {
                    a.wirelength <= b.wirelength
                        && a.power <= b.power
                        && a.critical_wirelength <= b.critical_wirelength
                };
                for _ in 0..12 {
                    let row = rng.gen_range(0..placement.num_rows());
                    let index = rng.gen_range(0..placement.row(row).len() + 1);
                    let pos = placement.trial_position(cell, Slot { row, index });
                    let floor = view.bound_floor(row as u32);
                    let bound = view.bound_at(pos.0, row as u32);
                    let cost = scorer.prepared_cost_at(pos);
                    assert!(le(&floor, &bound), "{model:?}: floor above bound");
                    assert!(le(&bound, &cost), "{model:?}: bound above cost");
                    // The exit bound must stay below the bound of every
                    // position at x' ≥ x in the same row.
                    let exit = view.exit_bound_at(pos.0, row as u32);
                    assert!(le(&exit, &bound), "{model:?}: exit above own bound");
                    for dx in [0.0, 0.5, 3.0, 1e4] {
                        let later = view.bound_at(pos.0 + dx, row as u32);
                        assert!(le(&exit, &later), "{model:?}: exit above later bound");
                    }
                }
                placement.insert_cell(
                    cell,
                    Slot {
                        row: placement.num_rows() - 1,
                        index: 0,
                    },
                );
            }
        }
    }

    #[test]
    fn row_lattice_roundtrip_is_exact() {
        for row in 0u32..4096 {
            let y = (row as f64 + 0.5) * ROW_HEIGHT;
            assert_eq!(row_of_lattice_y(y), row);
        }
    }
}
