//! Multiobjective cost evaluation (Section 2 of the paper).
//!
//! The evaluator owns everything that is placement independent — the netlist,
//! the extracted critical paths, the lower bounds and the model parameters —
//! and offers evaluation of full placements, of individual nets, and of a
//! cell hypothetically moved to a trial position (the inner loop of the SimE
//! allocation operator).

use crate::bounds::Bounds;
use crate::fuzzy::{FuzzyConfig, FuzzyLevel};
use crate::layout::Placement;
use crate::wirelength::WirelengthModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vlsi_netlist::paths::{extract_paths, Path, PathExtractionConfig};
use vlsi_netlist::{CellId, NetId, Netlist};

/// Which objectives the cost function optimises. The paper evaluates a
/// two-objective (wirelength + power) and a three-objective (+ delay) version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objectives {
    /// Wirelength and power only (the paper's first program version).
    WirelengthPower,
    /// Wirelength, power and delay (the paper's second program version).
    WirelengthPowerDelay,
}

impl Objectives {
    /// `true` if the delay objective is active.
    #[inline]
    pub fn includes_delay(self) -> bool {
        matches!(self, Objectives::WirelengthPowerDelay)
    }

    /// Short label used by reports and the benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            Objectives::WirelengthPower => "wirelength+power",
            Objectives::WirelengthPowerDelay => "wirelength+power+delay",
        }
    }
}

/// Timing model: interconnect delay per unit of estimated net length.
///
/// The paper's path delay is `T_π = Σ (CD_i + ID_i)` where `CD_i` is the
/// (placement-independent) cell switching delay and `ID_i` the interconnect
/// delay of the net, which scales with its wirelength.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Interconnect delay contributed per unit of net length (ns / unit).
    pub unit_interconnect_delay: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            unit_interconnect_delay: 0.01,
        }
    }
}

/// Full cost breakdown of a placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Total estimated wirelength (`Cost_wire`).
    pub wirelength: f64,
    /// Total switching-weighted wirelength (`Cost_power`).
    pub power: f64,
    /// Longest path delay (`Cost_delay`); 0 when delay is not optimised or no
    /// paths were extracted.
    pub delay: f64,
    /// Layout width (maximum row width).
    pub width: f64,
    /// Per-objective fuzzy memberships.
    pub memberships: FuzzyLevel,
    /// Aggregated fuzzy quality `µ(s) ∈ [0, 1]`.
    pub mu: f64,
}

/// Cost of a single cell's incident nets, used for goodness and for scoring
/// allocation trial positions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellCost {
    /// Sum of the estimated lengths of the nets incident to the cell.
    pub wirelength: f64,
    /// Switching-weighted version of `wirelength`.
    pub power: f64,
    /// Portion of `wirelength` on nets that lie on stored critical paths.
    pub critical_wirelength: f64,
}

/// Placement-independent cost evaluator. Cheap to clone (the heavy state is
/// behind `Arc`s), and `Send + Sync`, so parallel strategies can share it.
#[derive(Debug, Clone)]
pub struct CostEvaluator {
    netlist: Arc<Netlist>,
    objectives: Objectives,
    wl_model: WirelengthModel,
    timing: TimingModel,
    fuzzy: FuzzyConfig,
    paths: Arc<Vec<Path>>,
    /// For each net, the indices of the stored paths that contain it.
    net_in_paths: Arc<Vec<Vec<u32>>>,
    /// `net_on_path[n]` is `true` iff net `n` lies on a stored critical path
    /// (flat lookup for the allocation hot loop).
    net_on_path: Arc<Vec<bool>>,
    bounds: Arc<Bounds>,
}

impl CostEvaluator {
    /// Builds an evaluator with default models and path extraction.
    pub fn new(netlist: Arc<Netlist>, objectives: Objectives) -> Self {
        Self::with_models(
            netlist,
            objectives,
            WirelengthModel::default(),
            TimingModel::default(),
            FuzzyConfig::default(),
            PathExtractionConfig::default(),
        )
    }

    /// Builds an evaluator with explicit model parameters.
    pub fn with_models(
        netlist: Arc<Netlist>,
        objectives: Objectives,
        wl_model: WirelengthModel,
        timing: TimingModel,
        fuzzy: FuzzyConfig,
        path_config: PathExtractionConfig,
    ) -> Self {
        let paths = if objectives.includes_delay() {
            extract_paths(&netlist, &path_config)
        } else {
            Vec::new()
        };
        let mut net_in_paths = vec![Vec::new(); netlist.num_nets()];
        for (pi, p) in paths.iter().enumerate() {
            for &n in &p.nets {
                net_in_paths[n.index()].push(pi as u32);
            }
        }
        let bounds = Bounds::compute(&netlist, &paths, &timing);
        let net_on_path: Vec<bool> = net_in_paths.iter().map(|p| !p.is_empty()).collect();
        CostEvaluator {
            netlist,
            objectives,
            wl_model,
            timing,
            fuzzy,
            paths: Arc::new(paths),
            net_in_paths: Arc::new(net_in_paths),
            net_on_path: Arc::new(net_on_path),
            bounds: Arc::new(bounds),
        }
    }

    /// Returns the evaluator with its fuzzy aggregation configuration
    /// replaced; every other component (paths, bounds, models) is shared with
    /// `self`. This is the hook the engine's per-circuit fuzzy calibration
    /// uses — only the membership mapping changes, never the raw costs.
    pub fn with_fuzzy(mut self, fuzzy: FuzzyConfig) -> Self {
        self.fuzzy = fuzzy;
        self
    }

    /// The netlist the evaluator operates on.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// Active objectives.
    pub fn objectives(&self) -> Objectives {
        self.objectives
    }

    /// The fuzzy aggregation configuration.
    pub fn fuzzy(&self) -> &FuzzyConfig {
        &self.fuzzy
    }

    /// The extracted critical paths (empty when delay is not optimised).
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Placement-independent lower bounds.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// The timing model in use.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// The per-net wirelength model in use.
    pub fn wirelength_model(&self) -> WirelengthModel {
        self.wl_model
    }

    /// Estimated length of one net under `placement`.
    ///
    /// This is the *reference* implementation: it allocates a pin buffer per
    /// call and defers to [`WirelengthModel::estimate`]. The allocation-free
    /// hot path lives in [`crate::kernel::TrialScorer`], which is tested to
    /// be bitwise identical to this oracle.
    pub fn net_length(&self, placement: &Placement, net: NetId) -> f64 {
        let cells = self.netlist.net_cells(net);
        if cells.len() < 2 {
            return 0.0;
        }
        let pins: Vec<(f64, f64)> = cells.iter().map(|&c| placement.position(c)).collect();
        self.wl_model.estimate(&pins)
    }

    /// Estimated length of one net with the position of `cell` overridden to
    /// `pos` (the cell does not need to be currently placed in the row it is
    /// being tried in). Reference implementation of allocation trial scoring;
    /// the allocation operator itself runs on
    /// [`crate::kernel::TrialScorer::net_length_with_override`].
    pub fn net_length_with_override(
        &self,
        placement: &Placement,
        net: NetId,
        cell: CellId,
        pos: (f64, f64),
    ) -> f64 {
        let cells = self.netlist.net_cells(net);
        if cells.len() < 2 {
            return 0.0;
        }
        let pins: Vec<(f64, f64)> = cells
            .iter()
            .map(|&c| {
                if c == cell {
                    pos
                } else {
                    placement.position(c)
                }
            })
            .collect();
        self.wl_model.estimate(&pins)
    }

    /// Lengths of every net under `placement` (indexed by net id).
    pub fn net_lengths(&self, placement: &Placement) -> Vec<f64> {
        self.netlist
            .net_ids()
            .map(|n| self.net_length(placement, n))
            .collect()
    }

    /// Total wirelength cost.
    pub fn wirelength(&self, placement: &Placement) -> f64 {
        self.net_lengths(placement).iter().sum()
    }

    /// Total power cost given precomputed net lengths.
    pub fn power_from_lengths(&self, net_lengths: &[f64]) -> f64 {
        self.netlist
            .nets()
            .iter()
            .zip(net_lengths.iter())
            .map(|(n, &l)| l * n.switching_prob)
            .sum()
    }

    /// Delay of one stored path given precomputed net lengths.
    pub fn path_delay_from_lengths(&self, path: &Path, net_lengths: &[f64]) -> f64 {
        let cell_delay: f64 = path
            .cells
            .iter()
            .take(path.cells.len().saturating_sub(1))
            .map(|&c| self.netlist.cell(c).switching_delay)
            .sum();
        let wire_delay: f64 = path
            .nets
            .iter()
            .map(|&n| net_lengths[n.index()] * self.timing.unit_interconnect_delay)
            .sum();
        cell_delay + wire_delay
    }

    /// Maximum path delay (`Cost_delay`) given precomputed net lengths.
    pub fn delay_from_lengths(&self, net_lengths: &[f64]) -> f64 {
        self.paths
            .iter()
            .map(|p| self.path_delay_from_lengths(p, net_lengths))
            .fold(0.0, f64::max)
    }

    /// Full evaluation of a placement.
    pub fn evaluate(&self, placement: &Placement) -> CostBreakdown {
        let net_lengths = self.net_lengths(placement);
        self.evaluate_from_lengths(placement, &net_lengths)
    }

    /// Full evaluation reusing already-computed net lengths.
    pub fn evaluate_from_lengths(
        &self,
        placement: &Placement,
        net_lengths: &[f64],
    ) -> CostBreakdown {
        let wirelength: f64 = net_lengths.iter().sum();
        let power = self.power_from_lengths(net_lengths);
        let delay = if self.objectives.includes_delay() {
            self.delay_from_lengths(net_lengths)
        } else {
            0.0
        };
        let width = placement.width() as f64;

        let memberships = FuzzyLevel {
            wirelength: FuzzyConfig::membership(
                wirelength,
                self.bounds.wirelength_lower,
                self.fuzzy.goal_wirelength,
            ),
            power: FuzzyConfig::membership(power, self.bounds.power_lower, self.fuzzy.goal_power),
            delay: if self.objectives.includes_delay() && self.bounds.delay_lower > 0.0 {
                FuzzyConfig::membership(delay, self.bounds.delay_lower, self.fuzzy.goal_delay)
            } else {
                1.0
            },
            width: self
                .fuzzy
                .width_membership(width, placement.avg_row_width()),
        };
        let mu = self
            .fuzzy
            .mu(&memberships, self.objectives.includes_delay());

        CostBreakdown {
            wirelength,
            power,
            delay,
            width,
            memberships,
            mu,
        }
    }

    /// Aggregated fuzzy quality of a placement.
    pub fn mu(&self, placement: &Placement) -> f64 {
        self.evaluate(placement).mu
    }

    /// Cost of the nets incident to `cell` at its current position.
    pub fn cell_cost(&self, placement: &Placement, cell: CellId) -> CellCost {
        self.cell_cost_at(placement, cell, placement.position(cell))
    }

    /// Cost of the nets incident to `cell` if it sat at `pos` instead of its
    /// current position. Only the nets touching the cell are evaluated, which
    /// is what makes allocation trial scoring affordable.
    pub fn cell_cost_at(&self, placement: &Placement, cell: CellId, pos: (f64, f64)) -> CellCost {
        let mut cost = CellCost::default();
        for &net in self.netlist.nets_of_cell(cell) {
            let len = self.net_length_with_override(placement, net, cell, pos);
            cost.wirelength += len;
            cost.power += len * self.netlist.net(net).switching_prob;
            if self.net_on_path[net.index()] {
                cost.critical_wirelength += len;
            }
        }
        cost
    }

    /// Scalar score used to rank allocation trial positions: lower is better.
    /// Wirelength and power always contribute; nets on critical paths get an
    /// extra weight when delay is optimised.
    pub fn allocation_score(&self, cost: &CellCost) -> f64 {
        let mut score = cost.wirelength + cost.power;
        if self.objectives.includes_delay() {
            score += cost.critical_wirelength;
        }
        score
    }

    /// Indices (into [`CostEvaluator::paths`]) of the stored paths containing
    /// `net`.
    pub fn paths_through_net(&self, net: NetId) -> &[u32] {
        &self.net_in_paths[net.index()]
    }

    /// `true` iff `net` lies on at least one stored critical path.
    #[inline]
    pub fn net_is_critical(&self, net: NetId) -> bool {
        self.net_on_path[net.index()]
    }

    /// Deduplicated cells connected to `net` (delegates to the netlist's CSR
    /// adjacency arena; this is the canonical pin order of every kernel).
    #[inline]
    pub fn net_cells(&self, net: NetId) -> &[CellId] {
        self.netlist.net_cells(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};

    fn evaluator(objectives: Objectives) -> (CostEvaluator, Placement) {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("cost_test", 180, 21)).generate(),
        );
        let eval = CostEvaluator::new(Arc::clone(&nl), objectives);
        let placement = Placement::round_robin(&nl, 8);
        (eval, placement)
    }

    #[test]
    fn wirelength_is_sum_of_net_lengths() {
        let (eval, placement) = evaluator(Objectives::WirelengthPower);
        let lengths = eval.net_lengths(&placement);
        let total: f64 = lengths.iter().sum();
        assert!((eval.wirelength(&placement) - total).abs() < 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn power_is_switching_weighted_and_below_wirelength() {
        let (eval, placement) = evaluator(Objectives::WirelengthPower);
        let lengths = eval.net_lengths(&placement);
        let power = eval.power_from_lengths(&lengths);
        let wl: f64 = lengths.iter().sum();
        assert!(power > 0.0);
        assert!(power < wl, "switching probabilities are < 1");
    }

    #[test]
    fn delay_only_when_requested() {
        let (eval2, placement) = evaluator(Objectives::WirelengthPower);
        let b2 = eval2.evaluate(&placement);
        assert_eq!(b2.delay, 0.0);
        assert!(eval2.paths().is_empty());

        let (eval3, placement3) = evaluator(Objectives::WirelengthPowerDelay);
        let b3 = eval3.evaluate(&placement3);
        assert!(!eval3.paths().is_empty());
        assert!(b3.delay > 0.0);
    }

    #[test]
    fn costs_are_above_lower_bounds() {
        let (eval, placement) = evaluator(Objectives::WirelengthPowerDelay);
        let b = eval.evaluate(&placement);
        let bounds = eval.bounds();
        assert!(b.wirelength >= bounds.wirelength_lower);
        assert!(b.power >= bounds.power_lower);
        assert!(b.delay >= bounds.delay_lower);
    }

    #[test]
    fn mu_is_in_unit_interval_and_memberships_consistent() {
        let (eval, placement) = evaluator(Objectives::WirelengthPowerDelay);
        let b = eval.evaluate(&placement);
        assert!((0.0..=1.0).contains(&b.mu));
        for m in [
            b.memberships.wirelength,
            b.memberships.power,
            b.memberships.delay,
            b.memberships.width,
        ] {
            assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn net_length_with_override_matches_actual_move() {
        let (eval, mut placement) = evaluator(Objectives::WirelengthPower);
        let nl = Arc::clone(eval.netlist());
        // pick a net with at least 2 distinct cells and move its driver
        let net = nl
            .net_ids()
            .find(|&n| eval.net_cells(n).len() >= 2)
            .unwrap();
        let cell = nl.net(net).driver;
        let target = crate::layout::Slot { row: 0, index: 0 };
        placement.remove_cell(cell);
        let trial_pos = placement.trial_position(cell, target);
        let predicted = eval.net_length_with_override(&placement, net, cell, trial_pos);
        placement.insert_cell(cell, target);
        let actual = eval.net_length(&placement, net);
        assert!(
            (predicted - actual).abs() < 1e-9,
            "predicted {predicted} vs actual {actual}"
        );
    }

    #[test]
    fn cell_cost_sums_incident_nets() {
        let (eval, placement) = evaluator(Objectives::WirelengthPowerDelay);
        let nl = Arc::clone(eval.netlist());
        let cell = nl
            .cell_ids()
            .find(|&c| nl.nets_of_cell(c).len() > 1)
            .unwrap();
        let cost = eval.cell_cost(&placement, cell);
        let expected: f64 = nl
            .nets_of_cell(cell)
            .iter()
            .map(|&n| eval.net_length(&placement, n))
            .sum();
        assert!((cost.wirelength - expected).abs() < 1e-9);
        assert!(cost.power <= cost.wirelength + 1e-9);
        assert!(cost.critical_wirelength <= cost.wirelength + 1e-9);
    }

    #[test]
    fn allocation_score_adds_critical_weight_only_with_delay() {
        let cost = CellCost {
            wirelength: 10.0,
            power: 2.0,
            critical_wirelength: 4.0,
        };
        let (eval2, _) = evaluator(Objectives::WirelengthPower);
        let (eval3, _) = evaluator(Objectives::WirelengthPowerDelay);
        assert!((eval2.allocation_score(&cost) - 12.0).abs() < 1e-12);
        assert!((eval3.allocation_score(&cost) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn better_placements_get_higher_mu() {
        // A clustered placement (connected cells adjacent) must have a mu at
        // least as high as a deliberately scrambled one, on average.
        let (eval, placement) = evaluator(Objectives::WirelengthPower);
        let nl = Arc::clone(eval.netlist());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let random = Placement::random(&nl, 8, &mut rng);
        let a = eval.evaluate(&placement);
        let b = eval.evaluate(&random);
        // Not a strict ordering claim — just that evaluation distinguishes
        // placements and produces finite, comparable numbers.
        assert!(a.wirelength.is_finite() && b.wirelength.is_finite());
        assert_ne!(a.wirelength, b.wirelength);
    }

    #[test]
    fn evaluator_is_cheap_to_clone_and_share() {
        let (eval, placement) = evaluator(Objectives::WirelengthPower);
        let clone = eval.clone();
        assert_eq!(
            eval.evaluate(&placement).wirelength,
            clone.evaluate(&placement).wirelength
        );
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CostEvaluator>();
    }
}
