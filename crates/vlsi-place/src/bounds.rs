//! Lower-bound (optimal-cost) estimates.
//!
//! SimE's goodness measure `gᵢ = Oᵢ / Cᵢ` compares the actual cost of each
//! element with an estimate of its *optimal* cost (Section 3 of the paper),
//! and the fuzzy memberships compare each aggregate objective with a lower
//! bound. Both sets of bounds are placement independent, so they are computed
//! once per netlist and shared by every evaluation.
//!
//! The per-net bound is the length the net would have if all its cells were
//! packed side by side in a single row: roughly half the sum of the connected
//! cell widths (the distance between the centres of the leftmost and
//! rightmost cells of the packed group). This is the estimator used in the
//! Sait & Khan implementation lineage; it is cheap, never above the true
//! optimum by construction of the row model, and tight enough to give
//! informative goodness values.

use crate::cost::TimingModel;
use vlsi_netlist::paths::Path;
use vlsi_netlist::{NetId, Netlist};

/// Placement-independent lower bounds for a netlist.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Per-net wirelength lower bound.
    pub net_lower: Vec<f64>,
    /// Sum of all per-net bounds — lower bound of the wirelength objective.
    pub wirelength_lower: f64,
    /// Switching-weighted sum — lower bound of the power objective.
    pub power_lower: f64,
    /// Per-path delay lower bounds (same order as the path list used by the
    /// cost evaluator).
    pub path_lower: Vec<f64>,
    /// Maximum per-path bound — lower bound of the delay objective.
    pub delay_lower: f64,
    /// Per-cell wirelength lower bound: sum of the bounds of the nets
    /// touching the cell.
    pub cell_wire_lower: Vec<f64>,
    /// Per-cell power lower bound: switching-weighted version of the above.
    pub cell_power_lower: Vec<f64>,
}

impl Bounds {
    /// Computes all bounds for `netlist`, using `paths` as the critical-path
    /// set and `timing` for interconnect delay per unit length.
    pub fn compute(netlist: &Netlist, paths: &[Path], timing: &TimingModel) -> Self {
        let net_lower: Vec<f64> = netlist
            .net_ids()
            .map(|n| net_lower_bound(netlist, n))
            .collect();

        let wirelength_lower: f64 = net_lower.iter().sum();
        let power_lower: f64 = netlist
            .net_ids()
            .map(|n| net_lower[n.index()] * netlist.net(n).switching_prob)
            .sum();

        let path_lower: Vec<f64> = paths
            .iter()
            .map(|p| {
                let cell_delay: f64 = p
                    .cells
                    .iter()
                    .take(p.cells.len().saturating_sub(1))
                    .map(|&c| netlist.cell(c).switching_delay)
                    .sum();
                let wire_delay: f64 = p
                    .nets
                    .iter()
                    .map(|&n| net_lower[n.index()] * timing.unit_interconnect_delay)
                    .sum();
                cell_delay + wire_delay
            })
            .collect();
        let delay_lower = path_lower.iter().copied().fold(0.0, f64::max);

        let mut cell_wire_lower = vec![0.0; netlist.num_cells()];
        let mut cell_power_lower = vec![0.0; netlist.num_cells()];
        for cell in netlist.cell_ids() {
            let mut wl = 0.0;
            let mut pw = 0.0;
            for &net in netlist.nets_of_cell(cell) {
                wl += net_lower[net.index()];
                pw += net_lower[net.index()] * netlist.net(net).switching_prob;
            }
            cell_wire_lower[cell.index()] = wl;
            cell_power_lower[cell.index()] = pw;
        }

        Bounds {
            net_lower,
            wirelength_lower,
            power_lower,
            path_lower,
            delay_lower,
            cell_wire_lower,
            cell_power_lower,
        }
    }
}

/// Lower bound on the length of a single net: half the sum of the widths of
/// the distinct cells it connects (their centre-to-centre span when packed
/// contiguously in one row).
pub fn net_lower_bound(netlist: &Netlist, net: NetId) -> f64 {
    let n = netlist.net(net);
    let mut cells: Vec<_> = n.connected_cells().collect();
    cells.sort_unstable();
    cells.dedup();
    if cells.len() < 2 {
        return 0.0;
    }
    let total_width: u64 = cells.iter().map(|&c| netlist.cell(c).width as u64).sum();
    total_width as f64 / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TimingModel;
    use crate::layout::Placement;
    use crate::wirelength::WirelengthModel;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_netlist::paths::{extract_paths, PathExtractionConfig};
    use vlsi_netlist::{Cell, CellKind, Net, NetlistBuilder};

    fn netlist() -> Netlist {
        CircuitGenerator::new(GeneratorConfig::sized("bounds_test", 150, 9)).generate()
    }

    #[test]
    fn net_bound_is_half_the_total_width() {
        let mut b = NetlistBuilder::new("t");
        let a = b.add_cell(Cell::new("a", CellKind::Input, 4, 0.0));
        let c = b.add_cell(Cell::logic("c", 6));
        let d = b.add_cell(Cell::new("d", CellKind::Output, 2, 0.0));
        b.add_net(Net::new("n", a, vec![c, d], 0.5));
        let nl = b.build().unwrap();
        assert_eq!(net_lower_bound(&nl, NetId(0)), 6.0);
    }

    #[test]
    fn aggregate_bounds_are_sums_of_net_bounds() {
        let nl = netlist();
        let paths = extract_paths(&nl, &PathExtractionConfig::default());
        let bounds = Bounds::compute(&nl, &paths, &TimingModel::default());
        let sum: f64 = bounds.net_lower.iter().sum();
        assert!((bounds.wirelength_lower - sum).abs() < 1e-9);
        assert!(bounds.power_lower <= bounds.wirelength_lower);
        assert!(bounds.power_lower > 0.0);
    }

    #[test]
    fn wirelength_bound_is_below_any_actual_placement() {
        let nl = netlist();
        let paths = extract_paths(&nl, &PathExtractionConfig::default());
        let bounds = Bounds::compute(&nl, &paths, &TimingModel::default());
        let placement = Placement::round_robin(&nl, 8);
        let model = WirelengthModel::SingleTrunkSteiner;
        let actual: f64 = nl
            .net_ids()
            .map(|n| {
                let pins: Vec<_> = {
                    let mut cells: Vec<_> = nl.net(n).connected_cells().collect();
                    cells.sort_unstable();
                    cells.dedup();
                    cells.iter().map(|&c| placement.position(c)).collect()
                };
                model.estimate(&pins)
            })
            .sum();
        // The bound assumes perfect packing of every net independently, so it
        // must not exceed the cost of a real (legal, shared-row) placement by
        // construction it is a lower bound for nets placed in a single row;
        // with multiple rows actual lengths only grow.
        assert!(
            bounds.wirelength_lower <= actual,
            "bound {} must be <= actual {}",
            bounds.wirelength_lower,
            actual
        );
    }

    #[test]
    fn path_bounds_include_cell_delays() {
        let nl = netlist();
        let paths = extract_paths(&nl, &PathExtractionConfig::default());
        if paths.is_empty() {
            return;
        }
        let timing = TimingModel::default();
        let bounds = Bounds::compute(&nl, &paths, &timing);
        for (p, &lb) in paths.iter().zip(bounds.path_lower.iter()) {
            let min_cell_delay: f64 = p
                .cells
                .iter()
                .take(p.cells.len() - 1)
                .map(|&c| nl.cell(c).switching_delay)
                .sum();
            assert!(lb >= min_cell_delay - 1e-12);
        }
        assert!(bounds.delay_lower >= 0.0);
        assert_eq!(bounds.path_lower.len(), paths.len());
    }

    #[test]
    fn per_cell_bounds_cover_all_incident_nets() {
        let nl = netlist();
        let paths = extract_paths(&nl, &PathExtractionConfig::default());
        let bounds = Bounds::compute(&nl, &paths, &TimingModel::default());
        for cell in nl.cell_ids() {
            let expected: f64 = nl
                .nets_of_cell(cell)
                .iter()
                .map(|&n| bounds.net_lower[n.index()])
                .sum();
            assert!((bounds.cell_wire_lower[cell.index()] - expected).abs() < 1e-9);
            assert!(bounds.cell_power_lower[cell.index()] <= expected + 1e-9);
        }
    }

    #[test]
    fn single_pin_nets_have_zero_bound() {
        let mut b = NetlistBuilder::new("self");
        let a = b.add_cell(Cell::logic("a", 4));
        // a net whose only "sink" is its own driver (degenerate but legal)
        b.add_net(Net::new("n", a, vec![a], 0.5));
        let nl = b.build().unwrap();
        assert_eq!(net_lower_bound(&nl, NetId(0)), 0.0);
    }
}
