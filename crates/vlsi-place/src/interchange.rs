//! Converters between [`Placement`] and the Bookshelf `.pl`/`.scl` layout
//! files of [`vlsi_netlist::bookshelf`].
//!
//! The netlist crate owns the file formats (it has no placement dependency),
//! so the entries it parses are plain data; this module gives them meaning:
//!
//! * [`placement_to_pl`] — one [`PlEntry`] per cell, left edge / row bottom
//!   as exact integers.
//! * [`placement_from_pl`] — rebuilds a [`Placement`] from parsed entries.
//!   Movable cells are grouped by row and repacked in x order; **fixed**
//!   cells are *validated*, not trusted: their positions are always the
//!   deterministic function of the netlist (see [`crate::layout`]), and a
//!   `.pl` that disagrees is rejected. This keeps every placement of a
//!   circuit — freshly constructed, warm-started, or merged by the Type II
//!   decomposition — in agreement about where pads and macros sit.
//! * [`rows_to_scl`] — the row geometry as `.scl` [`CoreRow`] records.
//!
//! Because the writer emits integers and the reader repacks rows with the
//! same prefix-sum/blocked-span walk the placement itself uses, a whole
//! layout round-trips **byte-identically**: `write(parse(write(p))) ==
//! write(p)` for all four files, and the rebuilt placement reproduces every
//! cached coordinate bit for bit.

use crate::layout::{Placement, ROW_HEIGHT};
use std::collections::HashMap;
use vlsi_netlist::bookshelf::{CoreRow, PlEntry};
use vlsi_netlist::{CellId, Netlist};

/// Errors produced by [`placement_from_pl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlConvertError {
    /// A `.pl` entry names a cell the netlist does not contain.
    UnknownCell(String),
    /// A cell appears more than once in the `.pl`.
    DuplicateEntry(String),
    /// A netlist cell has no `.pl` entry.
    MissingCell(String),
    /// The `/FIXED` attribute disagrees with the netlist's fixed flag.
    FixedFlagMismatch(String),
    /// A fixed cell's recorded position disagrees with the deterministic
    /// fixed layout derived from the netlist.
    FixedPositionMismatch {
        /// Cell name.
        name: String,
        /// Position the fixed layout derives, `(x, y)` in layout units.
        expected: (i64, i64),
        /// Position the `.pl` records.
        got: (i64, i64),
    },
    /// A movable cell's y coordinate is not the bottom of a valid row.
    BadRow {
        /// Cell name.
        name: String,
        /// The offending y coordinate.
        y: i64,
    },
}

impl std::fmt::Display for PlConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlConvertError::UnknownCell(n) => write!(f, ".pl names unknown cell `{n}`"),
            PlConvertError::DuplicateEntry(n) => write!(f, ".pl places cell `{n}` twice"),
            PlConvertError::MissingCell(n) => write!(f, ".pl is missing cell `{n}`"),
            PlConvertError::FixedFlagMismatch(n) => {
                write!(
                    f,
                    ".pl /FIXED attribute of `{n}` disagrees with the netlist"
                )
            }
            PlConvertError::FixedPositionMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "fixed cell `{name}` must sit at {expected:?} per the netlist's \
                 deterministic fixed layout, .pl records {got:?}"
            ),
            PlConvertError::BadRow { name, y } => {
                write!(f, "cell `{name}` y = {y} is not the bottom of a valid row")
            }
        }
    }
}

impl std::error::Error for PlConvertError {}

/// Integer left edge / row bottom of `cell` — the coordinates a `.pl` line
/// records. Exact: widths are integers and rows pack on integer edges.
fn pl_coordinates(netlist: &Netlist, placement: &Placement, cell: CellId) -> (i64, i64) {
    let w = netlist.cell(cell).width as f64;
    let x = placement.x_of(cell) - w / 2.0;
    (
        x as i64,
        (placement.row_of(cell) as i64) * ROW_HEIGHT as i64,
    )
}

/// Serialises a placement as `.pl` entries, one per cell in id order.
pub fn placement_to_pl(netlist: &Netlist, placement: &Placement) -> Vec<PlEntry> {
    netlist
        .cell_ids()
        .map(|id| {
            let (x, y) = pl_coordinates(netlist, placement, id);
            PlEntry {
                name: netlist.cell(id).name.clone(),
                x,
                y,
                fixed: netlist.cell(id).fixed,
            }
        })
        .collect()
}

/// Rebuilds a [`Placement`] from `.pl` entries.
///
/// Movable cells are grouped into rows by `y` and ordered by `x` (ties by
/// cell id); each row is then repacked by the placement's own blocked-span
/// walk, so entries written by [`placement_to_pl`] reproduce the original
/// coordinates bit for bit. Fixed cells are validated against the netlist's
/// deterministic fixed layout and rejected on any disagreement.
pub fn placement_from_pl(
    netlist: &Netlist,
    num_rows: usize,
    entries: &[PlEntry],
) -> Result<Placement, PlConvertError> {
    let row_h = ROW_HEIGHT as i64;
    let by_name: HashMap<&str, CellId> = netlist
        .cells()
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), CellId::from(i)))
        .collect();

    let mut seen = vec![false; netlist.num_cells()];
    let mut rows: Vec<Vec<(i64, CellId)>> = vec![Vec::new(); num_rows];
    let mut fixed_entries: Vec<(CellId, i64, i64)> = Vec::new();
    for e in entries {
        let id = *by_name
            .get(e.name.as_str())
            .ok_or_else(|| PlConvertError::UnknownCell(e.name.clone()))?;
        if std::mem::replace(&mut seen[id.index()], true) {
            return Err(PlConvertError::DuplicateEntry(e.name.clone()));
        }
        let cell = netlist.cell(id);
        if cell.fixed != e.fixed {
            return Err(PlConvertError::FixedFlagMismatch(e.name.clone()));
        }
        if cell.fixed {
            fixed_entries.push((id, e.x, e.y));
            continue;
        }
        let row = e.y / row_h;
        if e.y % row_h != 0 || !(0..num_rows as i64).contains(&row) {
            return Err(PlConvertError::BadRow {
                name: e.name.clone(),
                y: e.y,
            });
        }
        rows[row as usize].push((e.x, id));
    }
    if let Some(i) = seen.iter().position(|&s| !s) {
        return Err(PlConvertError::MissingCell(
            netlist.cell(CellId::from(i)).name.clone(),
        ));
    }

    let rows: Vec<Vec<CellId>> = rows
        .into_iter()
        .map(|mut row| {
            row.sort_by_key(|&(x, id)| (x, id));
            row.into_iter().map(|(_, id)| id).collect()
        })
        .collect();
    let placement = Placement::from_rows(netlist, rows);

    // Fixed positions are derived, never loaded: the file must agree.
    for (id, x, y) in fixed_entries {
        let expected = pl_coordinates(netlist, &placement, id);
        if expected != (x, y) {
            return Err(PlConvertError::FixedPositionMismatch {
                name: netlist.cell(id).name.clone(),
                expected,
                got: (x, y),
            });
        }
    }
    Ok(placement)
}

/// Serialises the row geometry of a placement as `.scl` records: one
/// [`CoreRow`] per row, 1-unit sites, `NumSites` covering both the packed
/// extent and any blocked span that reaches past it.
pub fn rows_to_scl(placement: &Placement) -> Vec<CoreRow> {
    (0..placement.num_rows())
        .map(|r| {
            let blocked_end = placement.blocked_spans(r).last().map_or(0.0, |&(_, hi)| hi);
            CoreRow {
                coordinate: (r as i64) * ROW_HEIGHT as i64,
                height: ROW_HEIGHT as i64,
                sitewidth: 1,
                subrow_origin: 0,
                num_sites: placement.row_extent(r).max(blocked_end) as i64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::bench_suite::{mixed_circuit, MixedCircuit};
    use vlsi_netlist::bookshelf::{
        parse_bookshelf, parse_pl, parse_scl, write_bookshelf, write_pl, write_scl,
    };

    fn layout() -> (Netlist, Placement, usize) {
        let nl = mixed_circuit(MixedCircuit::Mix600);
        let rows = MixedCircuit::Mix600.num_rows();
        let p = Placement::round_robin(&nl, rows);
        (nl, p, rows)
    }

    #[test]
    fn placement_roundtrips_through_pl_bit_for_bit() {
        let (nl, p, rows) = layout();
        let entries = placement_to_pl(&nl, &p);
        let q = placement_from_pl(&nl, rows, &entries).unwrap();
        q.validate(&nl).unwrap();
        for c in nl.cell_ids() {
            assert_eq!(p.position(c).0.to_bits(), q.position(c).0.to_bits());
            assert_eq!(p.position(c).1.to_bits(), q.position(c).1.to_bits());
        }
    }

    #[test]
    fn whole_layout_roundtrips_byte_identically() {
        // The acceptance gate of the mixed-size PR: a layout dumped through
        // all four Bookshelf files and reloaded writes back the exact same
        // bytes for each of them.
        let (nl, p, rows) = layout();
        let pair = write_bookshelf(&nl);
        let pl = write_pl(&placement_to_pl(&nl, &p));
        let scl = write_scl(&rows_to_scl(&p));

        let nl2 = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        let geometry = parse_scl(&scl).unwrap();
        assert_eq!(geometry.len(), rows);
        let p2 = placement_from_pl(&nl2, geometry.len(), &parse_pl(&pl).unwrap()).unwrap();

        assert_eq!(write_bookshelf(&nl2), pair);
        assert_eq!(write_pl(&placement_to_pl(&nl2, &p2)), pl);
        assert_eq!(write_scl(&rows_to_scl(&p2)), scl);
    }

    #[test]
    fn fixed_positions_are_validated_not_loaded() {
        let (nl, p, rows) = layout();
        let mut entries = placement_to_pl(&nl, &p);
        let victim = entries
            .iter_mut()
            .find(|e| e.fixed)
            .expect("mixed circuit has fixed cells");
        victim.x += 1;
        let err = placement_from_pl(&nl, rows, &entries).unwrap_err();
        assert!(
            matches!(err, PlConvertError::FixedPositionMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn pl_errors_cover_missing_unknown_and_flags() {
        let (nl, p, rows) = layout();
        let entries = placement_to_pl(&nl, &p);

        let mut missing = entries.clone();
        missing.pop();
        assert!(matches!(
            placement_from_pl(&nl, rows, &missing).unwrap_err(),
            PlConvertError::MissingCell(_)
        ));

        let mut unknown = entries.clone();
        unknown[0].name = "ghost".into();
        assert!(matches!(
            placement_from_pl(&nl, rows, &unknown).unwrap_err(),
            PlConvertError::UnknownCell(_)
        ));

        let mut dup = entries.clone();
        let copy = dup[5].clone();
        *dup.last_mut().unwrap() = copy;
        assert!(matches!(
            placement_from_pl(&nl, rows, &dup).unwrap_err(),
            PlConvertError::DuplicateEntry(_)
        ));

        let mut flag = entries.clone();
        let movable = flag.iter_mut().find(|e| !e.fixed).unwrap();
        movable.fixed = true;
        assert!(matches!(
            placement_from_pl(&nl, rows, &flag).unwrap_err(),
            PlConvertError::FixedFlagMismatch(_)
        ));

        let mut bad_row = entries;
        let movable = bad_row.iter_mut().find(|e| !e.fixed).unwrap();
        movable.y = 7;
        assert!(matches!(
            placement_from_pl(&nl, rows, &bad_row).unwrap_err(),
            PlConvertError::BadRow { .. }
        ));
    }

    #[test]
    fn scl_records_cover_blocked_spans() {
        let (_, p, rows) = layout();
        let scl = rows_to_scl(&p);
        assert_eq!(scl.len(), rows);
        for (r, rec) in scl.iter().enumerate() {
            assert_eq!(rec.coordinate, (r as i64) * ROW_HEIGHT as i64);
            assert_eq!(rec.height, ROW_HEIGHT as i64);
            assert!(rec.num_sites as f64 >= p.row_extent(r));
            for &(_, hi) in p.blocked_spans(r) {
                assert!(rec.num_sites as f64 >= hi);
            }
        }
    }
}
