//! # vlsi-place
//!
//! Row-based standard-cell placement model and the multiobjective cost
//! functions of the paper (Section 2):
//!
//! * [`Placement`] — a legal row-based placement of a
//!   [`Netlist`](vlsi_netlist::Netlist): every cell sits in exactly one row,
//!   cells within a row are packed left-to-right without overlap,
//! * [`wirelength`] — interconnect length estimation per net (single-trunk
//!   Steiner approximation, with half-perimeter as a cheaper alternative),
//! * [`CostEvaluator`] — wirelength, power, delay and width costs, with
//!   incremental per-net/per-path updates used heavily by the SimE allocation
//!   operator,
//! * [`kernel`] — the allocation-free hot path: [`TrialScorer`] (scratch-space
//!   trial scoring with a counting median instead of a sort) and
//!   [`NetLengthCache`] (dirty-net delta re-evaluation across iterations),
//!   both bitwise identical to the [`cost`] oracle,
//! * [`fuzzy`] — the fuzzy membership functions and aggregation that fold the
//!   three objectives into the scalar quality measure `µ(s) ∈ [0, 1]`,
//! * [`goodness`] — the per-cell multiobjective goodness `gᵢ = Oᵢ/Cᵢ` that
//!   drives SimE selection.
//!
//! The cost definitions follow Section 2 of the paper and its reference \[9\]
//! (Sait & Khan, *Engineering Applications of AI*, 2003): wirelength is the
//! sum of per-net Steiner estimates, power is switching-probability-weighted
//! wirelength, delay is the maximum path delay over a set of extracted
//! critical paths, and layout width is constrained to `(1 + α) · w_avg`.

#![warn(missing_docs)]

pub mod bounds;
pub mod cost;
pub mod fuzzy;
pub mod goodness;
pub mod interchange;
pub mod kernel;
pub mod layout;
pub mod wirelength;

pub use cost::{CostBreakdown, CostEvaluator, Objectives, TimingModel};
pub use fuzzy::{FuzzyConfig, FuzzyLevel};
pub use goodness::{GoodnessEvaluator, GoodnessVector};
pub use interchange::{placement_from_pl, placement_to_pl, rows_to_scl, PlConvertError};
pub use kernel::{NetLengthCache, PreparedCell, TrialScorer};
pub use layout::{Placement, PlacementError, Slot};
pub use wirelength::{hpwl, single_trunk_steiner, WirelengthModel};

/// Convenience prelude bringing the common placement types into scope.
pub mod prelude {
    pub use crate::cost::{CostBreakdown, CostEvaluator, Objectives, TimingModel};
    pub use crate::fuzzy::FuzzyConfig;
    pub use crate::goodness::GoodnessEvaluator;
    pub use crate::kernel::{NetLengthCache, PreparedCell, TrialScorer};
    pub use crate::layout::{Placement, Slot};
    pub use crate::wirelength::WirelengthModel;
}
