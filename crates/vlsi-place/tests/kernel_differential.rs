//! Differential property tests: the allocation-free kernel
//! ([`TrialScorer`], [`NetLengthCache`]) must be **bit-identical** to the
//! naive [`CostEvaluator`] oracle — not approximately equal — across random
//! circuits, random placements, random rip-up/re-insert sequences, both
//! [`WirelengthModel`]s and both [`Objectives`] variants. Bit identity is
//! what lets the engine run on the kernel while keeping every seeded
//! trajectory of the paper-reproduction tables unchanged.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
use vlsi_netlist::{CellId, Netlist};
use vlsi_place::cost::{CostEvaluator, Objectives};
use vlsi_place::kernel::{NetLengthCache, TrialScorer};
use vlsi_place::layout::{Placement, Slot};
use vlsi_place::wirelength::WirelengthModel;

fn arb_netlist() -> impl Strategy<Value = (Arc<Netlist>, u64)> {
    (80usize..220, any::<u64>()).prop_map(|(cells, seed)| {
        let cfg = GeneratorConfig::sized(format!("kdiff_{seed}"), cells, seed);
        (Arc::new(CircuitGenerator::new(cfg).generate()), seed)
    })
}

fn evaluator(
    netlist: &Arc<Netlist>,
    model: WirelengthModel,
    objectives: Objectives,
) -> CostEvaluator {
    CostEvaluator::with_models(
        Arc::clone(netlist),
        objectives,
        model,
        Default::default(),
        Default::default(),
        Default::default(),
    )
}

const MODELS: [WirelengthModel; 2] = [
    WirelengthModel::SingleTrunkSteiner,
    WirelengthModel::HalfPerimeter,
];
const OBJECTIVES: [Objectives; 2] = [
    Objectives::WirelengthPower,
    Objectives::WirelengthPowerDelay,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cached net lengths track the naive evaluator bit-for-bit through an
    /// arbitrary sequence of rip-up/re-insert and move operations, for every
    /// model/objective combination.
    #[test]
    fn cache_is_bit_identical_through_mutations(
        (netlist, seed) in arb_netlist(),
        rows in 4usize..10,
        steps in 4usize..24,
    ) {
        for model in MODELS {
            for objectives in OBJECTIVES {
                let eval = evaluator(&netlist, model, objectives);
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0FFEE);
                let mut placement = Placement::random(&netlist, rows, &mut rng);
                let mut scorer = TrialScorer::for_evaluator(&eval);
                let mut cache = NetLengthCache::new();
                for _ in 0..steps {
                    // Random rip-up / re-insert of a batch of cells, like the
                    // allocation operator performs.
                    let batch = rng.gen_range(1..5usize);
                    let mut cells: Vec<CellId> = Vec::new();
                    for _ in 0..batch {
                        let c = CellId(rng.gen_range(0..netlist.num_cells() as u32));
                        if !cells.contains(&c) {
                            cells.push(c);
                        }
                    }
                    for &c in &cells {
                        placement.remove_cell(c);
                    }
                    for &c in &cells {
                        let row = rng.gen_range(0..rows);
                        let index = rng.gen_range(0..placement.row(row).len() + 1);
                        placement.insert_cell(c, Slot { row, index });
                    }
                    let cached = cache.refresh(&eval, &mut scorer, &placement);
                    let oracle = eval.net_lengths(&placement);
                    prop_assert_eq!(cached.len(), oracle.len());
                    for (a, b) in cached.iter().zip(oracle.iter()) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                prop_assert_eq!(cache.full_refreshes(), 1);
            }
        }
    }

    /// Kernel trial scoring (both the generic and the prepared-cell path)
    /// agrees with the naive `cell_cost_at` oracle to the bit for arbitrary
    /// trial slots of a ripped-up cell.
    #[test]
    fn trial_scoring_is_bit_identical(
        (netlist, seed) in arb_netlist(),
        rows in 4usize..10,
        picks in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        for model in MODELS {
            for objectives in OBJECTIVES {
                let eval = evaluator(&netlist, model, objectives);
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBEEF);
                let mut placement = Placement::random(&netlist, rows, &mut rng);
                let mut scorer = TrialScorer::for_evaluator(&eval);
                for &pick in &picks {
                    let cell = CellId((pick as u32) % netlist.num_cells() as u32);
                    let home = placement.remove_cell(cell);
                    scorer.prepare_cell(&eval, &placement, cell);
                    for probe in 0..4u64 {
                        let h = pick.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(probe);
                        let row = (h as usize) % rows;
                        let index = (h as usize / rows) % (placement.row(row).len() + 1);
                        let pos = placement.trial_position(cell, Slot { row, index });
                        let naive = eval.cell_cost_at(&placement, cell, pos);
                        let generic = scorer.cell_cost_at(&eval, &placement, cell, pos);
                        let prepared = scorer.prepared_cost_at(pos);
                        for (a, b) in [
                            (naive.wirelength, generic.wirelength),
                            (naive.power, generic.power),
                            (naive.critical_wirelength, generic.critical_wirelength),
                            (naive.wirelength, prepared.wirelength),
                            (naive.power, prepared.power),
                            (naive.critical_wirelength, prepared.critical_wirelength),
                        ] {
                            prop_assert_eq!(a.to_bits(), b.to_bits());
                        }
                    }
                    placement.insert_cell(cell, home);
                }
            }
        }
    }

    /// The score-bound machinery behind the pruned allocation scan
    /// (DESIGN.md §3a), pinned against the exhaustive scorer: for arbitrary
    /// ripped-up cells and trial slots, (a) the run floor and the
    /// per-candidate bound never exceed the exact cost component-wise in
    /// computed arithmetic — so a strict `bound > best` prune can never kill
    /// the argmin — (b) the row-hoisted score equals the full prepared score
    /// bit for bit, and (c) past the rightmost other pin the exact score is
    /// monotone in x, the invariant behind the sorted-run tail exit.
    #[test]
    fn pruned_scan_bounds_and_hoisted_scores_match_exhaustive(
        (netlist, seed) in arb_netlist(),
        rows in 4usize..10,
        picks in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let le = |a: &vlsi_place::cost::CellCost, b: &vlsi_place::cost::CellCost| {
            a.wirelength <= b.wirelength
                && a.power <= b.power
                && a.critical_wirelength <= b.critical_wirelength
        };
        for model in MODELS {
            for objectives in OBJECTIVES {
                let eval = evaluator(&netlist, model, objectives);
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
                let mut placement = Placement::random(&netlist, rows, &mut rng);
                let mut scorer = TrialScorer::for_evaluator(&eval);
                let mut vertical: Vec<f64> = Vec::new();
                for &pick in &picks {
                    let cell = CellId((pick as u32) % netlist.num_cells() as u32);
                    let home = placement.remove_cell(cell);
                    scorer.prepare_cell(&eval, &placement, cell);
                    let view = scorer.prepared_summaries();
                    let max_other_x = view.max_other_x();
                    for probe in 0..4u64 {
                        let h = pick.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(probe);
                        let row = (h as usize) % rows;
                        let index = (h as usize / rows) % (placement.row(row).len() + 1);
                        let pos = placement.trial_position(cell, Slot { row, index });
                        let exact = scorer.prepared_cost_at(pos);
                        let view = scorer.prepared_summaries();
                        // (a) bounds dominate component-wise.
                        let floor = view.bound_floor(row as u32);
                        let bound = view.bound_at(pos.0, row as u32);
                        prop_assert!(le(&floor, &bound));
                        prop_assert!(le(&bound, &exact));
                        // (b) row-hoisted score is bit-identical.
                        view.prepare_row(row as u32, &mut vertical);
                        let hoisted = view.cost_at_in_row(pos.0, &vertical);
                        prop_assert_eq!(hoisted.wirelength.to_bits(), exact.wirelength.to_bits());
                        prop_assert_eq!(hoisted.power.to_bits(), exact.power.to_bits());
                        prop_assert_eq!(
                            hoisted.critical_wirelength.to_bits(),
                            exact.critical_wirelength.to_bits()
                        );
                        // (c) monotone tail: past the rightmost other pin the
                        // exact score never decreases as x grows.
                        let x0 = pos.0.max(max_other_x);
                        let mut last = view.cost_at_in_row(x0, &vertical);
                        for dx in [0.5f64, 2.0, 17.0, 1e4] {
                            let next = view.cost_at_in_row(x0 + dx, &vertical);
                            prop_assert!(le(&last, &next));
                            last = next;
                        }
                    }
                    placement.insert_cell(cell, home);
                }
            }
        }
    }

    /// Scorer-computed single net lengths equal the oracle's for every net of
    /// a random placement (the cache's building block, checked directly).
    #[test]
    fn net_lengths_are_bit_identical((netlist, seed) in arb_netlist(), rows in 3usize..9) {
        for model in MODELS {
            let eval = evaluator(&netlist, model, Objectives::WirelengthPower);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFACE);
            let placement = Placement::random(&netlist, rows, &mut rng);
            let mut scorer = TrialScorer::for_evaluator(&eval);
            for net in netlist.net_ids() {
                let naive = eval.net_length(&placement, net);
                let fast = scorer.net_length(&eval, &placement, net);
                prop_assert_eq!(naive.to_bits(), fast.to_bits());
            }
        }
    }
}
