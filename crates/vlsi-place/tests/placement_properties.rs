//! Property-based tests for the placement model and cost functions.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
use vlsi_netlist::Netlist;
use vlsi_place::prelude::*;
use vlsi_place::wirelength::{hpwl, single_trunk_steiner};
use vlsi_place::FuzzyConfig;

fn arb_netlist() -> impl Strategy<Value = (Arc<Netlist>, u64)> {
    (80usize..260, any::<u64>()).prop_map(|(cells, seed)| {
        let cfg = GeneratorConfig::sized(format!("prop_{seed}"), cells, seed);
        (Arc::new(CircuitGenerator::new(cfg).generate()), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random placements are always legal and survive a random sequence of
    /// remove/insert/move/swap operations.
    #[test]
    fn placement_operations_preserve_legality(
        (netlist, seed) in arb_netlist(),
        rows in 4usize..12,
        ops in prop::collection::vec((0u8..4, any::<u64>()), 1..60),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p = Placement::random(&netlist, rows, &mut rng);
        p.validate(&netlist).unwrap();
        let n = netlist.num_cells();
        for (op, r) in ops {
            let cell = vlsi_netlist::CellId::from((r as usize) % n);
            let row = (r as usize / n) % rows;
            let index = (r as usize / n / rows) % (p.row(row).len() + 1);
            match op {
                0 => {
                    let slot = p.remove_cell(cell);
                    p.insert_cell(cell, slot);
                }
                1 => p.move_cell(cell, Slot { row, index }),
                2 => {
                    let other = vlsi_netlist::CellId::from((r as usize / 7) % n);
                    p.swap_cells(cell, other);
                }
                _ => {
                    let slot = p.remove_cell(cell);
                    p.insert_cell(cell, Slot { row: slot.row, index: index.min(p.row(slot.row).len()) });
                }
            }
            p.validate(&netlist).unwrap();
        }
        // Total width is invariant under all operations.
        let total: u64 = (0..rows).map(|r| p.row_width(r)).sum();
        let expected: u64 = netlist.cells().iter().map(|c| c.width as u64).sum();
        prop_assert_eq!(total, expected);
    }

    /// The Steiner estimate is always at least the horizontal span and at
    /// least half the HPWL, and both estimators are translation invariant.
    #[test]
    fn wirelength_estimator_invariants(
        pins in prop::collection::vec((0.0f64..500.0, 0.0f64..200.0), 2..12),
        dx in -100.0f64..100.0,
        dy in -100.0f64..100.0,
    ) {
        let st = single_trunk_steiner(&pins);
        let hp = hpwl(&pins);
        prop_assert!(st >= 0.0 && hp >= 0.0);
        prop_assert!(st + 1e-9 >= hp / 2.0);
        // A tree connecting all pins can never be shorter than the bounding
        // box half-perimeter divided by 2; in fact single-trunk >= max span.
        let span_x = pins.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max)
            - pins.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        prop_assert!(st + 1e-9 >= span_x);
        let shifted: Vec<_> = pins.iter().map(|&(x, y)| (x + dx, y + dy)).collect();
        prop_assert!((single_trunk_steiner(&shifted) - st).abs() < 1e-6);
        prop_assert!((hpwl(&shifted) - hp).abs() < 1e-6);
    }

    /// Cost evaluation produces finite, bound-respecting values and a quality
    /// measure in [0, 1] for arbitrary circuits and placements.
    #[test]
    fn evaluation_respects_bounds((netlist, seed) in arb_netlist(), rows in 4usize..12) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        let placement = Placement::random(&netlist, rows, &mut rng);
        for objectives in [Objectives::WirelengthPower, Objectives::WirelengthPowerDelay] {
            let eval = CostEvaluator::new(Arc::clone(&netlist), objectives);
            let b = eval.evaluate(&placement);
            prop_assert!(b.wirelength.is_finite() && b.wirelength >= 0.0);
            prop_assert!(b.power >= 0.0 && b.power <= b.wirelength + 1e-9);
            prop_assert!(b.wirelength + 1e-9 >= eval.bounds().wirelength_lower);
            prop_assert!((0.0..=1.0).contains(&b.mu));
            if objectives.includes_delay() && !eval.paths().is_empty() {
                prop_assert!(b.delay + 1e-9 >= eval.bounds().delay_lower);
            }
        }
    }

    /// Per-cell goodness is always within [0, 1] and the average goodness of
    /// an ideal (lower-bound) length vector is 1.
    #[test]
    fn goodness_is_bounded((netlist, seed) in arb_netlist(), rows in 4usize..10) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1234);
        let placement = Placement::random(&netlist, rows, &mut rng);
        let eval = CostEvaluator::new(Arc::clone(&netlist), Objectives::WirelengthPowerDelay);
        let ge = GoodnessEvaluator::new(eval);
        let all = ge.all_goodness(&placement);
        prop_assert_eq!(all.len(), netlist.num_cells());
        for &g in &all {
            prop_assert!((0.0..=1.0).contains(&g));
        }
        let ideal = ge.evaluator().bounds().net_lower.clone();
        let ideal_goodness = ge.all_goodness_from_lengths(&ideal);
        for &g in &ideal_goodness {
            prop_assert!(g > 0.99, "goodness at the lower bound must be ~1, got {g}");
        }
    }

    /// Fuzzy membership is monotone non-increasing in cost and the aggregate
    /// never exceeds the best individual membership by more than the mean
    /// component allows.
    #[test]
    fn fuzzy_membership_monotone(lb in 1.0f64..1000.0, goal in 1.1f64..4.0, steps in 2usize..40) {
        let mut last = 1.0;
        for i in 0..steps {
            let cost = lb * (1.0 + i as f64 * 0.2);
            let m = FuzzyConfig::membership(cost, lb, goal);
            prop_assert!(m <= last + 1e-12);
            prop_assert!((0.0..=1.0).contains(&m));
            last = m;
        }
    }

    /// Trial positions predicted by the layout agree with actually performing
    /// the insertion, for arbitrary target slots.
    #[test]
    fn trial_position_is_exact((netlist, seed) in arb_netlist(), rows in 3usize..9, pick in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFEED);
        let mut p = Placement::random(&netlist, rows, &mut rng);
        let cell = vlsi_netlist::CellId::from((pick as usize) % netlist.num_cells());
        p.remove_cell(cell);
        let row = (pick as usize / 3) % rows;
        let index = (pick as usize / 17) % (p.row(row).len() + 1);
        let slot = Slot { row, index };
        let predicted = p.trial_position(cell, slot);
        p.insert_cell(cell, slot);
        let actual = p.position(cell);
        prop_assert!((predicted.0 - actual.0).abs() < 1e-9);
        prop_assert!((predicted.1 - actual.1).abs() < 1e-9);
        p.validate(&netlist).unwrap();
    }
}
