//! The placement daemon.
//!
//! ```text
//! sime_server [--workers N] [--max-active N] [--max-queue N] [--tcp ADDR]
//! ```
//!
//! Default transport is stdio (one JSON request per line on stdin, one JSON
//! event per line on stdout). With `--tcp ADDR` (e.g. `--tcp 127.0.0.1:0`)
//! the daemon serves TCP clients instead and prints the bound address to
//! stderr — `:0` picks an ephemeral port.

use sime_server::{serve_stdio, serve_tcp, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sime_server [--workers N] [--max-active N] [--max-queue N] \
         [--max-request-bytes N] [--tcp ADDR]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig::default();
    let mut tcp: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("flag {name} needs a value");
                    usage();
                }
            }
        };
        match flag.as_str() {
            "--workers" => config.workers = parse_count(&value("--workers")),
            "--max-active" => config.max_active = parse_count(&value("--max-active")),
            "--max-queue" => config.max_queue = parse_count(&value("--max-queue")),
            "--max-request-bytes" => {
                config.max_request_bytes = parse_count(&value("--max-request-bytes"))
            }
            "--tcp" => tcp = Some(value("--tcp")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    let server = Server::new(config);
    eprintln!(
        "sime_server: pool={} workers, max_active={}, max_queue={}",
        config.workers, config.max_active, config.max_queue
    );
    match tcp {
        Some(addr) => {
            let result = serve_tcp(server, addr.as_str(), |bound| {
                eprintln!("sime_server: listening on {bound}");
            });
            if let Err(e) = result {
                eprintln!("sime_server: TCP error: {e}");
                std::process::exit(1);
            }
        }
        None => serve_stdio(server),
    }
}

fn parse_count(value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("not a count: `{value}`");
            usage();
        }
    }
}
