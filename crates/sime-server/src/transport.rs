//! Byte-stream transports for the protocol: stdio and TCP.
//!
//! Both transports speak the identical line framing — a request per line in,
//! an event per line out. Each connection gets one [`Session`]: a reader
//! loop on the connection's thread and a writer thread that owns the
//! session's event stream. The writer exits when its channel closes, which
//! happens exactly when the session *and* every job it submitted have
//! finished producing events — so draining is structural, not timed.
//!
//! A client that disconnects mid-job makes the writer hit a write error and
//! stop; the job itself keeps running to its terminal state on the server
//! (its remaining events go nowhere) and the shared pool is never wedged.

use crate::protocol::Request;
use crate::server::{Server, Session};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Serves one already-open connection until EOF or a `shutdown` request.
/// Returns `true` when the connection requested shutdown (the server is
/// drained by the time this returns).
pub fn serve_connection<R, W>(server: Arc<Server>, reader: R, writer: W) -> bool
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let mut session = Session::new(server);
    let rx = session.take_receiver();
    let writer_thread = std::thread::spawn(move || {
        let mut writer = writer;
        let mut connected = true;
        while let Ok(event) = rx.recv() {
            if !connected {
                continue; // disconnected client: drain and discard
            }
            let write = writeln!(writer, "{}", event.render()).and_then(|()| writer.flush());
            if write.is_err() {
                // The client vanished mid-job. Keep draining so the
                // connection still closes structurally — when the session
                // and its jobs have produced their last event — but write
                // nothing further.
                connected = false;
            }
        }
    });
    let mut saw_shutdown = false;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let is_shutdown = matches!(
            Request::parse_line(&line, usize::MAX),
            Ok(Request::Shutdown)
        );
        session.handle_line(&line);
        if is_shutdown {
            saw_shutdown = true;
            break;
        }
    }
    // Closing the session drops its sender; once the session's in-flight
    // jobs finish and drop theirs, the writer's channel closes and it exits
    // having written every event.
    drop(session);
    let _ = writer_thread.join();
    saw_shutdown
}

/// Serves stdin/stdout until EOF or a `shutdown` request — the daemon's
/// default transport.
pub fn serve_stdio(server: Arc<Server>) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_connection(server, BufReader::new(stdin.lock()), stdout);
}

/// Binds `addr` and serves TCP connections, one thread per client, until a
/// client issues `shutdown`. `on_bound` receives the bound local address
/// before the first accept (so callers and tests learn the ephemeral port).
pub fn serve_tcp<A: ToSocketAddrs>(
    server: Arc<Server>,
    addr: A,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    on_bound(local);
    loop {
        let (stream, _) = listener.accept()?;
        if server.is_draining() {
            // A previous connection shut the server down; this accept only
            // happened to unblock the loop (or is a late client).
            return Ok(());
        }
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let reader = BufReader::new(stream.try_clone().expect("clone TCP stream"));
            if serve_connection(server, reader, stream) {
                // Unblock the accept loop so it can observe the drain.
                let _ = TcpStream::connect(local);
            }
        });
    }
}
