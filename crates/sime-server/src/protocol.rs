//! The line-delimited JSON protocol spoken by the placement server.
//!
//! One request per line from the client, one event per line from the server,
//! over any byte stream (stdio or TCP — the framing is identical). Requests
//! are [`Request`]s, server messages are [`Event`]s; both sides render with
//! [`bench::json::Json`] so the wire format needs no external serializer.
//!
//! Every failure is a **typed** [`Event::Error`] carrying a stable
//! machine-readable `code` (see [`ProtocolError`]); the server never answers
//! a bad line by closing the stream or by wedging the worker pool.
//!
//! The authoritative result artifact in a [`Event::Done`] is `fingerprint`:
//! the full [`sime_parallel::TrajectoryFingerprint`] text, bitwise identical
//! to what the batch path (`scenario_matrix`) writes into `tests/golden/` for
//! the same scenario. The golden registry is therefore the server's
//! correctness oracle.
//!
//! ```
//! use sime_server::protocol::{Event, Request};
//!
//! // A submit line, as a client would send it:
//! let line = r#"{"op":"submit","id":"j1","circuit":"s1196",
//!                "strategy":"type2_random","ranks":3,"iterations":5}"#;
//! let req = Request::parse_line(line, 4096).unwrap();
//! match &req {
//!     Request::Submit(submit) => {
//!         assert_eq!(submit.id, "j1");
//!         assert_eq!(submit.spec.scenario.id(), "s1196.type2_random.r3.i5.wp");
//!         assert_eq!(submit.spec.seed, None, "no seed → batch-path default");
//!     }
//!     _ => unreachable!(),
//! }
//! // Requests render back to a single line that re-parses identically.
//! let rendered = req.render();
//! assert!(!rendered.contains('\n'));
//! assert_eq!(Request::parse_line(&rendered, 4096).unwrap(), req);
//!
//! // Server events round-trip the same way:
//! let event = Event::Progress { id: "j1".into(), iteration: 3, mu: 0.5, best_mu: 0.75 };
//! assert_eq!(Event::parse_line(&event.render()).unwrap(), event);
//! ```

use bench::json::Json;
use sime_parallel::batch::{objectives_from_tag, objectives_tag, StrategyKind};
use sime_parallel::{JobSpec, ScenarioSpec};
use std::collections::BTreeMap;
use std::fmt;

/// A typed protocol failure: a stable machine-readable `code` plus a
/// human-readable `message`. Codes are part of the wire contract and never
/// change meaning:
///
/// | code | meaning |
/// |------|---------|
/// | `oversized_request` | the request line exceeds the server's byte limit |
/// | `malformed_request` | the line is not valid JSON, or the JSON is not a valid request shape |
/// | `duplicate_job` | a submit reuses a job id the server already knows |
/// | `unknown_job` | a cancel names a job id the server has never seen |
/// | `job_finished` | a cancel arrived after the job already finished |
/// | `queue_full` | admission control rejected the job (queue at capacity) |
/// | `server_shutdown` | the server is draining and accepts no new jobs |
/// | `unknown_circuit`, `too_few_ranks`, `no_iterations`, `bad_bookshelf` | passed through from [`sime_parallel::JobError::code`] |
/// | `unknown_warm_start`, `bad_placement`, `fixed_cells_unsupported` | likewise passed through: the submit's `warm_start` tag is unregistered, its `.pl` is invalid for the circuit, or the strategy cannot host fixed cells |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable code (see the table above).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error with the given code and message.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ProtocolError {
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// A `malformed_request` error.
    pub fn malformed(message: impl Into<String>) -> Self {
        ProtocolError::new("malformed_request", message)
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtocolError {}

impl From<&sime_parallel::JobError> for ProtocolError {
    fn from(err: &sime_parallel::JobError) -> Self {
        ProtocolError::new(err.code(), err.to_string())
    }
}

/// One job submission: a client-chosen id plus the job to run.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen job identifier; must be unique per server lifetime.
    pub id: String,
    /// What to run. `spec.scenario.workers`/`eval_chunks` are the per-job
    /// backend knobs; `spec.seed` overrides the batch-path default seed.
    pub spec: JobSpec,
}

/// A client → server request (one JSON object per line, keyed by `"op"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"op":"submit", ...}` — submit a job.
    Submit(SubmitRequest),
    /// `{"op":"cancel","id":...}` — cancel a queued or running job.
    Cancel {
        /// The job to cancel.
        id: String,
    },
    /// `{"op":"register_placement","tag":...,"pl":...}` — register a
    /// Bookshelf `.pl` layout under a warm-start tag, for later submits to
    /// reference via `warm_start`.
    RegisterPlacement {
        /// The tag future submits name in their `warm_start` field.
        tag: String,
        /// The `.pl` text (newlines JSON-escaped on the wire).
        pl: String,
    },
    /// `{"op":"status"}` — ask for a server status snapshot.
    Status,
    /// `{"op":"shutdown"}` — drain and stop the server.
    Shutdown,
}

fn obj_string(map: &BTreeMap<String, Json>, key: &str) -> Result<String, ProtocolError> {
    match map.get(key) {
        Some(Json::String(s)) => Ok(s.clone()),
        Some(_) => Err(ProtocolError::malformed(format!(
            "field `{key}` must be a string"
        ))),
        None => Err(ProtocolError::malformed(format!(
            "missing required field `{key}`"
        ))),
    }
}

fn obj_usize(map: &BTreeMap<String, Json>, key: &str) -> Result<usize, ProtocolError> {
    match map.get(key) {
        Some(Json::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
        Some(_) => Err(ProtocolError::malformed(format!(
            "field `{key}` must be a non-negative integer"
        ))),
        None => Err(ProtocolError::malformed(format!(
            "missing required field `{key}`"
        ))),
    }
}

fn obj_opt_u64(map: &BTreeMap<String, Json>, key: &str) -> Result<Option<u64>, ProtocolError> {
    match map.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
        Some(_) => Err(ProtocolError::malformed(format!(
            "field `{key}` must be a non-negative integer"
        ))),
    }
}

impl Request {
    /// Parses one request line, enforcing the server's per-line byte limit
    /// *before* parsing (an oversized line is rejected as
    /// `oversized_request` without being interpreted).
    pub fn parse_line(line: &str, max_bytes: usize) -> Result<Request, ProtocolError> {
        if line.len() > max_bytes {
            return Err(ProtocolError::new(
                "oversized_request",
                format!(
                    "request line is {} bytes; the server accepts at most {max_bytes}",
                    line.len()
                ),
            ));
        }
        let json =
            Json::parse(line).map_err(|e| ProtocolError::malformed(format!("bad JSON: {e}")))?;
        let map = match json {
            Json::Object(map) => map,
            _ => return Err(ProtocolError::malformed("a request must be a JSON object")),
        };
        let op = obj_string(&map, "op")?;
        match op.as_str() {
            "submit" => {
                let id = obj_string(&map, "id")?;
                let circuit = obj_string(&map, "circuit")?;
                let strategy_label = obj_string(&map, "strategy")?;
                let strategy = StrategyKind::from_label(&strategy_label).ok_or_else(|| {
                    ProtocolError::malformed(format!("unknown strategy `{strategy_label}`"))
                })?;
                let ranks = obj_usize(&map, "ranks")?;
                let iterations = obj_usize(&map, "iterations")?;
                let objectives = match map.get("objectives") {
                    None => objectives_from_tag("wp").expect("wp is a valid tag"),
                    Some(Json::String(tag)) => objectives_from_tag(tag).ok_or_else(|| {
                        ProtocolError::malformed(format!("unknown objectives tag `{tag}`"))
                    })?,
                    Some(_) => {
                        return Err(ProtocolError::malformed(
                            "field `objectives` must be a string tag",
                        ))
                    }
                };
                let workers = obj_opt_u64(&map, "workers")?.map(|w| w as usize);
                let eval_chunks = match map.get("eval_chunks") {
                    None => 1,
                    Some(_) => obj_usize(&map, "eval_chunks")?.max(1),
                };
                let seed = obj_opt_u64(&map, "seed")?;
                let warm_start = match map.get("warm_start") {
                    None | Some(Json::Null) => None,
                    Some(Json::String(tag)) => Some(tag.clone()),
                    Some(_) => {
                        return Err(ProtocolError::malformed(
                            "field `warm_start` must be a string tag",
                        ))
                    }
                };
                Ok(Request::Submit(SubmitRequest {
                    id,
                    spec: JobSpec {
                        scenario: ScenarioSpec {
                            circuit,
                            strategy,
                            ranks,
                            iterations,
                            objectives,
                            workers,
                            eval_chunks,
                            warm_start,
                        },
                        seed,
                    },
                }))
            }
            "cancel" => Ok(Request::Cancel {
                id: obj_string(&map, "id")?,
            }),
            "register_placement" => Ok(Request::RegisterPlacement {
                tag: obj_string(&map, "tag")?,
                pl: obj_string(&map, "pl")?,
            }),
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::malformed(format!("unknown op `{other}`"))),
        }
    }

    /// Renders the request as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut map = BTreeMap::new();
        match self {
            Request::Submit(submit) => {
                let scenario = &submit.spec.scenario;
                map.insert("op".into(), Json::String("submit".into()));
                map.insert("id".into(), Json::String(submit.id.clone()));
                map.insert("circuit".into(), Json::String(scenario.circuit.clone()));
                map.insert(
                    "strategy".into(),
                    Json::String(scenario.strategy.label().to_string()),
                );
                map.insert("ranks".into(), Json::Number(scenario.ranks as f64));
                map.insert(
                    "iterations".into(),
                    Json::Number(scenario.iterations as f64),
                );
                map.insert(
                    "objectives".into(),
                    Json::String(objectives_tag(scenario.objectives).to_string()),
                );
                if let Some(workers) = scenario.workers {
                    map.insert("workers".into(), Json::Number(workers as f64));
                }
                if scenario.eval_chunks != 1 {
                    map.insert(
                        "eval_chunks".into(),
                        Json::Number(scenario.eval_chunks as f64),
                    );
                }
                if let Some(seed) = submit.spec.seed {
                    map.insert("seed".into(), Json::Number(seed as f64));
                }
                if let Some(tag) = &scenario.warm_start {
                    map.insert("warm_start".into(), Json::String(tag.clone()));
                }
            }
            Request::Cancel { id } => {
                map.insert("op".into(), Json::String("cancel".into()));
                map.insert("id".into(), Json::String(id.clone()));
            }
            Request::RegisterPlacement { tag, pl } => {
                map.insert("op".into(), Json::String("register_placement".into()));
                map.insert("tag".into(), Json::String(tag.clone()));
                map.insert("pl".into(), Json::String(pl.clone()));
            }
            Request::Status => {
                map.insert("op".into(), Json::String("status".into()));
            }
            Request::Shutdown => {
                map.insert("op".into(), Json::String("shutdown".into()));
            }
        }
        Json::Object(map).to_string()
    }
}

/// A server → client message (one JSON object per line, keyed by `"event"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The job passed admission control. `queued_ahead` is how many jobs sit
    /// in front of it in the FIFO queue (0 = started immediately).
    Accepted {
        /// The submitted job id.
        id: String,
        /// Queue position at admission time.
        queued_ahead: usize,
    },
    /// A µ-checkpoint: emitted after iteration `iteration` completed, at the
    /// same iterations the batch fingerprint samples (powers of two plus the
    /// final iteration).
    Progress {
        /// The running job id.
        id: String,
        /// 0-based iteration that just completed.
        iteration: usize,
        /// µ(s) after this iteration.
        mu: f64,
        /// Best µ(s) seen so far.
        best_mu: f64,
    },
    /// The job ran to completion. `fingerprint` is the full
    /// [`sime_parallel::TrajectoryFingerprint`] text — the golden-comparable
    /// artifact.
    Done {
        /// The finished job id.
        id: String,
        /// The scenario identity (`ScenarioSpec::id`).
        scenario: String,
        /// The seed override the job ran with (absent = batch default).
        seed: Option<u64>,
        /// Iterations actually run.
        iterations: usize,
        /// Best µ(s) of the run.
        final_mu: f64,
        /// Full fingerprint text (`TrajectoryFingerprint::to_text`).
        fingerprint: String,
    },
    /// The job was cancelled — before starting (`iterations` = 0) or
    /// cooperatively between iterations (`iterations` = completed prefix).
    Cancelled {
        /// The cancelled job id.
        id: String,
        /// Iterations that completed before the cancellation took effect.
        iterations: usize,
    },
    /// A typed failure. `id` is absent when the line never parsed far enough
    /// to name a job.
    Error {
        /// The job the error concerns, if the request named one.
        id: Option<String>,
        /// Stable machine-readable code (see [`ProtocolError`]).
        code: String,
        /// Human-readable description.
        message: String,
    },
    /// A warm-start placement was registered.
    Registered {
        /// The tag the placement is now available under.
        tag: String,
        /// [`sime_parallel::pl_digest`] of the stored `.pl` text (hex on the
        /// wire — a JSON number would round through `f64` and lose bits).
        digest: u64,
    },
    /// A status snapshot.
    Status {
        /// Jobs currently running on the shared pool.
        active: usize,
        /// Jobs waiting in the admission queue.
        queued: usize,
        /// Jobs finished (done, cancelled or failed) since startup.
        finished: u64,
    },
    /// The server acknowledged a shutdown and has drained.
    Bye,
}

impl Event {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut map = BTreeMap::new();
        match self {
            Event::Accepted { id, queued_ahead } => {
                map.insert("event".into(), Json::String("accepted".into()));
                map.insert("id".into(), Json::String(id.clone()));
                map.insert("queued_ahead".into(), Json::Number(*queued_ahead as f64));
            }
            Event::Progress {
                id,
                iteration,
                mu,
                best_mu,
            } => {
                map.insert("event".into(), Json::String("progress".into()));
                map.insert("id".into(), Json::String(id.clone()));
                map.insert("iteration".into(), Json::Number(*iteration as f64));
                map.insert("mu".into(), Json::Number(*mu));
                map.insert("best_mu".into(), Json::Number(*best_mu));
            }
            Event::Done {
                id,
                scenario,
                seed,
                iterations,
                final_mu,
                fingerprint,
            } => {
                map.insert("event".into(), Json::String("done".into()));
                map.insert("id".into(), Json::String(id.clone()));
                map.insert("scenario".into(), Json::String(scenario.clone()));
                if let Some(seed) = seed {
                    map.insert("seed".into(), Json::Number(*seed as f64));
                }
                map.insert("iterations".into(), Json::Number(*iterations as f64));
                map.insert("final_mu".into(), Json::Number(*final_mu));
                map.insert("fingerprint".into(), Json::String(fingerprint.clone()));
            }
            Event::Cancelled { id, iterations } => {
                map.insert("event".into(), Json::String("cancelled".into()));
                map.insert("id".into(), Json::String(id.clone()));
                map.insert("iterations".into(), Json::Number(*iterations as f64));
            }
            Event::Error { id, code, message } => {
                map.insert("event".into(), Json::String("error".into()));
                if let Some(id) = id {
                    map.insert("id".into(), Json::String(id.clone()));
                }
                map.insert("code".into(), Json::String(code.clone()));
                map.insert("message".into(), Json::String(message.clone()));
            }
            Event::Registered { tag, digest } => {
                map.insert("event".into(), Json::String("registered".into()));
                map.insert("tag".into(), Json::String(tag.clone()));
                map.insert("digest".into(), Json::String(format!("{digest:#018x}")));
            }
            Event::Status {
                active,
                queued,
                finished,
            } => {
                map.insert("event".into(), Json::String("status".into()));
                map.insert("active".into(), Json::Number(*active as f64));
                map.insert("queued".into(), Json::Number(*queued as f64));
                map.insert("finished".into(), Json::Number(*finished as f64));
            }
            Event::Bye => {
                map.insert("event".into(), Json::String("bye".into()));
            }
        }
        Json::Object(map).to_string()
    }

    /// Parses one event line (the client half of the protocol; the load
    /// generator and the test suites consume events through this).
    pub fn parse_line(line: &str) -> Result<Event, ProtocolError> {
        let json =
            Json::parse(line).map_err(|e| ProtocolError::malformed(format!("bad JSON: {e}")))?;
        let map = match json {
            Json::Object(map) => map,
            _ => return Err(ProtocolError::malformed("an event must be a JSON object")),
        };
        let kind = obj_string(&map, "event")?;
        match kind.as_str() {
            "accepted" => Ok(Event::Accepted {
                id: obj_string(&map, "id")?,
                queued_ahead: obj_usize(&map, "queued_ahead")?,
            }),
            "progress" => Ok(Event::Progress {
                id: obj_string(&map, "id")?,
                iteration: obj_usize(&map, "iteration")?,
                mu: obj_f64(&map, "mu")?,
                best_mu: obj_f64(&map, "best_mu")?,
            }),
            "done" => Ok(Event::Done {
                id: obj_string(&map, "id")?,
                scenario: obj_string(&map, "scenario")?,
                seed: obj_opt_u64(&map, "seed")?,
                iterations: obj_usize(&map, "iterations")?,
                final_mu: obj_f64(&map, "final_mu")?,
                fingerprint: obj_string(&map, "fingerprint")?,
            }),
            "cancelled" => Ok(Event::Cancelled {
                id: obj_string(&map, "id")?,
                iterations: obj_usize(&map, "iterations")?,
            }),
            "error" => Ok(Event::Error {
                id: match map.get("id") {
                    Some(Json::String(s)) => Some(s.clone()),
                    _ => None,
                },
                code: obj_string(&map, "code")?,
                message: obj_string(&map, "message")?,
            }),
            "registered" => {
                let hex = obj_string(&map, "digest")?;
                let digest = hex
                    .strip_prefix("0x")
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .ok_or_else(|| {
                        ProtocolError::malformed(format!("bad digest `{hex}`: expected 0x-hex"))
                    })?;
                Ok(Event::Registered {
                    tag: obj_string(&map, "tag")?,
                    digest,
                })
            }
            "status" => Ok(Event::Status {
                active: obj_usize(&map, "active")?,
                queued: obj_usize(&map, "queued")?,
                finished: obj_usize(&map, "finished")? as u64,
            }),
            "bye" => Ok(Event::Bye),
            other => Err(ProtocolError::malformed(format!("unknown event `{other}`"))),
        }
    }
}

fn obj_f64(map: &BTreeMap<String, Json>, key: &str) -> Result<f64, ProtocolError> {
    match map.get(key) {
        Some(Json::Number(n)) => Ok(*n),
        Some(_) => Err(ProtocolError::malformed(format!(
            "field `{key}` must be a number"
        ))),
        None => Err(ProtocolError::malformed(format!(
            "missing required field `{key}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_place::cost::Objectives;

    fn sample_submit() -> Request {
        Request::Submit(SubmitRequest {
            id: "job-7".into(),
            spec: JobSpec {
                scenario: ScenarioSpec {
                    circuit: "s1196".into(),
                    strategy: StrategyKind::Type2(sime_parallel::type2::RowPattern::Random),
                    ranks: 3,
                    iterations: 5,
                    objectives: Objectives::WirelengthPower,
                    workers: Some(2),
                    eval_chunks: 2,
                    warm_start: None,
                },
                seed: Some(42),
            },
        })
    }

    #[test]
    fn requests_round_trip() {
        let warm_submit = match sample_submit() {
            Request::Submit(mut submit) => {
                submit.spec.scenario.warm_start = Some("rr".into());
                Request::Submit(submit)
            }
            _ => unreachable!(),
        };
        for req in [
            sample_submit(),
            warm_submit,
            Request::Cancel { id: "j".into() },
            Request::RegisterPlacement {
                tag: "client_rr".into(),
                pl: "UCLA pl 1.0\nc0 0 4 : N\nc1 9 4 : N /FIXED\n".into(),
            },
            Request::Status,
            Request::Shutdown,
        ] {
            let line = req.render();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::parse_line(&line, 4096).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn events_round_trip() {
        for event in [
            Event::Accepted {
                id: "a".into(),
                queued_ahead: 3,
            },
            Event::Progress {
                id: "a".into(),
                iteration: 7,
                mu: 0.625,
                best_mu: 0.75,
            },
            Event::Done {
                id: "a".into(),
                scenario: "s1196.type1.r3.i5.wp".into(),
                seed: None,
                iterations: 5,
                final_mu: 0.5,
                fingerprint: "circuit s1196\nstrategy type1\n".into(),
            },
            Event::Cancelled {
                id: "a".into(),
                iterations: 2,
            },
            Event::Error {
                id: None,
                code: "malformed_request".into(),
                message: "bad JSON".into(),
            },
            Event::Error {
                id: Some("a".into()),
                code: "unknown_circuit".into(),
                message: "unknown circuit `x`".into(),
            },
            Event::Registered {
                tag: "client_rr".into(),
                digest: 0xdead_beef_0000_0001,
            },
            Event::Status {
                active: 2,
                queued: 5,
                finished: 17,
            },
            Event::Bye,
        ] {
            let line = event.render();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Event::parse_line(&line).unwrap(), event, "{line}");
        }
    }

    #[test]
    fn oversized_lines_are_rejected_before_parsing() {
        let line = format!("{{\"op\":\"submit\",\"pad\":\"{}\"}}", "x".repeat(4096));
        let err = Request::parse_line(&line, 1024).unwrap_err();
        assert_eq!(err.code, "oversized_request");
        // The same line parses (to a shape error) when the limit allows it,
        // proving the size gate fires first.
        let err = Request::parse_line(&line, 1 << 20).unwrap_err();
        assert_eq!(err.code, "malformed_request");
    }

    #[test]
    fn malformed_lines_yield_typed_errors() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            "{\"op\":\"fly\"}",
            "{\"op\":\"submit\",\"id\":\"a\"}",
            "{\"op\":\"submit\",\"id\":7,\"circuit\":\"s1196\",\"strategy\":\"type1\",\"ranks\":3,\"iterations\":5}",
            "{\"op\":\"submit\",\"id\":\"a\",\"circuit\":\"s1196\",\"strategy\":\"warp\",\"ranks\":3,\"iterations\":5}",
            "{\"op\":\"submit\",\"id\":\"a\",\"circuit\":\"s1196\",\"strategy\":\"type1\",\"ranks\":-1,\"iterations\":5}",
            "{\"op\":\"submit\",\"id\":\"a\",\"circuit\":\"s1196\",\"strategy\":\"type1\",\"ranks\":3,\"iterations\":5,\"objectives\":\"zz\"}",
            "{\"op\":\"submit\",\"id\":\"a\",\"circuit\":\"s1196\",\"strategy\":\"type1\",\"ranks\":3,\"iterations\":5,\"seed\":1.5}",
            "{\"op\":\"cancel\"}",
        ] {
            let err = Request::parse_line(bad, 4096).unwrap_err();
            assert_eq!(err.code, "malformed_request", "`{bad}` → {err}");
        }
    }

    #[test]
    fn submit_defaults_match_the_batch_path() {
        let line = "{\"op\":\"submit\",\"id\":\"a\",\"circuit\":\"s1196\",\
                    \"strategy\":\"type1\",\"ranks\":3,\"iterations\":5}";
        match Request::parse_line(line, 4096).unwrap() {
            Request::Submit(submit) => {
                let scenario = &submit.spec.scenario;
                assert_eq!(scenario.objectives, Objectives::WirelengthPower);
                assert_eq!(
                    scenario.workers, None,
                    "default backend is modeled-equivalent"
                );
                assert_eq!(scenario.eval_chunks, 1);
                assert_eq!(submit.spec.seed, None);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn job_error_codes_pass_through() {
        let err = sime_parallel::JobError::UnknownCircuit("zzz".into());
        let protocol: ProtocolError = (&err).into();
        assert_eq!(protocol.code, "unknown_circuit");
        assert!(protocol.message.contains("zzz"));
    }
}
