//! The job engine: one shared worker pool, an admission-controlled FIFO
//! queue, per-job cancellation tokens and per-session event streams.
//!
//! ## Job lifecycle
//!
//! ```text
//! submit ──► (validate) ──► Queued ──► Running ──► Done
//!                │             │          │    └──► Cancelled (mid-run)
//!                │             │          └───────► Failed
//!                │             └──► Cancelled (before start)
//!                └──► typed Error (never admitted)
//! ```
//!
//! Admission control is a bounded FIFO: at most [`ServerConfig::max_active`]
//! jobs run concurrently on the shared [`WorkerPool`]; up to
//! [`ServerConfig::max_queue`] more wait in arrival order. A worker thread
//! that finishes a job pulls the next queued job itself, so ordering is fair
//! (strict FIFO) and no scheduler thread exists to wedge.
//!
//! Every job runs through [`JobRunner::run_job`] on a [`SharedPool`] backend
//! over the server's single pool. The determinism contract (`DESIGN.md` §4)
//! makes the pool's worker count and the number of concurrently interleaved
//! jobs invisible to results: a job's fingerprint is bitwise identical to the
//! batch path's fingerprint for the same scenario, which is what the
//! `server_suite` test enforces against the golden registry.

use crate::protocol::{Event, ProtocolError, Request, SubmitRequest};
use cluster_sim::comm::WorkerPool;
use sime_parallel::control::{CancelToken, ObservedRun};
use sime_parallel::exec::SharedPool;
use sime_parallel::jobs::{JobRunner, JobSpec};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for one server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// OS workers in the shared pool (≥ 1).
    pub workers: usize,
    /// Jobs allowed to run concurrently (≥ 1).
    pub max_active: usize,
    /// Jobs allowed to wait in the admission queue.
    pub max_queue: usize,
    /// Per-line request size limit in bytes; longer lines are rejected as
    /// `oversized_request` before being parsed.
    pub max_request_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_active: 2,
            max_queue: 64,
            max_request_bytes: 64 * 1024,
        }
    }
}

/// A per-session event channel. Cloned into every job the session submits;
/// sends to a disconnected session are silently dropped, so a client that
/// vanishes mid-job never wedges the pool or the job thread.
#[derive(Clone)]
struct EventSink {
    session: u64,
    tx: Sender<Event>,
}

impl EventSink {
    fn send(&self, event: Event) {
        let _ = self.tx.send(event);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

struct JobEntry {
    phase: JobPhase,
    token: CancelToken,
}

struct QueuedJob {
    id: String,
    spec: JobSpec,
    sink: EventSink,
}

#[derive(Default)]
struct ServerState {
    jobs: HashMap<String, JobEntry>,
    queue: VecDeque<QueuedJob>,
    active: usize,
    finished: u64,
}

/// A monitoring snapshot of the engine, for tests and the `status` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs currently running.
    pub active: usize,
    /// Jobs waiting in the admission queue.
    pub queued: usize,
    /// Jobs that reached a terminal phase (done, cancelled or failed).
    pub finished: u64,
    /// Job ids the server has ever admitted.
    pub jobs_seen: usize,
}

/// The placement job engine. One instance owns one [`WorkerPool`] and one
/// [`JobRunner`] (circuit + engine caches) for its whole lifetime; any number
/// of [`Session`]s attach to it concurrently.
pub struct Server {
    config: ServerConfig,
    runner: Arc<JobRunner>,
    pool: Arc<WorkerPool>,
    state: Mutex<ServerState>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    shutdown: AtomicBool,
    next_session: AtomicU64,
}

impl Server {
    /// Builds a server with a fresh pool and empty caches.
    pub fn new(config: ServerConfig) -> Arc<Server> {
        assert!(config.workers >= 1, "the shared pool needs a worker");
        assert!(config.max_active >= 1, "max_active must admit a job");
        Arc::new(Server {
            config,
            runner: Arc::new(JobRunner::new()),
            pool: Arc::new(WorkerPool::new(config.workers)),
            state: Mutex::new(ServerState::default()),
            handles: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(0),
        })
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared job runner (circuit/engine caches), e.g. to pre-register
    /// Bookshelf circuits before serving.
    pub fn runner(&self) -> &Arc<JobRunner> {
        &self.runner
    }

    /// The shared worker pool — exposed so tests can assert it holds no
    /// leaked work (`queued_jobs() == 0`) after jobs finish.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Current engine snapshot.
    pub fn stats(&self) -> ServerStats {
        let state = self.state.lock().unwrap();
        ServerStats {
            active: state.active,
            queued: state.queue.len(),
            finished: state.finished,
            jobs_seen: state.jobs.len(),
        }
    }

    fn submit(self: &Arc<Self>, submit: SubmitRequest, sink: &EventSink) {
        let id = submit.id.clone();
        if self.shutdown.load(Ordering::SeqCst) {
            sink.send(Event::Error {
                id: Some(id),
                code: "server_shutdown".into(),
                message: "the server is draining and accepts no new jobs".into(),
            });
            return;
        }
        // Reject bad specs before touching the queue: a submission that can
        // never run is a typed error, not an admitted job.
        if let Err(err) = JobRunner::validate(&submit.spec.scenario) {
            sink.send(Event::Error {
                id: Some(id),
                code: err.code().into(),
                message: err.to_string(),
            });
            return;
        }
        if let Err(err) = self.runner.netlist(&submit.spec.scenario.circuit) {
            sink.send(Event::Error {
                id: Some(id),
                code: err.code().into(),
                message: err.to_string(),
            });
            return;
        }
        let job = QueuedJob {
            id: id.clone(),
            spec: submit.spec,
            sink: sink.clone(),
        };
        let to_start = {
            let mut state = self.state.lock().unwrap();
            if state.jobs.contains_key(&id) {
                drop(state);
                sink.send(Event::Error {
                    id: Some(id),
                    code: "duplicate_job".into(),
                    message: "a job with this id was already submitted".into(),
                });
                return;
            }
            if state.active < self.config.max_active {
                state.active += 1;
                state.jobs.insert(
                    id.clone(),
                    JobEntry {
                        phase: JobPhase::Running,
                        token: CancelToken::new(),
                    },
                );
                sink.send(Event::Accepted {
                    id,
                    queued_ahead: 0,
                });
                Some(job)
            } else if state.queue.len() < self.config.max_queue {
                state.jobs.insert(
                    id.clone(),
                    JobEntry {
                        phase: JobPhase::Queued,
                        token: CancelToken::new(),
                    },
                );
                sink.send(Event::Accepted {
                    id,
                    queued_ahead: state.queue.len(),
                });
                state.queue.push_back(job);
                None
            } else {
                drop(state);
                sink.send(Event::Error {
                    id: Some(id),
                    code: "queue_full".into(),
                    message: format!("admission queue is at capacity ({})", self.config.max_queue),
                });
                None
            }
        };
        if let Some(job) = to_start {
            let server = Arc::clone(self);
            let handle = std::thread::spawn(move || server.worker_loop(job));
            self.handles.lock().unwrap().push(handle);
        }
    }

    /// Runs `first`, then keeps pulling queued jobs until the queue is dry.
    /// The pulling worker is what makes admission FIFO-fair without a
    /// dedicated scheduler thread.
    fn worker_loop(self: Arc<Self>, first: QueuedJob) {
        let mut job = Some(first);
        while let Some(current) = job.take() {
            self.run_one(current);
            let mut state = self.state.lock().unwrap();
            match state.queue.pop_front() {
                Some(next) => {
                    if let Some(entry) = state.jobs.get_mut(&next.id) {
                        entry.phase = JobPhase::Running;
                    }
                    job = Some(next);
                }
                None => state.active -= 1,
            }
        }
    }

    fn run_one(&self, job: QueuedJob) {
        let token = {
            let state = self.state.lock().unwrap();
            state.jobs[&job.id].token.clone()
        };
        let total = job.spec.scenario.iterations;
        let progress_sink = job.sink.clone();
        let progress_id = job.id.clone();
        let control = ObservedRun::new(&token, move |iteration, mu, best_mu| {
            if is_checkpoint(iteration, total) {
                progress_sink.send(Event::Progress {
                    id: progress_id.clone(),
                    iteration,
                    mu,
                    best_mu,
                });
            }
        });
        let backend =
            SharedPool::new(Arc::clone(&self.pool)).with_eval_chunks(job.spec.scenario.eval_chunks);
        let result = self.runner.run_job(&job.spec, &backend, &control);
        let event = {
            let mut state = self.state.lock().unwrap();
            state.finished += 1;
            let entry = state.jobs.get_mut(&job.id).expect("running job has entry");
            match result {
                Ok(outcome) if outcome.completed() => {
                    entry.phase = JobPhase::Done;
                    Event::Done {
                        id: job.id,
                        scenario: outcome.spec.scenario.id(),
                        seed: outcome.spec.seed,
                        iterations: outcome.outcome.iterations,
                        final_mu: outcome.outcome.best_mu(),
                        fingerprint: outcome.fingerprint.to_text(&outcome.spec.scenario),
                    }
                }
                Ok(outcome) => {
                    entry.phase = JobPhase::Cancelled;
                    Event::Cancelled {
                        id: job.id,
                        iterations: outcome.outcome.iterations,
                    }
                }
                Err(err) => {
                    entry.phase = JobPhase::Failed;
                    Event::Error {
                        id: Some(job.id),
                        code: err.code().into(),
                        message: err.to_string(),
                    }
                }
            }
        };
        job.sink.send(event);
    }

    fn cancel(&self, id: &str, sink: &EventSink) {
        let mut state = self.state.lock().unwrap();
        let Some(phase) = state.jobs.get(id).map(|entry| entry.phase) else {
            drop(state);
            sink.send(Event::Error {
                id: Some(id.to_string()),
                code: "unknown_job".into(),
                message: "no job with this id was ever submitted".into(),
            });
            return;
        };
        match phase {
            JobPhase::Queued => {
                let pos = state
                    .queue
                    .iter()
                    .position(|job| job.id == id)
                    .expect("queued job is in the queue");
                let job = state.queue.remove(pos).expect("position is valid");
                state.jobs.get_mut(id).unwrap().phase = JobPhase::Cancelled;
                state.finished += 1;
                drop(state);
                // The submitter learns its job died; the canceller (if a
                // different session) gets the same event.
                job.sink.send(Event::Cancelled {
                    id: id.to_string(),
                    iterations: 0,
                });
                if job.sink.session != sink.session {
                    sink.send(Event::Cancelled {
                        id: id.to_string(),
                        iterations: 0,
                    });
                }
            }
            JobPhase::Running => {
                // Cooperative: the run stops at its next iteration boundary
                // and the job thread emits Cancelled (or Done, if the request
                // landed after the final iteration — that race is resolved by
                // the run itself, never by this thread).
                state.jobs[id].token.cancel();
            }
            JobPhase::Done | JobPhase::Cancelled | JobPhase::Failed => {
                drop(state);
                sink.send(Event::Error {
                    id: Some(id.to_string()),
                    code: "job_finished".into(),
                    message: "the job already reached a terminal state".into(),
                });
            }
        }
    }

    /// Whether [`Server::drain`] has been requested (new submissions are
    /// being rejected).
    pub fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Drains the engine: rejects new submissions, runs every admitted job to
    /// its terminal state and joins all job threads. Idempotent.
    pub fn drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.handles.lock().unwrap();
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// The progress-checkpoint rule, matching
/// [`sime_parallel::batch::checkpoint_iterations`]: iteration `i` is sampled
/// when `i + 1` is a power of two or the run's final iteration.
fn is_checkpoint(iteration: usize, total: usize) -> bool {
    (iteration + 1).is_power_of_two() || iteration + 1 == total
}

/// One client's connection to a [`Server`]: a request entry point plus the
/// event stream for everything that client submitted. Dropping a session
/// mid-job is safe — its events are discarded and the job runs (or cancels)
/// to its terminal state on the server.
pub struct Session {
    server: Arc<Server>,
    sink: EventSink,
    rx: Option<Receiver<Event>>,
}

impl Session {
    /// Attaches a new session to `server`.
    pub fn new(server: Arc<Server>) -> Session {
        let (tx, rx) = mpsc::channel();
        let session = server.next_session.fetch_add(1, Ordering::Relaxed);
        Session {
            server,
            sink: EventSink { session, tx },
            rx: Some(rx),
        }
    }

    /// Detaches the event stream so a writer thread can own it. The channel
    /// closes (and the writer unblocks) once this session *and* every job it
    /// submitted have dropped their sender clones — i.e. exactly when no more
    /// events can arrive.
    ///
    /// # Panics
    /// If called twice.
    pub fn take_receiver(&mut self) -> Receiver<Event> {
        self.rx.take().expect("session receiver already taken")
    }

    /// Handles one raw protocol line. Malformed input becomes a typed
    /// [`Event::Error`] on this session's stream; the engine is untouched.
    pub fn handle_line(&self, line: &str) {
        match Request::parse_line(line, self.server.config.max_request_bytes) {
            Ok(request) => self.request(request),
            Err(err) => self.sink.send(Event::Error {
                id: None,
                code: err.code,
                message: err.message,
            }),
        }
    }

    /// Dispatches an already-parsed request.
    pub fn request(&self, request: Request) {
        match request {
            Request::Submit(submit) => self.server.submit(submit, &self.sink),
            Request::Cancel { id } => self.server.cancel(&id, &self.sink),
            Request::RegisterPlacement { tag, pl } => {
                let digest = self.server.runner().register_placement(&tag, &pl);
                self.sink.send(Event::Registered { tag, digest });
            }
            Request::Status => {
                let stats = self.server.stats();
                self.sink.send(Event::Status {
                    active: stats.active,
                    queued: stats.queued,
                    finished: stats.finished,
                });
            }
            Request::Shutdown => {
                self.server.drain();
                self.sink.send(Event::Bye);
            }
        }
    }

    /// The server this session is attached to.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Blocks up to `timeout` for the next event on this session's stream.
    /// Returns `None` on timeout or if the receiver was detached with
    /// [`Session::take_receiver`].
    pub fn next_event(&self, timeout: Duration) -> Option<Event> {
        self.rx.as_ref()?.recv_timeout(timeout).ok()
    }

    /// Drains events until the job `id` reaches a terminal event (done,
    /// cancelled, or an error naming it), returning every event seen for it
    /// (other jobs' events are returned too, interleaved, for callers that
    /// multiplex). Returns `None` on timeout.
    pub fn wait_for_terminal(&self, id: &str, timeout: Duration) -> Option<Vec<Event>> {
        let rx = self.rx.as_ref()?;
        let deadline = std::time::Instant::now() + timeout;
        let mut seen = Vec::new();
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let event = rx.recv_timeout(deadline - now).ok()?;
            let terminal = matches!(
                &event,
                Event::Done { id: eid, .. }
                | Event::Cancelled { id: eid, .. }
                | Event::Error { id: Some(eid), .. } if eid == id
            );
            seen.push(event);
            if terminal {
                return Some(seen);
            }
        }
    }

    /// Error shorthand used by transports when a read-side problem (not a
    /// protocol line) must be surfaced on the stream.
    pub fn send_error(&self, err: ProtocolError) {
        self.sink.send(Event::Error {
            id: None,
            code: err.code,
            message: err.message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_rule_matches_the_batch_sampler() {
        for total in 1..40usize {
            let expected = sime_parallel::batch::checkpoint_iterations(total);
            let got: Vec<usize> = (0..total).filter(|&i| is_checkpoint(i, total)).collect();
            assert_eq!(got, expected, "total {total}");
        }
    }
}
