//! # sime-server
//!
//! Placement-as-a-service over the strategies of [`sime_parallel`]: a
//! long-running daemon that owns **one** shared worker pool
//! ([`cluster_sim::comm::WorkerPool`]) and **one** job runner
//! ([`sime_parallel::JobRunner`] — content-addressed circuit and engine
//! caches), and accepts concurrent placement jobs over a line-delimited JSON
//! protocol on stdio or TCP.
//!
//! The three layers:
//!
//! * [`protocol`] — the wire types: [`protocol::Request`] in,
//!   [`protocol::Event`] out, every failure a typed error code.
//! * [`server`] — the job engine: admission-controlled FIFO queue,
//!   per-job [`sime_parallel::control::CancelToken`]s, µ-checkpoint progress
//!   streaming, per-session event channels.
//! * [`transport`] — stdio and TCP framing over the same [`server::Session`].
//!
//! The correctness oracle is the batch path's golden registry: a job that
//! runs to completion with the default seed produces a
//! [`sime_parallel::TrajectoryFingerprint`] **bitwise identical** to the
//! `scenario_matrix` fingerprint for the same scenario, no matter how many
//! clients, jobs or pool workers were interleaved with it (the root
//! `server_suite` test replays all six goldens through an in-process server
//! at several client concurrencies to enforce exactly this).

#![warn(missing_docs)]

pub mod protocol;
pub mod server;
pub mod transport;

pub use protocol::{Event, ProtocolError, Request, SubmitRequest};
pub use server::{Server, ServerConfig, ServerStats, Session};
pub use transport::{serve_connection, serve_stdio, serve_tcp};
