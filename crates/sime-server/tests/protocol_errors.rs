//! Error-path contract: every bad input — malformed JSON, unknown circuit,
//! oversized request, duplicate ids, full queues, cancellation races, a
//! client vanishing mid-job — produces a **typed** error event (stable
//! `code`) or a clean cancellation, and never wedges the shared pool: after
//! each scenario the server drains, every slot returns and
//! `WorkerPool::queued_jobs()` is zero.

use sime_parallel::batch::{ScenarioSpec, StrategyKind};
use sime_parallel::type2::RowPattern;
use sime_parallel::JobSpec;
use sime_server::{serve_connection, Event, Request, Server, ServerConfig, Session, SubmitRequest};
use std::io::{Cursor, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vlsi_place::cost::Objectives;

const TIMEOUT: Duration = Duration::from_secs(300);

fn spec(iterations: usize) -> JobSpec {
    JobSpec::batch(ScenarioSpec {
        circuit: "s1196".into(),
        strategy: StrategyKind::Type2(RowPattern::Random),
        ranks: 3,
        iterations,
        objectives: Objectives::WirelengthPower,
        workers: None,
        eval_chunks: 1,
        warm_start: None,
    })
}

fn submit(session: &Session, id: &str, spec: JobSpec) {
    session.request(Request::Submit(SubmitRequest {
        id: id.into(),
        spec,
    }));
}

fn expect_error(session: &Session, code: &str) {
    match session.next_event(TIMEOUT) {
        Some(Event::Error { code: got, .. }) => assert_eq!(got, code),
        other => panic!("expected `{code}` error, got {other:?}"),
    }
}

fn assert_drained_clean(server: &Arc<Server>) {
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.active, 0, "leaked active slot");
    assert_eq!(stats.queued, 0, "leaked queued job");
    assert_eq!(server.pool().queued_jobs(), 0, "leaked work in a pool lane");
}

/// A submit so large it can never run: used as the slot blocker for the
/// deterministic cancellation-race tests (always cancelled, never finishes
/// on its own within any plausible test runtime).
const BLOCKER_ITERATIONS: usize = 1_000_000;

#[test]
fn malformed_and_invalid_requests_return_typed_errors_and_leave_the_pool_usable() {
    let server = Server::new(ServerConfig::default());
    let session = Session::new(Arc::clone(&server));

    session.handle_line("this is not json");
    expect_error(&session, "malformed_request");

    session.handle_line("{\"op\":\"fly\"}");
    expect_error(&session, "malformed_request");

    // Unknown circuit: rejected at admission, never queued.
    let mut bad = spec(2);
    bad.scenario.circuit = "not_a_circuit".into();
    submit(&session, "bad-circuit", bad);
    expect_error(&session, "unknown_circuit");

    // Strategy invariant violations map to JobError codes.
    let mut bad = spec(2);
    bad.scenario.ranks = 1;
    submit(&session, "bad-ranks", bad);
    expect_error(&session, "too_few_ranks");

    let bad = spec(0);
    submit(&session, "bad-iterations", bad);
    expect_error(&session, "no_iterations");

    // Oversized request: size gate fires before the JSON is interpreted.
    let huge = format!(
        "{{\"op\":\"submit\",\"pad\":\"{}\"}}",
        "x".repeat(server.config().max_request_bytes)
    );
    session.handle_line(&huge);
    expect_error(&session, "oversized_request");

    // After the error storm, a real job still runs to completion.
    submit(&session, "recovery", spec(2));
    let events = session
        .wait_for_terminal("recovery", TIMEOUT)
        .expect("recovery job finishes");
    assert!(matches!(events.last(), Some(Event::Done { .. })));
    assert_eq!(server.stats().finished, 1, "only the real job ran");
    assert_drained_clean(&server);
}

#[test]
fn warm_start_registration_and_errors_flow_through_the_wire() {
    let server = Server::new(ServerConfig::default());
    let session = Session::new(Arc::clone(&server));

    // A warm submit naming an unregistered tag fails with a typed error
    // (post-admission: the tag resolves against the job's circuit at run
    // time).
    let mut warm = spec(2);
    warm.scenario.warm_start = Some("never_registered".into());
    submit(&session, "warm-unknown", warm);
    let events = session
        .wait_for_terminal("warm-unknown", TIMEOUT)
        .expect("warm job reaches a terminal event");
    match events.last() {
        Some(Event::Error { code, .. }) => assert_eq!(code, "unknown_warm_start"),
        other => panic!("expected unknown_warm_start, got {other:?}"),
    }

    // Register the round-robin layout over the wire, then warm-start from
    // it: the run must match the builtin `rr` tag bitwise (same `.pl`
    // content → same trajectory).
    let runner = server.runner();
    let (netlist, _) = runner.netlist("s1196").unwrap();
    let num_rows = vlsi_netlist::bench_suite::SuiteCircuit::from_name("s1196")
        .unwrap()
        .num_rows();
    let rr = vlsi_place::Placement::round_robin(&netlist, num_rows);
    let pl_text = vlsi_netlist::bookshelf::write_pl(&vlsi_place::placement_to_pl(&netlist, &rr));
    let expected_digest = sime_parallel::pl_digest(&pl_text);
    session.request(Request::RegisterPlacement {
        tag: "wire_rr".into(),
        pl: pl_text,
    });
    match session.next_event(TIMEOUT) {
        Some(Event::Registered { tag, digest }) => {
            assert_eq!(tag, "wire_rr");
            assert_eq!(digest, expected_digest);
        }
        other => panic!("expected registered event, got {other:?}"),
    }

    let run_warm = |id: &str, tag: &str| {
        let mut warm = spec(2);
        warm.scenario.warm_start = Some(tag.into());
        submit(&session, id, warm);
        let events = session
            .wait_for_terminal(id, TIMEOUT)
            .expect("warm job finishes");
        match events.last() {
            Some(Event::Done { fingerprint, .. }) => fingerprint.clone(),
            other => panic!("expected done, got {other:?}"),
        }
    };
    let registered_fp = run_warm("warm-wire", "wire_rr");
    let builtin_fp = run_warm("warm-builtin", "rr");
    let (_, registered) = sime_parallel::batch::TrajectoryFingerprint::parse_text(&registered_fp)
        .expect("parsable fingerprint");
    let (_, builtin) = sime_parallel::batch::TrajectoryFingerprint::parse_text(&builtin_fp)
        .expect("parsable fingerprint");
    assert_eq!(
        registered, builtin,
        "identical .pl content must replay the identical trajectory"
    );
    assert_drained_clean(&server);
}

#[test]
fn duplicate_ids_and_full_queues_are_typed_rejections() {
    let server = Server::new(ServerConfig {
        workers: 1,
        max_active: 1,
        max_queue: 1,
        ..ServerConfig::default()
    });
    let session = Session::new(Arc::clone(&server));

    submit(&session, "blocker", spec(BLOCKER_ITERATIONS));
    assert!(matches!(
        session.next_event(TIMEOUT),
        Some(Event::Accepted {
            queued_ahead: 0,
            ..
        })
    ));

    // Same id again → duplicate, regardless of phase.
    submit(&session, "blocker", spec(2));
    expect_error(&session, "duplicate_job");

    // One queue slot: the first waiter is accepted, the second bounces.
    submit(&session, "waiter", spec(2));
    assert!(matches!(
        session.next_event(TIMEOUT),
        Some(Event::Accepted { .. })
    ));
    submit(&session, "overflow", spec(2));
    expect_error(&session, "queue_full");

    // Unblock: cancel the blocker; the waiter then runs to completion.
    session.request(Request::Cancel {
        id: "blocker".into(),
    });
    let events = session
        .wait_for_terminal("waiter", TIMEOUT)
        .expect("waiter runs after the blocker is cancelled");
    assert!(matches!(events.last(), Some(Event::Done { .. })));
    assert_drained_clean(&server);
}

#[test]
fn cancellation_races_before_start_mid_run_and_after_completion() {
    let server = Server::new(ServerConfig {
        workers: 1,
        max_active: 1,
        max_queue: 4,
        ..ServerConfig::default()
    });
    let session = Session::new(Arc::clone(&server));

    // Cancel a job the server never saw.
    session.request(Request::Cancel {
        id: "never-submitted".into(),
    });
    expect_error(&session, "unknown_job");

    // Occupy the only slot and wait until it is demonstrably running (its
    // first µ-checkpoint arrived).
    submit(&session, "blocker", spec(BLOCKER_ITERATIONS));
    assert!(matches!(
        session.next_event(TIMEOUT),
        Some(Event::Accepted { .. })
    ));
    loop {
        match session.next_event(TIMEOUT) {
            Some(Event::Progress { iteration: 0, .. }) => break,
            Some(Event::Progress { .. }) => continue,
            other => panic!("expected first progress checkpoint, got {other:?}"),
        }
    }

    // Race 1 — cancel BEFORE START: the victim is queued behind the blocker
    // and can deterministically never have started.
    submit(&session, "victim", spec(3));
    assert!(matches!(
        session.next_event(TIMEOUT),
        Some(Event::Accepted { .. })
    ));
    session.request(Request::Cancel {
        id: "victim".into(),
    });
    match session.next_event(TIMEOUT) {
        Some(Event::Cancelled { id, iterations }) => {
            assert_eq!(id, "victim");
            assert_eq!(iterations, 0, "a never-started job ran no iterations");
        }
        other => panic!("expected before-start cancellation, got {other:?}"),
    }

    // Race 2 — cancel MID-RUN: the blocker stops at its next iteration
    // boundary with a strict prefix of its requested schedule.
    session.request(Request::Cancel {
        id: "blocker".into(),
    });
    let events = session
        .wait_for_terminal("blocker", TIMEOUT)
        .expect("blocker reaches a terminal event");
    match events.last() {
        Some(Event::Cancelled { iterations, .. }) => {
            assert!(*iterations >= 1, "at least the observed iteration ran");
            assert!(
                *iterations < BLOCKER_ITERATIONS,
                "cancellation must truncate the run"
            );
        }
        other => panic!("expected mid-run cancellation, got {other:?}"),
    }

    // Race 3 — cancel AFTER COMPLETION: a typed error, not a wedge.
    submit(&session, "quick", spec(2));
    let events = session
        .wait_for_terminal("quick", TIMEOUT)
        .expect("quick job finishes");
    assert!(matches!(events.last(), Some(Event::Done { .. })));
    session.request(Request::Cancel { id: "quick".into() });
    expect_error(&session, "job_finished");
    // Cancelling an already-cancelled job is equally terminal.
    session.request(Request::Cancel {
        id: "victim".into(),
    });
    expect_error(&session, "job_finished");

    assert_drained_clean(&server);
}

/// A writer whose client has vanished: every write fails.
struct BrokenPipe;

impl Write for BrokenPipe {
    fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
        Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "client went away",
        ))
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn mid_job_disconnect_never_wedges_the_pool() {
    let server = Server::new(ServerConfig {
        workers: 1,
        max_active: 1,
        ..ServerConfig::default()
    });

    // A client submits a job, then its connection dies: reads hit EOF and
    // every write fails. serve_connection must still return (after the job
    // reaches its terminal state) instead of wedging.
    let request = Request::Submit(SubmitRequest {
        id: "doomed-client".into(),
        spec: spec(3),
    });
    let input = format!("{}\n", request.render());
    let saw_shutdown = serve_connection(Arc::clone(&server), Cursor::new(input), BrokenPipe);
    assert!(!saw_shutdown);

    // The job ran to completion server-side; nothing leaked.
    assert_eq!(server.stats().finished, 1);

    // And the pool immediately serves the next, healthy client.
    let session = Session::new(Arc::clone(&server));
    submit(&session, "healthy", spec(2));
    let events = session
        .wait_for_terminal("healthy", TIMEOUT)
        .expect("job after the disconnect completes");
    assert!(matches!(events.last(), Some(Event::Done { .. })));
    assert_drained_clean(&server);
}

#[test]
fn dropping_a_session_mid_run_discards_events_but_jobs_still_terminate() {
    let server = Server::new(ServerConfig {
        workers: 1,
        max_active: 1,
        ..ServerConfig::default()
    });
    {
        let session = Session::new(Arc::clone(&server));
        submit(&session, "orphan", spec(BLOCKER_ITERATIONS));
        assert!(matches!(
            session.next_event(TIMEOUT),
            Some(Event::Accepted { .. })
        ));
        // The session (and its event channel) dies here with the job running.
    }
    // Another session can still cancel the orphan; its terminal event goes
    // nowhere, harmlessly.
    let other = Session::new(Arc::clone(&server));
    other.request(Request::Cancel {
        id: "orphan".into(),
    });
    assert_drained_clean(&server);
    assert_eq!(server.stats().finished, 1);
}

#[test]
fn shutdown_drains_and_rejects_new_submissions() {
    let server = Server::new(ServerConfig::default());
    let session = Session::new(Arc::clone(&server));
    submit(&session, "last", spec(2));
    session.request(Request::Shutdown);
    // Shutdown returns only after the drain: the submitted job finished.
    let bye_seen = {
        let mut done = false;
        let mut bye = false;
        while let Some(event) = session.next_event(Duration::from_millis(200)) {
            match event {
                Event::Done { .. } => done = true,
                Event::Bye => bye = true,
                _ => {}
            }
        }
        assert!(done, "the admitted job ran to completion before the bye");
        bye
    };
    assert!(bye_seen);
    submit(&session, "too-late", spec(2));
    expect_error(&session, "server_shutdown");
    assert_eq!(server.pool().queued_jobs(), 0);
}

#[test]
fn concurrent_error_storms_do_not_disturb_running_jobs() {
    // One client hammers the server with garbage while another runs real
    // jobs; the real jobs' fingerprints must be unaffected (same bits as a
    // quiet server produces).
    let quiet = {
        let server = Server::new(ServerConfig::default());
        let session = Session::new(Arc::clone(&server));
        submit(&session, "ref", spec(3));
        let events = session.wait_for_terminal("ref", TIMEOUT).unwrap();
        let Some(Event::Done { fingerprint, .. }) = events.last().cloned() else {
            panic!("reference job must finish");
        };
        server.drain();
        fingerprint
    };

    let server = Server::new(ServerConfig::default());
    let noisy_fingerprint = Mutex::new(String::new());
    std::thread::scope(|scope| {
        let storm_server = Arc::clone(&server);
        scope.spawn(move || {
            let session = Session::new(storm_server);
            for i in 0..50 {
                session.handle_line("not json at all");
                session.handle_line(&format!("{{\"op\":\"cancel\",\"id\":\"ghost-{i}\"}}"));
            }
        });
        let run_server = Arc::clone(&server);
        let noisy_fingerprint = &noisy_fingerprint;
        scope.spawn(move || {
            let session = Session::new(run_server);
            submit(&session, "real", spec(3));
            let events = session.wait_for_terminal("real", TIMEOUT).unwrap();
            let Some(Event::Done { fingerprint, .. }) = events.last().cloned() else {
                panic!("real job must finish despite the storm");
            };
            *noisy_fingerprint.lock().unwrap() = fingerprint;
        });
    });
    assert_eq!(
        *noisy_fingerprint.lock().unwrap(),
        quiet,
        "error traffic must not perturb a running job's trajectory"
    );
    assert_drained_clean(&server);
}
