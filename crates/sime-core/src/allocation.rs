//! The SimE Allocation operator.
//!
//! Allocation takes the selection set `S` and the partial solution `Φp`
//! (the placement with the selected cells ripped up) and re-inserts each
//! selected cell, trying to improve the solution without being too greedy
//! (Section 3). The paper uses the *sorted individual best fit* method:
//! the selected cells are sorted and each is placed, one at a time, at the
//! trial slot with the lowest cost over its incident nets.
//!
//! Profiling in Section 4 of the paper attributes ~98 % of the serial runtime
//! to this operator, because every cell examines every insertion slot of the
//! layout (each of which requires re-estimating the lengths of the cell's
//! nets). That observation drives all three parallelization strategies, so
//! this module reports detailed work counts ([`AllocationStats`]) that the
//! cluster simulation uses to charge virtual compute time.
//!
//! Besides best fit, a first-fit and a random-window variant are provided for
//! the ablation study (experiment E6 in `DESIGN.md`) and as building blocks
//! for the search-diversification ideas discussed in Section 7 of the paper.

use crate::parallel::{chunk_ranges, EvalContext};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use vlsi_netlist::CellId;
use vlsi_place::cost::CostEvaluator;
use vlsi_place::kernel::{PreparedCell, PreparedSummaries, TrialScorer};
use vlsi_place::layout::{Placement, Slot};

/// Minimum candidate count before the trial-scoring loop fans out across
/// the worker pool: below this, the per-task dispatch overhead exceeds the
/// scoring work (the default windowed search examines ~48 slots and stays
/// serial; the exhaustive extended-tier searches examine thousands and
/// parallelise well).
const PARALLEL_TRIAL_THRESHOLD: usize = 256;

/// Cells prepared per parallel wave, as a multiple of the context's chunk
/// count. The wave must be long enough to amortise one epoch of dispatch
/// overhead over many `prepare_cell` passes, but short enough that few
/// snapshots go stale (a snapshot is discarded when a net neighbour's row
/// received an insertion after the wave was prepared).
const PREPARE_WAVE_FACTOR: usize = 8;

/// Reusable buffers for the allocation operator. Everything the former
/// implementation allocated per cell (candidate lists, row orderings, the
/// median buffers of the windowed search) and per *slot* (the pin buffer and
/// Steiner sort inside trial scoring, now owned by the embedded
/// [`TrialScorer`]) lives here, so a full allocation pass performs no heap
/// allocation. One instance per worker thread.
#[derive(Debug, Clone)]
pub struct AllocScratch {
    /// The allocation-free trial scorer (shared with the engine's evaluation
    /// step, which uses it to refresh the net-length cache).
    pub scorer: TrialScorer,
    /// Deduplicated target rows for the current cell.
    rows: Vec<usize>,
    /// Candidate slots for the current cell.
    candidates: Vec<Slot>,
    /// Connected-cell x coordinates (windowed search median).
    xs: Vec<f64>,
    /// Connected-cell y coordinates (windowed search median).
    ys: Vec<f64>,
    /// Rows ordered by distance from the optimal y (windowed search).
    rows_by_distance: Vec<usize>,
    /// Per-cell snapshot buffers for the parallel prepare wave of
    /// [`allocate_all_on`] (reused across waves and calls).
    prepared_cells: Vec<PreparedCell>,
    /// Step counter of the last insertion into each row within the current
    /// allocation pass (wave staleness tracking).
    row_step: Vec<u64>,
    /// Per-row counting scratch for the summary-derived y median of the
    /// pruned windowed search (left all-zero between uses).
    row_merge: Vec<u32>,
    /// `(distance, row)` top-k buffer of the pruned windowed row ordering.
    row_dist: Vec<(f64, usize)>,
}

impl AllocScratch {
    /// Creates scratch space matching an evaluator's wirelength model.
    pub fn for_evaluator(evaluator: &CostEvaluator) -> Self {
        AllocScratch {
            scorer: TrialScorer::for_evaluator(evaluator),
            rows: Vec::new(),
            candidates: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            rows_by_distance: Vec::new(),
            prepared_cells: Vec::new(),
            row_step: Vec::new(),
            row_merge: Vec::new(),
            row_dist: Vec::new(),
        }
    }

    /// Fills `self.rows` with `allowed` (or every row when `allowed` is
    /// empty), dropping duplicate entries while preserving first-occurrence
    /// order. Duplicated allowed rows would otherwise emit the same
    /// `(row, index)` candidate twice and double-charge the
    /// `net_evaluations` / `trial_positions` work counts.
    fn fill_rows(&mut self, placement: &Placement, allowed: &[usize]) {
        self.rows.clear();
        if allowed.is_empty() {
            self.rows.extend(0..placement.num_rows());
        } else {
            for &row in allowed {
                if !self.rows.contains(&row) {
                    self.rows.push(row);
                }
            }
        }
    }
}

/// Which allocation method re-inserts the selected cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AllocationStrategy {
    /// The paper's method, as used for the reproduced experiments: compute
    /// the cell's *optimal* position (median of its connected cells), then
    /// examine a bounded window of candidate slots around it and take the
    /// best. The window keeps the per-cell allocation cost independent of the
    /// layout size, which is what makes the paper's Type II per-iteration
    /// speed-up roughly proportional to the processor count.
    #[default]
    WindowedBestFit,
    /// Exhaustive best fit: examine every candidate slot in every allowed row
    /// and take the best (the most greedy and most expensive variant; kept
    /// for the allocation ablation).
    SortedBestFit,
    /// Take the first slot that improves on the cell's previous cost; fall
    /// back to the best seen if none improves.
    FirstFit,
    /// Examine a bounded random sample of slots and take the best of those.
    RandomWindow,
}

/// Configuration of the allocation operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationConfig {
    /// Allocation method.
    pub strategy: AllocationStrategy,
    /// Examine only every `trial_stride`-th insertion index within a row
    /// (1 = every slot). Applies to the exhaustive strategies; larger strides
    /// trade fidelity for speed and are used by the fast test configurations.
    pub trial_stride: usize,
    /// Number of random slots examined by [`AllocationStrategy::RandomWindow`].
    pub random_window: usize,
    /// Maximum number of candidate slots examined by
    /// [`AllocationStrategy::WindowedBestFit`] (spread over the rows nearest
    /// the cell's optimal row).
    pub best_fit_window: usize,
    /// Number of rows (centred on the optimal row) considered by
    /// [`AllocationStrategy::WindowedBestFit`].
    pub best_fit_rows: usize,
    /// Enable the bound-pruned trial scan (and the summary-derived windowed
    /// candidate search it feeds): candidates whose score lower bound
    /// (exact per-net length bounds folded in the score's own accumulation
    /// order) already exceeds the best score seen are skipped without being
    /// scored. The strict-inequality rule keeps the argmin and its
    /// first-index tie-break — and therefore every placement, trajectory and
    /// work count — bitwise identical to the exhaustive scan; `false` forces
    /// the legacy full scan (A/B baseline and differential tests).
    pub bound_pruning: bool,
}

impl Default for AllocationConfig {
    fn default() -> Self {
        AllocationConfig {
            strategy: AllocationStrategy::WindowedBestFit,
            trial_stride: 1,
            random_window: 32,
            best_fit_window: 48,
            best_fit_rows: 3,
            bound_pruning: true,
        }
    }
}

impl AllocationConfig {
    /// The exhaustive best-fit configuration (every slot of every allowed
    /// row), used by the allocation ablation.
    pub fn exhaustive() -> Self {
        AllocationConfig {
            strategy: AllocationStrategy::SortedBestFit,
            ..Default::default()
        }
    }
}

/// Work performed by one allocation call; the cluster simulation charges
/// virtual compute time proportional to `net_evaluations`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationStats {
    /// Number of cells re-inserted.
    pub cells_allocated: usize,
    /// Number of candidate slots examined.
    pub trial_positions: usize,
    /// Number of per-net length estimations performed while scoring slots.
    pub net_evaluations: usize,
}

impl AllocationStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &AllocationStats) {
        self.cells_allocated += other.cells_allocated;
        self.trial_positions += other.trial_positions;
        self.net_evaluations += other.net_evaluations;
    }
}

/// Sorts the selection set for allocation: cells with the lowest goodness
/// (i.e. the worst placed) are allocated first, ties broken by cell id for
/// determinism. This is the "sorted" part of sorted individual best fit.
pub fn sort_selection(selected: &mut [CellId], goodness: &[f64]) {
    selected.sort_by(|&a, &b| {
        goodness[a.index()]
            .partial_cmp(&goodness[b.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

/// Re-inserts the already-removed cell `cell` into `placement` at the slot
/// chosen by the configured strategy, restricted to `allowed_rows` (all rows
/// when empty). Returns the number of slots examined and net evaluations
/// performed.
///
/// The caller is responsible for having removed `cell` from the placement
/// (allocation operates on the partial solution `Φp`).
pub fn allocate_cell<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    cell: CellId,
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
) -> AllocationStats {
    allocate_cell_on(
        evaluator,
        scratch,
        placement,
        cell,
        config,
        allowed_rows,
        rng,
        &EvalContext::serial(),
    )
}

/// [`allocate_cell`] under an explicit [`EvalContext`]: with a chunked
/// context and enough candidate slots, the trial-scoring loop fans out over
/// the context's worker pool in index-contiguous chunks. Each chunk scans its
/// slots in index order with the serial strictly-less comparison and reports
/// its local best; the chunk-ordered merge then keeps the earliest strict
/// winner, which reproduces the serial left-to-right argmin — and therefore
/// the chosen slot, the resulting placement and the work counts — bitwise for
/// any chunk count. [`AllocationStrategy::FirstFit`] always runs serially
/// (its early exit depends on scan order).
#[allow(clippy::too_many_arguments)]
pub fn allocate_cell_on<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    cell: CellId,
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
    ctx: &EvalContext<'_>,
) -> AllocationStats {
    allocate_cell_inner(
        evaluator,
        scratch,
        placement,
        cell,
        config,
        allowed_rows,
        rng,
        ctx,
        None,
    )
}

/// The shared body of [`allocate_cell_on`] and the wave path of
/// [`allocate_all_on`]. When `snapshot` is `Some`, the cell's per-net
/// summaries were already built (on a worker thread, against the exact
/// placement state this call observes — the caller is responsible for
/// staleness) and trial slots are scored through the snapshot instead of
/// re-running `prepare_cell`; the scores are bitwise identical either way.
#[allow(clippy::too_many_arguments)]
fn allocate_cell_inner<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    cell: CellId,
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
    ctx: &EvalContext<'_>,
    snapshot: Option<&PreparedCell>,
) -> AllocationStats {
    let nets_of_cell = evaluator.netlist().nets_of_cell(cell).len();
    let stride = config.trial_stride.max(1);

    scratch.fill_rows(placement, allowed_rows);

    // One pass over the cell's pins up front; every candidate slot below is
    // then scored from the per-net summaries in O(distinct rows). A wave
    // snapshot already holds those summaries, bit for bit. The pass runs
    // before candidate enumeration because the pruned windowed search derives
    // its optimal position from the same summaries instead of re-walking the
    // CSR.
    if snapshot.is_none() {
        scratch.scorer.prepare_cell(evaluator, placement, cell);
    }

    // Enumerate candidate slots according to the strategy.
    scratch.candidates.clear();
    if config.strategy == AllocationStrategy::WindowedBestFit {
        windowed_candidates(evaluator, placement, cell, config, scratch, snapshot);
    } else {
        for r in 0..scratch.rows.len() {
            let row = scratch.rows[r];
            let slots = placement.slots_in_row(row);
            let mut index = 0;
            while index < slots {
                scratch.candidates.push(Slot { row, index });
                index += stride;
            }
            // Always consider appending at the end of the row.
            if !(slots - 1).is_multiple_of(stride) {
                scratch.candidates.push(Slot {
                    row,
                    index: slots - 1,
                });
            }
        }
        if config.strategy == AllocationStrategy::RandomWindow
            && scratch.candidates.len() > config.random_window
        {
            scratch.candidates.shuffle(rng);
            scratch.candidates.truncate(config.random_window.max(1));
        }
    }

    let mut stats = AllocationStats {
        cells_allocated: 1,
        trial_positions: 0,
        net_evaluations: 0,
    };

    let mut best_slot = None;
    let mut best_score = f64::INFINITY;
    // Pruning is sound for every strategy; the convex early row exit
    // additionally needs candidates sorted by x within a row run, which the
    // shuffled RandomWindow list does not provide.
    let prune = config.bound_pruning;
    let sorted_runs = config.strategy != AllocationStrategy::RandomWindow;
    let fan_out = match ctx.fan_out() {
        Some((pool, chunks))
            if config.strategy != AllocationStrategy::FirstFit
                && scratch.candidates.len() >= PARALLEL_TRIAL_THRESHOLD.max(2 * chunks) =>
        {
            Some((pool, chunks))
        }
        _ => None,
    };
    if let Some((pool, chunks)) = fan_out {
        // Chunked scan: candidates are full-scanned either way (no FirstFit
        // early exit), so the work counts equal the serial loop's exactly.
        let scorer = &scratch.scorer;
        let candidates = &scratch.candidates;
        let placement = &*placement;
        let tasks: Vec<Box<dyn FnOnce() -> (f64, usize) + Send + '_>> =
            chunk_ranges(candidates.len(), chunks)
                .into_iter()
                .map(|range| {
                    Box::new(move || {
                        scan_candidates(
                            evaluator,
                            placement,
                            cell,
                            scorer,
                            snapshot,
                            candidates,
                            range,
                            prune,
                            sorted_runs,
                        )
                    }) as Box<dyn FnOnce() -> (f64, usize) + Send + '_>
                })
                .collect();
        // Chunk-ordered merge with the same strictly-less rule as the serial
        // scan: the earliest index achieving the global minimum wins.
        for (score, index) in pool.run_scoped_tasks(tasks) {
            if index != usize::MAX && score < best_score {
                best_score = score;
                best_slot = Some(candidates[index]);
            }
        }
        stats.trial_positions += candidates.len();
        stats.net_evaluations += candidates.len() * nets_of_cell;
    } else if config.strategy == AllocationStrategy::FirstFit {
        // First fit scans unpruned: its early exit depends on *scoring* each
        // slot in order, and its work count reflects where it stopped.
        for i in 0..scratch.candidates.len() {
            let slot = scratch.candidates[i];
            let pos = placement.trial_position(cell, slot);
            let cost = match snapshot {
                Some(prepared) => prepared.cost_at(pos),
                None => scratch.scorer.prepared_cost_at(pos),
            };
            let score = evaluator.allocation_score(&cost);
            stats.trial_positions += 1;
            stats.net_evaluations += nets_of_cell;
            let better = score < best_score;
            if better {
                best_score = score;
                best_slot = Some(slot);
            }
            if better && stats.trial_positions > 1 {
                // First fit: stop at the first slot that beats the initial one.
                break;
            }
        }
    } else {
        let (_, index) = scan_candidates(
            evaluator,
            placement,
            cell,
            &scratch.scorer,
            snapshot,
            &scratch.candidates,
            0..scratch.candidates.len(),
            prune,
            sorted_runs,
        );
        if index != usize::MAX {
            best_slot = Some(scratch.candidates[index]);
        }
        // The nominal work counts charge the full candidate list whether or
        // not the bound pruned individual scores: they feed the modeled
        // cluster time and the cross-config stats-equality tests, and the
        // *algorithmic* work of the strategy is unchanged.
        stats.trial_positions += scratch.candidates.len();
        stats.net_evaluations += scratch.candidates.len() * nets_of_cell;
    }

    let slot = best_slot.unwrap_or(Slot {
        row: scratch.rows[0],
        index: 0,
    });
    placement.insert_cell(cell, slot);
    stats
}

/// Scans `candidates[range]` with the serial strictly-less argmin and returns
/// `(best_score, best_index)` (`usize::MAX` when nothing was scored). The
/// shared scan of the serial non-FirstFit path and each chunk of the trial
/// fan-out.
///
/// With `prune` set, the scan walks the list as contiguous same-row runs:
///
/// * **run floor**: `allocation_score(bound_floor(row)) > best` skips the
///   whole run without scoring it (every candidate in the run costs at least
///   the floor, component-wise — the lower bound of the §3a invariant);
/// * **row-hoisted scoring**: surviving runs score each candidate through
///   per-net vertical constants prepared once per run
///   (`PreparedSummaries::prepare_row`), bit-identical to the full score at
///   a fraction of its cost — within a run the candidate x only moves the
///   exact horizontal trunk, so the per-candidate "bound" is *tight* and
///   pruning degenerates to the strict argmin comparison itself;
/// * **monotone tail exit** (`sorted_runs` only): once a candidate sits at
///   `x ≥ max_other_x()`, every net's trunk is on its increasing branch, so
///   all later candidates of the run score `≥` the current one
///   (component-wise through the fold) and can never *strictly* beat the
///   running best — the rest of the run is skipped.
///
/// Every skip rule respects the strict-less argmin: a skipped candidate's
/// true score can tie but never win, so the argmin index (first-wins) — and
/// with it every placement and trajectory — is bitwise identical to the
/// exhaustive scan. Under `debug_assertions` the hoisted score is
/// cross-checked bit-for-bit against the full score and every skipped
/// candidate is fully scored and checked against the value it was skipped
/// for (the always-on oracle of the differential tests).
#[allow(clippy::too_many_arguments)]
fn scan_candidates(
    evaluator: &CostEvaluator,
    placement: &Placement,
    cell: CellId,
    scorer: &TrialScorer,
    snapshot: Option<&PreparedCell>,
    candidates: &[Slot],
    range: Range<usize>,
    prune: bool,
    sorted_runs: bool,
) -> (f64, usize) {
    let score_at = |pos: (f64, f64)| -> f64 {
        let cost = match snapshot {
            Some(prepared) => prepared.cost_at(pos),
            None => scorer.prepared_cost_at(pos),
        };
        evaluator.allocation_score(&cost)
    };
    let mut best_score = f64::INFINITY;
    let mut best_index = usize::MAX;
    if !prune {
        for i in range {
            let score = score_at(placement.trial_position(cell, candidates[i]));
            if score < best_score {
                best_score = score;
                best_index = i;
            }
        }
        return (best_score, best_index);
    }

    let view: PreparedSummaries<'_> = match snapshot {
        Some(prepared) => prepared.summaries(),
        None => scorer.prepared_summaries(),
    };
    // Debug oracle: a pruned candidate must score at least its bound and
    // must not beat the best score it was pruned against.
    #[cfg(debug_assertions)]
    let check_pruned = |i: usize, bound: f64, best: f64| {
        let pos = placement.trial_position(cell, candidates[i]);
        let score = score_at(pos);
        debug_assert!(
            score >= bound && score >= best,
            "pruned candidate {i} scores {score} below its bound {bound} (best {best})"
        );
    };
    let max_other_x = view.max_other_x();
    let mut vertical: Vec<f64> = Vec::new();
    let mut i = range.start;
    while i < range.end {
        let row = candidates[i].row;
        let mut run_end = i + 1;
        while run_end < range.end && candidates[run_end].row == row {
            run_end += 1;
        }
        let floor = evaluator.allocation_score(&view.bound_floor(row as u32));
        if floor > best_score {
            #[cfg(debug_assertions)]
            for j in i..run_end {
                check_pruned(j, floor, best_score);
            }
            i = run_end;
            continue;
        }
        view.prepare_row(row as u32, &mut vertical);
        for (j, &candidate) in candidates.iter().enumerate().take(run_end).skip(i) {
            let pos = placement.trial_position(cell, candidate);
            let score = evaluator.allocation_score(&view.cost_at_in_row(pos.0, &vertical));
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                score.to_bits(),
                score_at(pos).to_bits(),
                "row-hoisted score diverged from the full score"
            );
            if score < best_score {
                best_score = score;
                best_index = j;
            }
            if sorted_runs && pos.0 >= max_other_x {
                // Monotone tail: every remaining candidate of the run sits
                // at x' ≥ x ≥ max_other_x, where the exact score is
                // non-decreasing in x — none can strictly beat `best_score`
                // (which now reflects this candidate).
                #[cfg(debug_assertions)]
                for k in j + 1..run_end {
                    check_pruned(k, score, best_score);
                }
                break;
            }
        }
        i = run_end;
    }
    (best_score, best_index)
}

/// Candidate slots for [`AllocationStrategy::WindowedBestFit`]: the cell's
/// optimal position is the median of the positions of the other cells it
/// connects to; candidates are the insertion indices closest to that x
/// coordinate in the allowed rows closest to the optimal row, capped at
/// `config.best_fit_window` slots in total.
///
/// With `config.bound_pruning` the optimal position comes straight from the
/// prepared per-net summaries (one CSR walk, already performed) instead of a
/// fresh gather-and-sort, the nearest rows from a top-k pass that evaluates
/// each row distance once, and the per-row insertion index from a binary
/// search over the rows' exact cached left edges — all bitwise identical to
/// the legacy path, which is kept verbatim as the `false` branch (the A/B
/// baseline).
fn windowed_candidates(
    evaluator: &CostEvaluator,
    placement: &Placement,
    cell: CellId,
    config: &AllocationConfig,
    scratch: &mut AllocScratch,
    snapshot: Option<&PreparedCell>,
) {
    let netlist = evaluator.netlist();
    let keep_rows = config.best_fit_rows.max(1);

    let AllocScratch {
        scorer,
        rows,
        candidates,
        xs,
        ys,
        rows_by_distance,
        row_merge,
        row_dist,
        ..
    } = scratch;

    let (opt_x, opt_y) = if config.bound_pruning {
        let view = match snapshot {
            Some(prepared) => prepared.summaries(),
            None => scorer.prepared_summaries(),
        };
        view.median_position(xs, row_merge)
            .unwrap_or_else(|| placement.position(cell))
    } else {
        // Legacy gather: median of connected-cell coordinates via sort.
        xs.clear();
        ys.clear();
        for &net in netlist.nets_of_cell(cell) {
            for &other in evaluator.net_cells(net) {
                if other == cell {
                    continue;
                }
                let (x, y) = placement.position(other);
                xs.push(x);
                ys.push(y);
            }
        }
        if xs.is_empty() {
            placement.position(cell)
        } else {
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (xs[xs.len() / 2], ys[ys.len() / 2])
        }
    };

    // Rows nearest the optimal y, limited to `best_fit_rows`. `scratch.rows`
    // is already deduplicated, so the per-row windows below cannot emit the
    // same slot twice.
    rows_by_distance.clear();
    if config.bound_pruning {
        // Top-k insertion under the same (distance, row) total order as the
        // legacy sort+truncate: identical rows in identical order, but each
        // row's distance is evaluated once instead of per comparison.
        row_dist.clear();
        for &row in rows.iter() {
            let d = ((row as f64 + 0.5) * row_height() - opt_y).abs();
            let mut pos = row_dist.len();
            while pos > 0 {
                let (pd, pr) = row_dist[pos - 1];
                if d < pd || (d == pd && row < pr) {
                    pos -= 1;
                } else {
                    break;
                }
            }
            if pos < keep_rows {
                if row_dist.len() == keep_rows {
                    row_dist.pop();
                }
                row_dist.insert(pos, (d, row));
            }
        }
        rows_by_distance.extend(row_dist.iter().map(|&(_, row)| row));
    } else {
        rows_by_distance.extend_from_slice(rows);
        rows_by_distance.sort_by(|&a, &b| {
            let da = ((a as f64 + 0.5) * row_height() - opt_y).abs();
            let db = ((b as f64 + 0.5) * row_height() - opt_y).abs();
            da.partial_cmp(&db).expect("finite").then(a.cmp(&b))
        });
        rows_by_distance.truncate(keep_rows);
    }

    let per_row = (config.best_fit_window.max(1) / rows_by_distance.len()).max(1);
    for &row in rows_by_distance.iter() {
        let cells_in_row = placement.row(row);
        let len = cells_in_row.len();
        let best_index = if config.bound_pruning {
            // Binary search over the row's insertion boundaries. Boundary i
            // is cell i's exact left edge (`x_of - width/2`, an exact
            // integer equal to the legacy cumulative-width sum), boundary
            // `len` the row's right extent (which accounts for gaps forced
            // by blocked macro spans); boundaries are non-decreasing, so
            // `partition_point` finds the first boundary ≥ opt_x and the
            // winner is that boundary or its left neighbour — ties and
            // bit-equal plateaus (zero-width cells) resolve to the smallest
            // index, exactly the legacy scan's first-wins rule.
            let left_edge = |c: CellId| placement.x_of(c) - netlist.cell(c).width as f64 / 2.0;
            let end_edge = placement.row_extent(row);
            let boundary = |i: usize| {
                if i < len {
                    left_edge(cells_in_row[i])
                } else {
                    end_edge
                }
            };
            let j = cells_in_row.partition_point(|&c| left_edge(c) < opt_x);
            let jb = if j == len && end_edge < opt_x {
                len + 1
            } else {
                j
            };
            let mut best = if jb == 0 {
                0
            } else if jb == len + 1 {
                len
            } else {
                let d_left = opt_x - boundary(jb - 1);
                let d_right = boundary(jb) - opt_x;
                if d_right < d_left {
                    jb
                } else {
                    jb - 1
                }
            };
            while best > 0 && boundary(best - 1) == boundary(best) {
                best -= 1;
            }
            best
        } else {
            // Legacy: linear scan over the row's insertion boundaries. Each
            // cell's cached left edge equals the old cumulative-width sum on
            // gap-free rows bit for bit, and — unlike a running sum — stays
            // correct when blocked macro spans force packing gaps.
            let mut best_index = len;
            let mut best_dist = f64::INFINITY;
            for (i, &c) in cells_in_row.iter().enumerate() {
                let x = placement.x_of(c) - netlist.cell(c).width as f64 / 2.0;
                let d = (x - opt_x).abs();
                if d < best_dist {
                    best_dist = d;
                    best_index = i;
                }
            }
            if (placement.row_extent(row) - opt_x).abs() < best_dist {
                best_index = len;
            }
            best_index
        };
        // Take indices around the best one.
        let half = per_row / 2;
        let lo = best_index.saturating_sub(half);
        let hi = (best_index + half.max(1)).min(len);
        for index in lo..=hi {
            candidates.push(Slot { row, index });
        }
    }
    candidates.truncate(config.best_fit_window.max(1));
}

/// Row height re-exported for the windowed candidate search (kept here so the
/// allocation module does not depend on layout internals beyond the public
/// constant).
#[inline]
pub(crate) fn row_height() -> f64 {
    vlsi_place::layout::ROW_HEIGHT
}

/// Runs the full allocation step: sorts `selected`, removes every selected
/// cell from the placement, and re-inserts them one at a time with
/// [`allocate_cell`]. `allowed_rows` restricts the target rows (used by the
/// Type II row decomposition); pass an empty slice to allow every row.
#[allow(clippy::too_many_arguments)]
pub fn allocate_all<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    selected: &mut [CellId],
    goodness: &[f64],
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
) -> AllocationStats {
    allocate_all_on(
        evaluator,
        scratch,
        placement,
        selected,
        goodness,
        config,
        allowed_rows,
        rng,
        &EvalContext::serial(),
    )
}

/// [`allocate_all`] under an explicit [`EvalContext`] — the cells are still
/// re-inserted strictly one at a time (allocation is inherently sequential:
/// every insertion changes the partial solution the next cell scores
/// against); the context parallelises each cell's *trial-scoring* loop via
/// [`allocate_cell_on`], and — for the default windowed strategy, whose
/// ~48-slot candidate list never reaches the trial fan-out threshold — the
/// `prepare_cell` summary passes of whole *waves* of upcoming cells, both of
/// which are bitwise-neutral.
///
/// The wave path is safe because a snapshot prepared at step `s` is only
/// consumed if no net neighbour of its cell currently sits in a row that
/// received an insertion after `s` (rows are re-packed on insertion, so an
/// insertion may move every pin in its row); stale snapshots are discarded
/// and the cell re-prepared serially, which is what the serial path does for
/// every cell anyway.
#[allow(clippy::too_many_arguments)]
pub fn allocate_all_on<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    selected: &mut [CellId],
    goodness: &[f64],
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
    ctx: &EvalContext<'_>,
) -> AllocationStats {
    sort_selection(selected, goodness);
    // Rip up all selected cells first: allocation operates on the partial
    // solution, exactly as in Figure 1 of the paper.
    for &cell in selected.iter() {
        placement.remove_cell(cell);
    }
    let mut stats = AllocationStats::default();
    let wave = match ctx.fan_out() {
        // Waves only pay off where the per-cell trial loop stays serial; the
        // exhaustive strategies already fan out per cell, and FirstFit /
        // RandomWindow are rng- or order-sensitive enough to keep simple.
        Some((pool, chunks))
            if config.strategy == AllocationStrategy::WindowedBestFit
                && selected.len() >= 2 * chunks =>
        {
            Some((pool, chunks))
        }
        _ => None,
    };
    if let Some((pool, chunks)) = wave {
        let wave_len = (chunks * PREPARE_WAVE_FACTOR).min(selected.len());
        let mut prepared = std::mem::take(&mut scratch.prepared_cells);
        if prepared.len() < wave_len {
            prepared.resize_with(wave_len, PreparedCell::new);
        }
        scratch.row_step.clear();
        scratch.row_step.resize(placement.num_rows(), 0);
        let mut row_step = std::mem::take(&mut scratch.row_step);
        let model = evaluator.wirelength_model();
        let mut step: u64 = 0;
        let mut start = 0;
        while start < selected.len() {
            let end = (start + wave_len).min(selected.len());
            let wave_cells = &selected[start..end];
            let wave_step = step;
            // Fan the summary passes of the whole wave out over the pool.
            // Every selected cell is ripped up and the placement is immutable
            // for the duration of the epoch, so each snapshot is built against
            // exactly the state the serial path would observe at `wave_step`.
            {
                let placement = &*placement;
                let mut rest = &mut prepared[..wave_cells.len()];
                let mut at = 0;
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
                for range in chunk_ranges(wave_cells.len(), chunks) {
                    let (bufs, tail) = std::mem::take(&mut rest).split_at_mut(range.len());
                    rest = tail;
                    let cells = &wave_cells[at..at + range.len()];
                    at += range.len();
                    tasks.push(Box::new(move || {
                        for (buf, &cell) in bufs.iter_mut().zip(cells) {
                            buf.prepare(evaluator, placement, cell, model);
                        }
                    }));
                }
                pool.run_scoped_tasks(tasks);
            }
            for (i, &cell) in wave_cells.iter().enumerate() {
                let fresh = snapshot_is_fresh(evaluator, placement, cell, &row_step, wave_step);
                let s = allocate_cell_inner(
                    evaluator,
                    scratch,
                    placement,
                    cell,
                    config,
                    allowed_rows,
                    rng,
                    ctx,
                    fresh.then_some(&prepared[i]),
                );
                stats.merge(&s);
                step += 1;
                row_step[placement.row_of(cell)] = step;
            }
            start = end;
        }
        scratch.prepared_cells = prepared;
        scratch.row_step = row_step;
    } else {
        for &cell in selected.iter() {
            let s = allocate_cell_on(
                evaluator,
                scratch,
                placement,
                cell,
                config,
                allowed_rows,
                rng,
                ctx,
            );
            stats.merge(&s);
        }
    }
    stats
}

/// `true` when a wave snapshot prepared at `wave_step` is still bitwise
/// exact for `cell`: none of its net neighbours sits in a row that received
/// an insertion after the wave was prepared. Insertions re-pack their
/// destination row, so this row-granular check conservatively covers both a
/// neighbour being re-inserted *and* a neighbour being shifted by someone
/// else's insertion. Still-ripped-up neighbours keep their last coordinates
/// (exactly what the snapshot and a fresh serial prepare would both see);
/// their stale row assignment can only cause a false *re-prepare*, never a
/// false acceptance.
fn snapshot_is_fresh(
    evaluator: &CostEvaluator,
    placement: &Placement,
    cell: CellId,
    row_step: &[u64],
    wave_step: u64,
) -> bool {
    evaluator.netlist().nets_of_cell(cell).iter().all(|&net| {
        evaluator
            .net_cells(net)
            .iter()
            .all(|&nb| nb == cell || row_step[placement.row_of(nb)] <= wave_step)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;
    use vlsi_place::goodness::GoodnessEvaluator;

    fn setup() -> (CostEvaluator, GoodnessEvaluator, Placement) {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("alloc_test", 140, 17)).generate(),
        );
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let placement = Placement::round_robin(&nl, 8);
        (eval.clone(), GoodnessEvaluator::new(eval), placement)
    }

    #[test]
    fn sort_selection_puts_worst_cells_first() {
        let goodness = vec![0.9, 0.1, 0.5, 0.1];
        let mut selected = vec![CellId(0), CellId(2), CellId(3), CellId(1)];
        sort_selection(&mut selected, &goodness);
        assert_eq!(selected, vec![CellId(1), CellId(3), CellId(2), CellId(0)]);
    }

    #[test]
    fn allocation_preserves_placement_legality() {
        let (eval, ge, mut placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let mut selected: Vec<CellId> = nl.cell_ids().take(30).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        allocate_all(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            &mut selected,
            &goodness,
            &AllocationConfig::default(),
            &[],
            &mut rng,
        );
        placement.validate(&nl).unwrap();
    }

    #[test]
    fn best_fit_does_not_worsen_a_single_cell_much() {
        // Re-allocating a single cell with best fit keeps the cost of its
        // incident nets within a small tolerance of its previous cost: its
        // previous slot is among the candidates, and the trial estimate can
        // differ from the realised cost only by the row shift caused by the
        // cell's own width (other cells in the target row slide by at most
        // the cell width when it is inserted).
        let (eval, _, mut placement) = setup();
        let nl = eval.netlist().clone();
        let cell = nl
            .cell_ids()
            .find(|&c| nl.nets_of_cell(c).len() >= 2)
            .unwrap();
        let before = eval.allocation_score(&eval.cell_cost(&placement, cell));
        let slack = nl.cell(cell).width as f64 * 2.0 * nl.nets_of_cell(cell).len() as f64;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        placement.remove_cell(cell);
        allocate_cell(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            cell,
            &AllocationConfig::exhaustive(),
            &[],
            &mut rng,
        );
        let after = eval.allocation_score(&eval.cell_cost(&placement, cell));
        assert!(
            after <= before + slack,
            "best fit must not noticeably worsen the cell: before {before}, after {after}"
        );
        placement.validate(&nl).unwrap();
    }

    #[test]
    fn allocation_respects_allowed_rows() {
        let (eval, ge, mut placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let mut selected: Vec<CellId> = nl.cell_ids().take(40).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let allowed = vec![2usize, 3];
        allocate_all(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            &mut selected,
            &goodness,
            &AllocationConfig::default(),
            &allowed,
            &mut rng,
        );
        placement.validate(&nl).unwrap();
        for cell in nl.cell_ids().take(40) {
            assert!(
                allowed.contains(&placement.row_of(cell)),
                "cell {cell} ended in row {}",
                placement.row_of(cell)
            );
        }
    }

    #[test]
    fn stats_count_work() {
        let (eval, ge, mut placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let mut selected: Vec<CellId> = nl.cell_ids().take(10).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let stats = allocate_all(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            &mut selected,
            &goodness,
            &AllocationConfig::default(),
            &[],
            &mut rng,
        );
        assert_eq!(stats.cells_allocated, 10);
        assert!(stats.trial_positions >= 10 * placement.num_rows());
        assert!(stats.net_evaluations >= stats.trial_positions);
    }

    #[test]
    fn stride_reduces_trial_positions() {
        let (eval, ge, placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let run = |stride: usize| {
            let mut p = placement.clone();
            let mut selected: Vec<CellId> = nl.cell_ids().take(20).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            allocate_all(
                &eval,
                &mut AllocScratch::for_evaluator(&eval),
                &mut p,
                &mut selected,
                &goodness,
                &AllocationConfig {
                    strategy: AllocationStrategy::SortedBestFit,
                    trial_stride: stride,
                    ..Default::default()
                },
                &[],
                &mut rng,
            )
        };
        let full = run(1);
        let strided = run(4);
        assert!(strided.trial_positions < full.trial_positions / 2);
    }

    #[test]
    fn random_window_bounds_work() {
        let (eval, ge, mut placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let mut selected: Vec<CellId> = nl.cell_ids().take(15).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let stats = allocate_all(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            &mut selected,
            &goodness,
            &AllocationConfig {
                strategy: AllocationStrategy::RandomWindow,
                random_window: 8,
                ..Default::default()
            },
            &[],
            &mut rng,
        );
        assert!(stats.trial_positions <= 15 * 8);
        placement.validate(&nl).unwrap();
    }

    #[test]
    fn first_fit_examines_no_more_slots_than_best_fit() {
        let (eval, ge, placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let run = |strategy: AllocationStrategy| {
            let mut p = placement.clone();
            let mut selected: Vec<CellId> = nl.cell_ids().take(25).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            allocate_all(
                &eval,
                &mut AllocScratch::for_evaluator(&eval),
                &mut p,
                &mut selected,
                &goodness,
                &AllocationConfig {
                    strategy,
                    ..Default::default()
                },
                &[],
                &mut rng,
            )
        };
        let best = run(AllocationStrategy::SortedBestFit);
        let first = run(AllocationStrategy::FirstFit);
        assert!(first.trial_positions <= best.trial_positions);
    }

    #[test]
    fn duplicate_allowed_rows_do_not_double_charge_stats() {
        // Regression: overlapping/duplicated allowed-rows input used to emit
        // the same (row, index) candidate several times, inflating the
        // trial_positions / net_evaluations work counts the cluster
        // simulation charges for. The candidate set must depend only on the
        // *set* of allowed rows.
        let (eval, _, placement) = setup();
        let nl = eval.netlist().clone();
        let cell = nl
            .cell_ids()
            .find(|&c| nl.nets_of_cell(c).len() >= 2)
            .unwrap();
        for strategy in [
            AllocationStrategy::WindowedBestFit,
            AllocationStrategy::SortedBestFit,
        ] {
            let config = AllocationConfig {
                strategy,
                ..Default::default()
            };
            let run = |allowed: &[usize]| {
                let mut p = placement.clone();
                let mut scratch = AllocScratch::for_evaluator(&eval);
                let mut rng = ChaCha8Rng::seed_from_u64(8);
                p.remove_cell(cell);
                let stats = allocate_cell(
                    &eval,
                    &mut scratch,
                    &mut p,
                    cell,
                    &config,
                    allowed,
                    &mut rng,
                );
                (stats, p.slot_of(cell))
            };
            let (clean, slot_clean) = run(&[2, 3, 4]);
            let (dup, slot_dup) = run(&[2, 3, 2, 4, 3, 2]);
            assert_eq!(
                clean.trial_positions, dup.trial_positions,
                "{strategy:?}: duplicated rows must not add trial positions"
            );
            assert_eq!(clean.net_evaluations, dup.net_evaluations);
            assert_eq!(slot_clean, slot_dup, "{strategy:?}: same best slot");
        }
    }

    #[test]
    fn chunked_trial_scoring_is_bitwise_serial() {
        // The intra-rank fan-out may only change *where* slots are scored:
        // the chosen slots, the resulting placement and the work counts must
        // equal the serial scan for every chunk count. Exhaustive best fit on
        // a single-row layout gives a candidate list long past the fan-out
        // threshold with a small circuit.
        use cluster_sim::comm::WorkerPool;
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("alloc_par_test", 400, 19)).generate(),
        );
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let ge = GoodnessEvaluator::new(eval.clone());
        let placement = Placement::round_robin(&nl, 2);
        let goodness = ge.all_goodness(&placement);
        let config = AllocationConfig::exhaustive();

        let run = |ctx: &EvalContext<'_>| {
            let mut p = placement.clone();
            let mut selected: Vec<CellId> = nl.cell_ids().take(12).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let stats = allocate_all_on(
                &eval,
                &mut AllocScratch::for_evaluator(&eval),
                &mut p,
                &mut selected,
                &goodness,
                &config,
                &[],
                &mut rng,
                ctx,
            );
            (stats, p)
        };

        let (serial_stats, serial_placement) = run(&EvalContext::serial());
        assert!(
            serial_stats.trial_positions / serial_stats.cells_allocated >= PARALLEL_TRIAL_THRESHOLD,
            "test must exercise the fan-out path"
        );
        let pool = WorkerPool::new(2);
        for chunks in [2usize, 3, 4, 7] {
            let (stats, p) = run(&EvalContext::chunked(&pool, chunks));
            assert_eq!(
                serial_stats, stats,
                "chunks={chunks}: work counts must match"
            );
            for row in 0..p.num_rows() {
                assert_eq!(
                    serial_placement.row(row),
                    p.row(row),
                    "chunks={chunks}: placement must be bitwise serial"
                );
            }
        }
    }

    #[test]
    fn wave_prepared_windowed_allocation_is_bitwise_serial() {
        // The default windowed strategy never reaches the per-cell trial
        // fan-out threshold, so under a chunked context `allocate_all_on`
        // prepares whole waves of cells in parallel instead. The chosen
        // slots, the resulting placement and the work counts must equal the
        // serial pass bitwise for every worker/chunk combination — stale
        // snapshots (cells whose neighbourhood changed mid-wave) must be
        // silently re-prepared, never mis-scored.
        use cluster_sim::comm::WorkerPool;
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("alloc_wave_test", 300, 23)).generate(),
        );
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let ge = GoodnessEvaluator::new(eval.clone());
        let placement = Placement::round_robin(&nl, 6);
        let goodness = ge.all_goodness(&placement);
        let config = AllocationConfig::default();

        let run = |ctx: &EvalContext<'_>| {
            let mut p = placement.clone();
            // A dense selection set maximises mid-wave staleness: many
            // selected cells share nets, so later wave members are invalidated
            // by earlier insertions.
            let mut selected: Vec<CellId> = nl.cell_ids().take(120).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(10);
            let stats = allocate_all_on(
                &eval,
                &mut AllocScratch::for_evaluator(&eval),
                &mut p,
                &mut selected,
                &goodness,
                &config,
                &[],
                &mut rng,
                ctx,
            );
            (stats, p)
        };

        let (serial_stats, serial_placement) = run(&EvalContext::serial());
        for (workers, chunks) in [(1usize, 2usize), (2, 2), (2, 3), (4, 4), (2, 7)] {
            let pool = WorkerPool::new(workers);
            let (stats, p) = run(&EvalContext::chunked(&pool, chunks));
            assert_eq!(
                serial_stats, stats,
                "workers={workers} chunks={chunks}: work counts must match"
            );
            for row in 0..p.num_rows() {
                assert_eq!(
                    serial_placement.row(row),
                    p.row(row),
                    "workers={workers} chunks={chunks}: placement must be bitwise serial"
                );
            }
        }
    }

    #[test]
    fn bound_pruning_is_bitwise_identical_to_full_scan() {
        // The §3a pruning invariant, end to end: for every strategy the
        // pruned scan must produce the same placement and the same nominal
        // work counts as the legacy full scan. (In debug builds the scan
        // additionally oracle-checks every pruned candidate's true score
        // against its bound.)
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("alloc_prune_test", 260, 31)).generate(),
        );
        for objectives in [
            Objectives::WirelengthPower,
            Objectives::WirelengthPowerDelay,
        ] {
            let eval = CostEvaluator::new(Arc::clone(&nl), objectives);
            let ge = GoodnessEvaluator::new(eval.clone());
            let placement = Placement::round_robin(&nl, 7);
            let goodness = ge.all_goodness(&placement);
            for strategy in [
                AllocationStrategy::WindowedBestFit,
                AllocationStrategy::SortedBestFit,
                AllocationStrategy::RandomWindow,
            ] {
                let run = |bound_pruning: bool| {
                    let mut p = placement.clone();
                    let mut selected: Vec<CellId> = nl.cell_ids().take(80).collect();
                    let mut rng = ChaCha8Rng::seed_from_u64(11);
                    let stats = allocate_all(
                        &eval,
                        &mut AllocScratch::for_evaluator(&eval),
                        &mut p,
                        &mut selected,
                        &goodness,
                        &AllocationConfig {
                            strategy,
                            bound_pruning,
                            ..Default::default()
                        },
                        &[],
                        &mut rng,
                    );
                    (stats, p)
                };
                let (legacy_stats, legacy_placement) = run(false);
                let (pruned_stats, pruned_placement) = run(true);
                assert_eq!(
                    legacy_stats, pruned_stats,
                    "{objectives:?}/{strategy:?}: nominal work counts must not change"
                );
                for row in 0..legacy_placement.num_rows() {
                    assert_eq!(
                        legacy_placement.row(row),
                        pruned_placement.row(row),
                        "{objectives:?}/{strategy:?}: pruning must be bitwise invisible"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_span_allocation_matches_exhaustive_oracle() {
        // Mixed-size differential: on a circuit with fixed pads and
        // multi-row macros (blocked spans in several rows) the bound-pruned
        // windowed scan must pick the same slots, produce the same nominal
        // work counts and leave the same placement as the exhaustive
        // full-scan oracle — and neither may ever move a fixed cell.
        use vlsi_netlist::generator::MixedSizeSpec;
        let nl = Arc::new(
            CircuitGenerator::new(
                GeneratorConfig::sized("alloc_blocked_test", 220, 23).with_mixed(MixedSizeSpec {
                    num_macros: 3,
                    macro_height: 3,
                    pad_ring: true,
                }),
            )
            .generate(),
        );
        assert!(nl.has_fixed_cells());
        for objectives in [
            Objectives::WirelengthPower,
            Objectives::WirelengthPowerDelay,
        ] {
            let eval = CostEvaluator::new(Arc::clone(&nl), objectives);
            let ge = GoodnessEvaluator::new(eval.clone());
            let placement = Placement::round_robin(&nl, 9);
            assert!(
                (0..9).any(|r| !placement.blocked_spans(r).is_empty()),
                "the macro layout must actually block spans"
            );
            let goodness = ge.all_goodness(&placement);
            for strategy in [
                AllocationStrategy::WindowedBestFit,
                AllocationStrategy::SortedBestFit,
                AllocationStrategy::RandomWindow,
            ] {
                let run = |bound_pruning: bool| {
                    let mut p = placement.clone();
                    let mut selected: Vec<CellId> = nl
                        .cell_ids()
                        .filter(|&c| !nl.cell(c).fixed)
                        .take(80)
                        .collect();
                    let mut rng = ChaCha8Rng::seed_from_u64(23);
                    let stats = allocate_all(
                        &eval,
                        &mut AllocScratch::for_evaluator(&eval),
                        &mut p,
                        &mut selected,
                        &goodness,
                        &AllocationConfig {
                            strategy,
                            bound_pruning,
                            ..Default::default()
                        },
                        &[],
                        &mut rng,
                    );
                    (stats, p)
                };
                let (oracle_stats, oracle_placement) = run(false);
                let (pruned_stats, pruned_placement) = run(true);
                assert_eq!(
                    oracle_stats, pruned_stats,
                    "{objectives:?}/{strategy:?}: nominal work counts must not change"
                );
                for row in 0..oracle_placement.num_rows() {
                    assert_eq!(
                        oracle_placement.row(row),
                        pruned_placement.row(row),
                        "{objectives:?}/{strategy:?}: pruning must be bitwise invisible"
                    );
                }
                for c in nl.cell_ids().filter(|&c| nl.cell(c).fixed) {
                    assert_eq!(
                        pruned_placement.x_of(c).to_bits(),
                        placement.x_of(c).to_bits(),
                        "{objectives:?}/{strategy:?}: fixed cell moved"
                    );
                }
                pruned_placement.validate(&nl).unwrap();
            }
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AllocationStats {
            cells_allocated: 1,
            trial_positions: 10,
            net_evaluations: 30,
        };
        a.merge(&AllocationStats {
            cells_allocated: 2,
            trial_positions: 5,
            net_evaluations: 15,
        });
        assert_eq!(a.cells_allocated, 3);
        assert_eq!(a.trial_positions, 15);
        assert_eq!(a.net_evaluations, 45);
    }
}
