//! The SimE Allocation operator.
//!
//! Allocation takes the selection set `S` and the partial solution `Φp`
//! (the placement with the selected cells ripped up) and re-inserts each
//! selected cell, trying to improve the solution without being too greedy
//! (Section 3). The paper uses the *sorted individual best fit* method:
//! the selected cells are sorted and each is placed, one at a time, at the
//! trial slot with the lowest cost over its incident nets.
//!
//! Profiling in Section 4 of the paper attributes ~98 % of the serial runtime
//! to this operator, because every cell examines every insertion slot of the
//! layout (each of which requires re-estimating the lengths of the cell's
//! nets). That observation drives all three parallelization strategies, so
//! this module reports detailed work counts ([`AllocationStats`]) that the
//! cluster simulation uses to charge virtual compute time.
//!
//! Besides best fit, a first-fit and a random-window variant are provided for
//! the ablation study (experiment E6 in `DESIGN.md`) and as building blocks
//! for the search-diversification ideas discussed in Section 7 of the paper.

use crate::parallel::{chunk_ranges, EvalContext};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use vlsi_netlist::CellId;
use vlsi_place::cost::CostEvaluator;
use vlsi_place::kernel::{PreparedCell, TrialScorer};
use vlsi_place::layout::{Placement, Slot};

/// Minimum candidate count before the trial-scoring loop fans out across
/// the worker pool: below this, the per-task dispatch overhead exceeds the
/// scoring work (the default windowed search examines ~48 slots and stays
/// serial; the exhaustive extended-tier searches examine thousands and
/// parallelise well).
const PARALLEL_TRIAL_THRESHOLD: usize = 256;

/// Cells prepared per parallel wave, as a multiple of the context's chunk
/// count. The wave must be long enough to amortise one epoch of dispatch
/// overhead over many `prepare_cell` passes, but short enough that few
/// snapshots go stale (a snapshot is discarded when a net neighbour's row
/// received an insertion after the wave was prepared).
const PREPARE_WAVE_FACTOR: usize = 8;

/// Reusable buffers for the allocation operator. Everything the former
/// implementation allocated per cell (candidate lists, row orderings, the
/// median buffers of the windowed search) and per *slot* (the pin buffer and
/// Steiner sort inside trial scoring, now owned by the embedded
/// [`TrialScorer`]) lives here, so a full allocation pass performs no heap
/// allocation. One instance per worker thread.
#[derive(Debug, Clone)]
pub struct AllocScratch {
    /// The allocation-free trial scorer (shared with the engine's evaluation
    /// step, which uses it to refresh the net-length cache).
    pub scorer: TrialScorer,
    /// Deduplicated target rows for the current cell.
    rows: Vec<usize>,
    /// Candidate slots for the current cell.
    candidates: Vec<Slot>,
    /// Connected-cell x coordinates (windowed search median).
    xs: Vec<f64>,
    /// Connected-cell y coordinates (windowed search median).
    ys: Vec<f64>,
    /// Rows ordered by distance from the optimal y (windowed search).
    rows_by_distance: Vec<usize>,
    /// Per-cell snapshot buffers for the parallel prepare wave of
    /// [`allocate_all_on`] (reused across waves and calls).
    prepared_cells: Vec<PreparedCell>,
    /// Step counter of the last insertion into each row within the current
    /// allocation pass (wave staleness tracking).
    row_step: Vec<u64>,
}

impl AllocScratch {
    /// Creates scratch space matching an evaluator's wirelength model.
    pub fn for_evaluator(evaluator: &CostEvaluator) -> Self {
        AllocScratch {
            scorer: TrialScorer::for_evaluator(evaluator),
            rows: Vec::new(),
            candidates: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            rows_by_distance: Vec::new(),
            prepared_cells: Vec::new(),
            row_step: Vec::new(),
        }
    }

    /// Fills `self.rows` with `allowed` (or every row when `allowed` is
    /// empty), dropping duplicate entries while preserving first-occurrence
    /// order. Duplicated allowed rows would otherwise emit the same
    /// `(row, index)` candidate twice and double-charge the
    /// `net_evaluations` / `trial_positions` work counts.
    fn fill_rows(&mut self, placement: &Placement, allowed: &[usize]) {
        self.rows.clear();
        if allowed.is_empty() {
            self.rows.extend(0..placement.num_rows());
        } else {
            for &row in allowed {
                if !self.rows.contains(&row) {
                    self.rows.push(row);
                }
            }
        }
    }
}

/// Which allocation method re-inserts the selected cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AllocationStrategy {
    /// The paper's method, as used for the reproduced experiments: compute
    /// the cell's *optimal* position (median of its connected cells), then
    /// examine a bounded window of candidate slots around it and take the
    /// best. The window keeps the per-cell allocation cost independent of the
    /// layout size, which is what makes the paper's Type II per-iteration
    /// speed-up roughly proportional to the processor count.
    #[default]
    WindowedBestFit,
    /// Exhaustive best fit: examine every candidate slot in every allowed row
    /// and take the best (the most greedy and most expensive variant; kept
    /// for the allocation ablation).
    SortedBestFit,
    /// Take the first slot that improves on the cell's previous cost; fall
    /// back to the best seen if none improves.
    FirstFit,
    /// Examine a bounded random sample of slots and take the best of those.
    RandomWindow,
}

/// Configuration of the allocation operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationConfig {
    /// Allocation method.
    pub strategy: AllocationStrategy,
    /// Examine only every `trial_stride`-th insertion index within a row
    /// (1 = every slot). Applies to the exhaustive strategies; larger strides
    /// trade fidelity for speed and are used by the fast test configurations.
    pub trial_stride: usize,
    /// Number of random slots examined by [`AllocationStrategy::RandomWindow`].
    pub random_window: usize,
    /// Maximum number of candidate slots examined by
    /// [`AllocationStrategy::WindowedBestFit`] (spread over the rows nearest
    /// the cell's optimal row).
    pub best_fit_window: usize,
    /// Number of rows (centred on the optimal row) considered by
    /// [`AllocationStrategy::WindowedBestFit`].
    pub best_fit_rows: usize,
}

impl Default for AllocationConfig {
    fn default() -> Self {
        AllocationConfig {
            strategy: AllocationStrategy::WindowedBestFit,
            trial_stride: 1,
            random_window: 32,
            best_fit_window: 48,
            best_fit_rows: 3,
        }
    }
}

impl AllocationConfig {
    /// The exhaustive best-fit configuration (every slot of every allowed
    /// row), used by the allocation ablation.
    pub fn exhaustive() -> Self {
        AllocationConfig {
            strategy: AllocationStrategy::SortedBestFit,
            ..Default::default()
        }
    }
}

/// Work performed by one allocation call; the cluster simulation charges
/// virtual compute time proportional to `net_evaluations`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationStats {
    /// Number of cells re-inserted.
    pub cells_allocated: usize,
    /// Number of candidate slots examined.
    pub trial_positions: usize,
    /// Number of per-net length estimations performed while scoring slots.
    pub net_evaluations: usize,
}

impl AllocationStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &AllocationStats) {
        self.cells_allocated += other.cells_allocated;
        self.trial_positions += other.trial_positions;
        self.net_evaluations += other.net_evaluations;
    }
}

/// Sorts the selection set for allocation: cells with the lowest goodness
/// (i.e. the worst placed) are allocated first, ties broken by cell id for
/// determinism. This is the "sorted" part of sorted individual best fit.
pub fn sort_selection(selected: &mut [CellId], goodness: &[f64]) {
    selected.sort_by(|&a, &b| {
        goodness[a.index()]
            .partial_cmp(&goodness[b.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

/// Re-inserts the already-removed cell `cell` into `placement` at the slot
/// chosen by the configured strategy, restricted to `allowed_rows` (all rows
/// when empty). Returns the number of slots examined and net evaluations
/// performed.
///
/// The caller is responsible for having removed `cell` from the placement
/// (allocation operates on the partial solution `Φp`).
pub fn allocate_cell<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    cell: CellId,
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
) -> AllocationStats {
    allocate_cell_on(
        evaluator,
        scratch,
        placement,
        cell,
        config,
        allowed_rows,
        rng,
        &EvalContext::serial(),
    )
}

/// [`allocate_cell`] under an explicit [`EvalContext`]: with a chunked
/// context and enough candidate slots, the trial-scoring loop fans out over
/// the context's worker pool in index-contiguous chunks. Each chunk scans its
/// slots in index order with the serial strictly-less comparison and reports
/// its local best; the chunk-ordered merge then keeps the earliest strict
/// winner, which reproduces the serial left-to-right argmin — and therefore
/// the chosen slot, the resulting placement and the work counts — bitwise for
/// any chunk count. [`AllocationStrategy::FirstFit`] always runs serially
/// (its early exit depends on scan order).
#[allow(clippy::too_many_arguments)]
pub fn allocate_cell_on<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    cell: CellId,
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
    ctx: &EvalContext<'_>,
) -> AllocationStats {
    allocate_cell_inner(
        evaluator,
        scratch,
        placement,
        cell,
        config,
        allowed_rows,
        rng,
        ctx,
        None,
    )
}

/// The shared body of [`allocate_cell_on`] and the wave path of
/// [`allocate_all_on`]. When `snapshot` is `Some`, the cell's per-net
/// summaries were already built (on a worker thread, against the exact
/// placement state this call observes — the caller is responsible for
/// staleness) and trial slots are scored through the snapshot instead of
/// re-running `prepare_cell`; the scores are bitwise identical either way.
#[allow(clippy::too_many_arguments)]
fn allocate_cell_inner<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    cell: CellId,
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
    ctx: &EvalContext<'_>,
    snapshot: Option<&PreparedCell>,
) -> AllocationStats {
    let nets_of_cell = evaluator.netlist().nets_of_cell(cell).len();
    let stride = config.trial_stride.max(1);

    scratch.fill_rows(placement, allowed_rows);

    // Enumerate candidate slots according to the strategy.
    scratch.candidates.clear();
    if config.strategy == AllocationStrategy::WindowedBestFit {
        windowed_candidates(evaluator, placement, cell, config, scratch);
    } else {
        for r in 0..scratch.rows.len() {
            let row = scratch.rows[r];
            let slots = placement.slots_in_row(row);
            let mut index = 0;
            while index < slots {
                scratch.candidates.push(Slot { row, index });
                index += stride;
            }
            // Always consider appending at the end of the row.
            if !(slots - 1).is_multiple_of(stride) {
                scratch.candidates.push(Slot {
                    row,
                    index: slots - 1,
                });
            }
        }
        if config.strategy == AllocationStrategy::RandomWindow
            && scratch.candidates.len() > config.random_window
        {
            scratch.candidates.shuffle(rng);
            scratch.candidates.truncate(config.random_window.max(1));
        }
    }

    let mut stats = AllocationStats {
        cells_allocated: 1,
        trial_positions: 0,
        net_evaluations: 0,
    };

    let mut best_slot = None;
    let mut best_score = f64::INFINITY;
    // One pass over the cell's pins up front; every candidate slot below is
    // then scored from the per-net summaries in O(distinct rows). A wave
    // snapshot already holds those summaries, bit for bit.
    if snapshot.is_none() {
        scratch.scorer.prepare_cell(evaluator, placement, cell);
    }
    let fan_out = match ctx.fan_out() {
        Some((pool, chunks))
            if config.strategy != AllocationStrategy::FirstFit
                && scratch.candidates.len() >= PARALLEL_TRIAL_THRESHOLD.max(2 * chunks) =>
        {
            Some((pool, chunks))
        }
        _ => None,
    };
    if let Some((pool, chunks)) = fan_out {
        // Chunked scan: candidates are full-scanned either way (no FirstFit
        // early exit), so the work counts equal the serial loop's exactly.
        let scorer = &scratch.scorer;
        let candidates = &scratch.candidates;
        let placement = &*placement;
        let tasks: Vec<Box<dyn FnOnce() -> (f64, usize) + Send + '_>> =
            chunk_ranges(candidates.len(), chunks)
                .into_iter()
                .map(|range| {
                    Box::new(move || {
                        let mut local_score = f64::INFINITY;
                        let mut local_index = usize::MAX;
                        for i in range {
                            let pos = placement.trial_position(cell, candidates[i]);
                            let cost = match snapshot {
                                Some(prepared) => prepared.cost_at(pos),
                                None => scorer.prepared_cost_at(pos),
                            };
                            let score = evaluator.allocation_score(&cost);
                            if score < local_score {
                                local_score = score;
                                local_index = i;
                            }
                        }
                        (local_score, local_index)
                    }) as Box<dyn FnOnce() -> (f64, usize) + Send + '_>
                })
                .collect();
        // Chunk-ordered merge with the same strictly-less rule as the serial
        // scan: the earliest index achieving the global minimum wins.
        for (score, index) in pool.run_scoped_tasks(tasks) {
            if index != usize::MAX && score < best_score {
                best_score = score;
                best_slot = Some(candidates[index]);
            }
        }
        stats.trial_positions += candidates.len();
        stats.net_evaluations += candidates.len() * nets_of_cell;
    } else {
        for i in 0..scratch.candidates.len() {
            let slot = scratch.candidates[i];
            let pos = placement.trial_position(cell, slot);
            let cost = match snapshot {
                Some(prepared) => prepared.cost_at(pos),
                None => scratch.scorer.prepared_cost_at(pos),
            };
            let score = evaluator.allocation_score(&cost);
            stats.trial_positions += 1;
            stats.net_evaluations += nets_of_cell;
            let better = score < best_score;
            if better {
                best_score = score;
                best_slot = Some(slot);
            }
            if config.strategy == AllocationStrategy::FirstFit
                && better
                && stats.trial_positions > 1
            {
                // First fit: stop at the first slot that beats the initial one.
                break;
            }
        }
    }

    let slot = best_slot.unwrap_or(Slot {
        row: scratch.rows[0],
        index: 0,
    });
    placement.insert_cell(cell, slot);
    stats
}

/// Candidate slots for [`AllocationStrategy::WindowedBestFit`]: the cell's
/// optimal position is the median of the positions of the other cells it
/// connects to; candidates are the insertion indices closest to that x
/// coordinate in the allowed rows closest to the optimal row, capped at
/// `config.best_fit_window` slots in total.
fn windowed_candidates(
    evaluator: &CostEvaluator,
    placement: &Placement,
    cell: CellId,
    config: &AllocationConfig,
    scratch: &mut AllocScratch,
) {
    let netlist = evaluator.netlist();

    // Optimal position: median of connected-cell coordinates.
    scratch.xs.clear();
    scratch.ys.clear();
    for &net in netlist.nets_of_cell(cell) {
        for &other in evaluator.net_cells(net) {
            if other == cell {
                continue;
            }
            let (x, y) = placement.position(other);
            scratch.xs.push(x);
            scratch.ys.push(y);
        }
    }
    let (opt_x, opt_y) = if scratch.xs.is_empty() {
        placement.position(cell)
    } else {
        scratch.xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        scratch.ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (
            scratch.xs[scratch.xs.len() / 2],
            scratch.ys[scratch.ys.len() / 2],
        )
    };

    // Rows nearest the optimal y, limited to `best_fit_rows`. `scratch.rows`
    // is already deduplicated, so the per-row windows below cannot emit the
    // same slot twice.
    scratch.rows_by_distance.clear();
    scratch.rows_by_distance.extend_from_slice(&scratch.rows);
    scratch.rows_by_distance.sort_by(|&a, &b| {
        let da = ((a as f64 + 0.5) * crate::allocation::row_height() - opt_y).abs();
        let db = ((b as f64 + 0.5) * crate::allocation::row_height() - opt_y).abs();
        da.partial_cmp(&db).expect("finite").then(a.cmp(&b))
    });
    scratch
        .rows_by_distance
        .truncate(config.best_fit_rows.max(1));

    let per_row = (config.best_fit_window.max(1) / scratch.rows_by_distance.len()).max(1);
    for &row in &scratch.rows_by_distance {
        let cells_in_row = placement.row(row);
        // Find the insertion index whose left edge is closest to opt_x by a
        // linear scan over the row's cached coordinates (cheap: no net
        // evaluations are involved).
        let mut best_index = cells_in_row.len();
        let mut best_dist = f64::INFINITY;
        let mut x = 0.0;
        for (i, &c) in cells_in_row.iter().enumerate() {
            let d = (x - opt_x).abs();
            if d < best_dist {
                best_dist = d;
                best_index = i;
            }
            x += netlist.cell(c).width as f64;
        }
        if (x - opt_x).abs() < best_dist {
            best_index = cells_in_row.len();
        }
        // Take indices around the best one.
        let half = per_row / 2;
        let lo = best_index.saturating_sub(half);
        let hi = (best_index + half.max(1)).min(cells_in_row.len());
        for index in lo..=hi {
            scratch.candidates.push(Slot { row, index });
        }
    }
    scratch.candidates.truncate(config.best_fit_window.max(1));
}

/// Row height re-exported for the windowed candidate search (kept here so the
/// allocation module does not depend on layout internals beyond the public
/// constant).
#[inline]
pub(crate) fn row_height() -> f64 {
    vlsi_place::layout::ROW_HEIGHT
}

/// Runs the full allocation step: sorts `selected`, removes every selected
/// cell from the placement, and re-inserts them one at a time with
/// [`allocate_cell`]. `allowed_rows` restricts the target rows (used by the
/// Type II row decomposition); pass an empty slice to allow every row.
#[allow(clippy::too_many_arguments)]
pub fn allocate_all<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    selected: &mut [CellId],
    goodness: &[f64],
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
) -> AllocationStats {
    allocate_all_on(
        evaluator,
        scratch,
        placement,
        selected,
        goodness,
        config,
        allowed_rows,
        rng,
        &EvalContext::serial(),
    )
}

/// [`allocate_all`] under an explicit [`EvalContext`] — the cells are still
/// re-inserted strictly one at a time (allocation is inherently sequential:
/// every insertion changes the partial solution the next cell scores
/// against); the context parallelises each cell's *trial-scoring* loop via
/// [`allocate_cell_on`], and — for the default windowed strategy, whose
/// ~48-slot candidate list never reaches the trial fan-out threshold — the
/// `prepare_cell` summary passes of whole *waves* of upcoming cells, both of
/// which are bitwise-neutral.
///
/// The wave path is safe because a snapshot prepared at step `s` is only
/// consumed if no net neighbour of its cell currently sits in a row that
/// received an insertion after `s` (rows are re-packed on insertion, so an
/// insertion may move every pin in its row); stale snapshots are discarded
/// and the cell re-prepared serially, which is what the serial path does for
/// every cell anyway.
#[allow(clippy::too_many_arguments)]
pub fn allocate_all_on<R: Rng + ?Sized>(
    evaluator: &CostEvaluator,
    scratch: &mut AllocScratch,
    placement: &mut Placement,
    selected: &mut [CellId],
    goodness: &[f64],
    config: &AllocationConfig,
    allowed_rows: &[usize],
    rng: &mut R,
    ctx: &EvalContext<'_>,
) -> AllocationStats {
    sort_selection(selected, goodness);
    // Rip up all selected cells first: allocation operates on the partial
    // solution, exactly as in Figure 1 of the paper.
    for &cell in selected.iter() {
        placement.remove_cell(cell);
    }
    let mut stats = AllocationStats::default();
    let wave = match ctx.fan_out() {
        // Waves only pay off where the per-cell trial loop stays serial; the
        // exhaustive strategies already fan out per cell, and FirstFit /
        // RandomWindow are rng- or order-sensitive enough to keep simple.
        Some((pool, chunks))
            if config.strategy == AllocationStrategy::WindowedBestFit
                && selected.len() >= 2 * chunks =>
        {
            Some((pool, chunks))
        }
        _ => None,
    };
    if let Some((pool, chunks)) = wave {
        let wave_len = (chunks * PREPARE_WAVE_FACTOR).min(selected.len());
        let mut prepared = std::mem::take(&mut scratch.prepared_cells);
        if prepared.len() < wave_len {
            prepared.resize_with(wave_len, PreparedCell::new);
        }
        scratch.row_step.clear();
        scratch.row_step.resize(placement.num_rows(), 0);
        let mut row_step = std::mem::take(&mut scratch.row_step);
        let model = evaluator.wirelength_model();
        let mut step: u64 = 0;
        let mut start = 0;
        while start < selected.len() {
            let end = (start + wave_len).min(selected.len());
            let wave_cells = &selected[start..end];
            let wave_step = step;
            // Fan the summary passes of the whole wave out over the pool.
            // Every selected cell is ripped up and the placement is immutable
            // for the duration of the epoch, so each snapshot is built against
            // exactly the state the serial path would observe at `wave_step`.
            {
                let placement = &*placement;
                let mut rest = &mut prepared[..wave_cells.len()];
                let mut at = 0;
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
                for range in chunk_ranges(wave_cells.len(), chunks) {
                    let (bufs, tail) = std::mem::take(&mut rest).split_at_mut(range.len());
                    rest = tail;
                    let cells = &wave_cells[at..at + range.len()];
                    at += range.len();
                    tasks.push(Box::new(move || {
                        for (buf, &cell) in bufs.iter_mut().zip(cells) {
                            buf.prepare(evaluator, placement, cell, model);
                        }
                    }));
                }
                pool.run_scoped_tasks(tasks);
            }
            for (i, &cell) in wave_cells.iter().enumerate() {
                let fresh = snapshot_is_fresh(evaluator, placement, cell, &row_step, wave_step);
                let s = allocate_cell_inner(
                    evaluator,
                    scratch,
                    placement,
                    cell,
                    config,
                    allowed_rows,
                    rng,
                    ctx,
                    fresh.then_some(&prepared[i]),
                );
                stats.merge(&s);
                step += 1;
                row_step[placement.row_of(cell)] = step;
            }
            start = end;
        }
        scratch.prepared_cells = prepared;
        scratch.row_step = row_step;
    } else {
        for &cell in selected.iter() {
            let s = allocate_cell_on(
                evaluator,
                scratch,
                placement,
                cell,
                config,
                allowed_rows,
                rng,
                ctx,
            );
            stats.merge(&s);
        }
    }
    stats
}

/// `true` when a wave snapshot prepared at `wave_step` is still bitwise
/// exact for `cell`: none of its net neighbours sits in a row that received
/// an insertion after the wave was prepared. Insertions re-pack their
/// destination row, so this row-granular check conservatively covers both a
/// neighbour being re-inserted *and* a neighbour being shifted by someone
/// else's insertion. Still-ripped-up neighbours keep their last coordinates
/// (exactly what the snapshot and a fresh serial prepare would both see);
/// their stale row assignment can only cause a false *re-prepare*, never a
/// false acceptance.
fn snapshot_is_fresh(
    evaluator: &CostEvaluator,
    placement: &Placement,
    cell: CellId,
    row_step: &[u64],
    wave_step: u64,
) -> bool {
    evaluator.netlist().nets_of_cell(cell).iter().all(|&net| {
        evaluator
            .net_cells(net)
            .iter()
            .all(|&nb| nb == cell || row_step[placement.row_of(nb)] <= wave_step)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;
    use vlsi_place::goodness::GoodnessEvaluator;

    fn setup() -> (CostEvaluator, GoodnessEvaluator, Placement) {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("alloc_test", 140, 17)).generate(),
        );
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let placement = Placement::round_robin(&nl, 8);
        (eval.clone(), GoodnessEvaluator::new(eval), placement)
    }

    #[test]
    fn sort_selection_puts_worst_cells_first() {
        let goodness = vec![0.9, 0.1, 0.5, 0.1];
        let mut selected = vec![CellId(0), CellId(2), CellId(3), CellId(1)];
        sort_selection(&mut selected, &goodness);
        assert_eq!(selected, vec![CellId(1), CellId(3), CellId(2), CellId(0)]);
    }

    #[test]
    fn allocation_preserves_placement_legality() {
        let (eval, ge, mut placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let mut selected: Vec<CellId> = nl.cell_ids().take(30).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        allocate_all(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            &mut selected,
            &goodness,
            &AllocationConfig::default(),
            &[],
            &mut rng,
        );
        placement.validate(&nl).unwrap();
    }

    #[test]
    fn best_fit_does_not_worsen_a_single_cell_much() {
        // Re-allocating a single cell with best fit keeps the cost of its
        // incident nets within a small tolerance of its previous cost: its
        // previous slot is among the candidates, and the trial estimate can
        // differ from the realised cost only by the row shift caused by the
        // cell's own width (other cells in the target row slide by at most
        // the cell width when it is inserted).
        let (eval, _, mut placement) = setup();
        let nl = eval.netlist().clone();
        let cell = nl
            .cell_ids()
            .find(|&c| nl.nets_of_cell(c).len() >= 2)
            .unwrap();
        let before = eval.allocation_score(&eval.cell_cost(&placement, cell));
        let slack = nl.cell(cell).width as f64 * 2.0 * nl.nets_of_cell(cell).len() as f64;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        placement.remove_cell(cell);
        allocate_cell(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            cell,
            &AllocationConfig::exhaustive(),
            &[],
            &mut rng,
        );
        let after = eval.allocation_score(&eval.cell_cost(&placement, cell));
        assert!(
            after <= before + slack,
            "best fit must not noticeably worsen the cell: before {before}, after {after}"
        );
        placement.validate(&nl).unwrap();
    }

    #[test]
    fn allocation_respects_allowed_rows() {
        let (eval, ge, mut placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let mut selected: Vec<CellId> = nl.cell_ids().take(40).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let allowed = vec![2usize, 3];
        allocate_all(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            &mut selected,
            &goodness,
            &AllocationConfig::default(),
            &allowed,
            &mut rng,
        );
        placement.validate(&nl).unwrap();
        for cell in nl.cell_ids().take(40) {
            assert!(
                allowed.contains(&placement.row_of(cell)),
                "cell {cell} ended in row {}",
                placement.row_of(cell)
            );
        }
    }

    #[test]
    fn stats_count_work() {
        let (eval, ge, mut placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let mut selected: Vec<CellId> = nl.cell_ids().take(10).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let stats = allocate_all(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            &mut selected,
            &goodness,
            &AllocationConfig::default(),
            &[],
            &mut rng,
        );
        assert_eq!(stats.cells_allocated, 10);
        assert!(stats.trial_positions >= 10 * placement.num_rows());
        assert!(stats.net_evaluations >= stats.trial_positions);
    }

    #[test]
    fn stride_reduces_trial_positions() {
        let (eval, ge, placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let run = |stride: usize| {
            let mut p = placement.clone();
            let mut selected: Vec<CellId> = nl.cell_ids().take(20).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            allocate_all(
                &eval,
                &mut AllocScratch::for_evaluator(&eval),
                &mut p,
                &mut selected,
                &goodness,
                &AllocationConfig {
                    strategy: AllocationStrategy::SortedBestFit,
                    trial_stride: stride,
                    ..Default::default()
                },
                &[],
                &mut rng,
            )
        };
        let full = run(1);
        let strided = run(4);
        assert!(strided.trial_positions < full.trial_positions / 2);
    }

    #[test]
    fn random_window_bounds_work() {
        let (eval, ge, mut placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let mut selected: Vec<CellId> = nl.cell_ids().take(15).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let stats = allocate_all(
            &eval,
            &mut AllocScratch::for_evaluator(&eval),
            &mut placement,
            &mut selected,
            &goodness,
            &AllocationConfig {
                strategy: AllocationStrategy::RandomWindow,
                random_window: 8,
                ..Default::default()
            },
            &[],
            &mut rng,
        );
        assert!(stats.trial_positions <= 15 * 8);
        placement.validate(&nl).unwrap();
    }

    #[test]
    fn first_fit_examines_no_more_slots_than_best_fit() {
        let (eval, ge, placement) = setup();
        let nl = eval.netlist().clone();
        let goodness = ge.all_goodness(&placement);
        let run = |strategy: AllocationStrategy| {
            let mut p = placement.clone();
            let mut selected: Vec<CellId> = nl.cell_ids().take(25).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            allocate_all(
                &eval,
                &mut AllocScratch::for_evaluator(&eval),
                &mut p,
                &mut selected,
                &goodness,
                &AllocationConfig {
                    strategy,
                    ..Default::default()
                },
                &[],
                &mut rng,
            )
        };
        let best = run(AllocationStrategy::SortedBestFit);
        let first = run(AllocationStrategy::FirstFit);
        assert!(first.trial_positions <= best.trial_positions);
    }

    #[test]
    fn duplicate_allowed_rows_do_not_double_charge_stats() {
        // Regression: overlapping/duplicated allowed-rows input used to emit
        // the same (row, index) candidate several times, inflating the
        // trial_positions / net_evaluations work counts the cluster
        // simulation charges for. The candidate set must depend only on the
        // *set* of allowed rows.
        let (eval, _, placement) = setup();
        let nl = eval.netlist().clone();
        let cell = nl
            .cell_ids()
            .find(|&c| nl.nets_of_cell(c).len() >= 2)
            .unwrap();
        for strategy in [
            AllocationStrategy::WindowedBestFit,
            AllocationStrategy::SortedBestFit,
        ] {
            let config = AllocationConfig {
                strategy,
                ..Default::default()
            };
            let run = |allowed: &[usize]| {
                let mut p = placement.clone();
                let mut scratch = AllocScratch::for_evaluator(&eval);
                let mut rng = ChaCha8Rng::seed_from_u64(8);
                p.remove_cell(cell);
                let stats = allocate_cell(
                    &eval,
                    &mut scratch,
                    &mut p,
                    cell,
                    &config,
                    allowed,
                    &mut rng,
                );
                (stats, p.slot_of(cell))
            };
            let (clean, slot_clean) = run(&[2, 3, 4]);
            let (dup, slot_dup) = run(&[2, 3, 2, 4, 3, 2]);
            assert_eq!(
                clean.trial_positions, dup.trial_positions,
                "{strategy:?}: duplicated rows must not add trial positions"
            );
            assert_eq!(clean.net_evaluations, dup.net_evaluations);
            assert_eq!(slot_clean, slot_dup, "{strategy:?}: same best slot");
        }
    }

    #[test]
    fn chunked_trial_scoring_is_bitwise_serial() {
        // The intra-rank fan-out may only change *where* slots are scored:
        // the chosen slots, the resulting placement and the work counts must
        // equal the serial scan for every chunk count. Exhaustive best fit on
        // a single-row layout gives a candidate list long past the fan-out
        // threshold with a small circuit.
        use cluster_sim::comm::WorkerPool;
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("alloc_par_test", 400, 19)).generate(),
        );
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let ge = GoodnessEvaluator::new(eval.clone());
        let placement = Placement::round_robin(&nl, 2);
        let goodness = ge.all_goodness(&placement);
        let config = AllocationConfig::exhaustive();

        let run = |ctx: &EvalContext<'_>| {
            let mut p = placement.clone();
            let mut selected: Vec<CellId> = nl.cell_ids().take(12).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let stats = allocate_all_on(
                &eval,
                &mut AllocScratch::for_evaluator(&eval),
                &mut p,
                &mut selected,
                &goodness,
                &config,
                &[],
                &mut rng,
                ctx,
            );
            (stats, p)
        };

        let (serial_stats, serial_placement) = run(&EvalContext::serial());
        assert!(
            serial_stats.trial_positions / serial_stats.cells_allocated >= PARALLEL_TRIAL_THRESHOLD,
            "test must exercise the fan-out path"
        );
        let pool = WorkerPool::new(2);
        for chunks in [2usize, 3, 4, 7] {
            let (stats, p) = run(&EvalContext::chunked(&pool, chunks));
            assert_eq!(
                serial_stats, stats,
                "chunks={chunks}: work counts must match"
            );
            for row in 0..p.num_rows() {
                assert_eq!(
                    serial_placement.row(row),
                    p.row(row),
                    "chunks={chunks}: placement must be bitwise serial"
                );
            }
        }
    }

    #[test]
    fn wave_prepared_windowed_allocation_is_bitwise_serial() {
        // The default windowed strategy never reaches the per-cell trial
        // fan-out threshold, so under a chunked context `allocate_all_on`
        // prepares whole waves of cells in parallel instead. The chosen
        // slots, the resulting placement and the work counts must equal the
        // serial pass bitwise for every worker/chunk combination — stale
        // snapshots (cells whose neighbourhood changed mid-wave) must be
        // silently re-prepared, never mis-scored.
        use cluster_sim::comm::WorkerPool;
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("alloc_wave_test", 300, 23)).generate(),
        );
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let ge = GoodnessEvaluator::new(eval.clone());
        let placement = Placement::round_robin(&nl, 6);
        let goodness = ge.all_goodness(&placement);
        let config = AllocationConfig::default();

        let run = |ctx: &EvalContext<'_>| {
            let mut p = placement.clone();
            // A dense selection set maximises mid-wave staleness: many
            // selected cells share nets, so later wave members are invalidated
            // by earlier insertions.
            let mut selected: Vec<CellId> = nl.cell_ids().take(120).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(10);
            let stats = allocate_all_on(
                &eval,
                &mut AllocScratch::for_evaluator(&eval),
                &mut p,
                &mut selected,
                &goodness,
                &config,
                &[],
                &mut rng,
                ctx,
            );
            (stats, p)
        };

        let (serial_stats, serial_placement) = run(&EvalContext::serial());
        for (workers, chunks) in [(1usize, 2usize), (2, 2), (2, 3), (4, 4), (2, 7)] {
            let pool = WorkerPool::new(workers);
            let (stats, p) = run(&EvalContext::chunked(&pool, chunks));
            assert_eq!(
                serial_stats, stats,
                "workers={workers} chunks={chunks}: work counts must match"
            );
            for row in 0..p.num_rows() {
                assert_eq!(
                    serial_placement.row(row),
                    p.row(row),
                    "workers={workers} chunks={chunks}: placement must be bitwise serial"
                );
            }
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AllocationStats {
            cells_allocated: 1,
            trial_positions: 10,
            net_evaluations: 30,
        };
        a.merge(&AllocationStats {
            cells_allocated: 2,
            trial_positions: 5,
            net_evaluations: 15,
        });
        assert_eq!(a.cells_allocated, 3);
        assert_eq!(a.trial_positions, 15);
        assert_eq!(a.net_evaluations, 45);
    }
}
