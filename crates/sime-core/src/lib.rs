//! # sime-core
//!
//! Serial Simulated Evolution (SimE) for multiobjective VLSI standard-cell
//! placement — the algorithm of Figure 1 in the paper.
//!
//! SimE evolves a *single* solution through three operators applied once per
//! iteration:
//!
//! 1. **Evaluation** ([`SimEEngine::evaluate`]) — compute the goodness
//!    `gᵢ = Oᵢ / Cᵢ ∈ [0, 1]` of every cell (see
//!    [`vlsi_place::goodness`]).
//! 2. **Selection** ([`selection`]) — probabilistically pick the ill-placed
//!    cells: cell `i` joins the selection set `S` when
//!    `Random > min(gᵢ + B, 1)`. The non-determinism is what lets SimE escape
//!    local minima.
//! 3. **Allocation** ([`allocation`]) — remove the selected cells and
//!    re-insert them one at a time at their best-fit slot (the paper's
//!    *sorted individual best fit*), which is where ~98 % of the runtime goes
//!    (Section 4 of the paper).
//!
//! [`SimEEngine`] ties the three operators together with stopping criteria,
//! per-iteration statistics and an operator-level profile
//! ([`profile::ProfileReport`]) that reproduces the paper's Section 4
//! measurement. The individual operators are public because the parallel
//! strategies in `sime-parallel` recombine them in different ways (Type I
//! distributes evaluation, Type II runs the whole loop on row subsets,
//! Type III runs many full loops that exchange solutions).

#![warn(missing_docs)]

pub mod allocation;
pub mod engine;
pub mod parallel;
pub mod profile;
pub mod selection;

pub use allocation::{AllocScratch, AllocationConfig, AllocationStats, AllocationStrategy};
pub use engine::{
    IterationStats, SimEConfig, SimEEngine, SimEResult, SimEScratch, StoppingCriteria,
};
pub use parallel::{chunk_ranges, EvalContext};
pub use profile::{Phase, ProfileReport};
pub use selection::{select, SelectionScheme};

/// Convenience prelude bringing the common SimE types into scope.
pub mod prelude {
    pub use crate::allocation::{AllocScratch, AllocationConfig, AllocationStrategy};
    pub use crate::engine::{SimEConfig, SimEEngine, SimEResult, SimEScratch, StoppingCriteria};
    pub use crate::parallel::EvalContext;
    pub use crate::profile::ProfileReport;
    pub use crate::selection::SelectionScheme;
}
