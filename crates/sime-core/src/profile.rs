//! Operator-level profiling of a SimE run.
//!
//! Section 4 of the paper profiles the serial implementation with `gprof` and
//! finds that ~98.4–98.5 % of the runtime is spent in the allocation routine,
//! ~0.5–0.6 % in wirelength calculation, ~0.2–0.4 % in goodness evaluation
//! and ~0.2 % in delay calculation. That distribution is the motivation for
//! the whole paper: only a strategy that parallelises allocation (Type II)
//! can produce real speed-ups.
//!
//! [`ProfileReport`] reproduces the same measurement for our implementation.
//! Two complementary views are recorded:
//!
//! * **wall-clock time** per phase, measured with `std::time::Instant`, and
//! * **work counts** (net-length evaluations and trial positions), which are
//!   deterministic and are what the cluster simulation
//!   (`cluster-sim::machine`) charges virtual compute time for.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The phases of one SimE iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Computing per-net costs (wirelength / power inputs).
    CostCalculation,
    /// Computing per-cell goodness values.
    GoodnessEvaluation,
    /// The selection operator.
    Selection,
    /// The allocation operator (sorted individual best fit).
    Allocation,
    /// Delay (path) cost calculation.
    DelayCalculation,
}

impl Phase {
    /// All phases in reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::CostCalculation,
        Phase::GoodnessEvaluation,
        Phase::Selection,
        Phase::Allocation,
        Phase::DelayCalculation,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::CostCalculation => "cost calculation",
            Phase::GoodnessEvaluation => "goodness evaluation",
            Phase::Selection => "selection",
            Phase::Allocation => "allocation",
            Phase::DelayCalculation => "delay calculation",
        }
    }
}

/// Accumulated profile of a SimE run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileReport {
    times_ns: [u128; 5],
    /// Net-length evaluations per phase (work counts).
    net_evals: [u64; 5],
    /// Trial positions examined by allocation.
    pub trial_positions: u64,
    /// Iterations profiled.
    pub iterations: u64,
}

impl ProfileReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(phase: Phase) -> usize {
        match phase {
            Phase::CostCalculation => 0,
            Phase::GoodnessEvaluation => 1,
            Phase::Selection => 2,
            Phase::Allocation => 3,
            Phase::DelayCalculation => 4,
        }
    }

    /// Adds wall-clock time to a phase.
    pub fn add_time(&mut self, phase: Phase, duration: Duration) {
        self.times_ns[Self::idx(phase)] += duration.as_nanos();
    }

    /// Adds net-length evaluation work to a phase.
    pub fn add_net_evals(&mut self, phase: Phase, count: u64) {
        self.net_evals[Self::idx(phase)] += count;
    }

    /// Wall-clock time attributed to a phase.
    pub fn time(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.times_ns[Self::idx(phase)] as u64)
    }

    /// Net-length evaluations attributed to a phase.
    pub fn net_evals(&self, phase: Phase) -> u64 {
        self.net_evals[Self::idx(phase)]
    }

    /// Total profiled wall-clock time.
    pub fn total_time(&self) -> Duration {
        Duration::from_nanos(self.times_ns.iter().sum::<u128>() as u64)
    }

    /// Total net-length evaluations across all phases.
    pub fn total_net_evals(&self) -> u64 {
        self.net_evals.iter().sum()
    }

    /// Fraction of the total wall-clock time spent in `phase` (0 when nothing
    /// was profiled).
    pub fn time_fraction(&self, phase: Phase) -> f64 {
        let total: u128 = self.times_ns.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.times_ns[Self::idx(phase)] as f64 / total as f64
        }
    }

    /// Fraction of the total work (net evaluations) spent in `phase`.
    pub fn work_fraction(&self, phase: Phase) -> f64 {
        let total: u64 = self.net_evals.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.net_evals[Self::idx(phase)] as f64 / total as f64
        }
    }

    /// Merges another report into this one (used when aggregating slave
    /// profiles in the parallel strategies).
    pub fn merge(&mut self, other: &ProfileReport) {
        for i in 0..5 {
            self.times_ns[i] += other.times_ns[i];
            self.net_evals[i] += other.net_evals[i];
        }
        self.trial_positions += other.trial_positions;
        self.iterations += other.iterations;
    }

    /// Formats the report as the percentage table printed by the
    /// `profile_breakdown` harness binary.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("phase                 time%    work%\n");
        for phase in Phase::ALL {
            out.push_str(&format!(
                "{:<20} {:>6.1}%  {:>6.1}%\n",
                phase.label(),
                100.0 * self.time_fraction(phase),
                100.0 * self.work_fraction(phase),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_when_populated() {
        let mut p = ProfileReport::new();
        p.add_time(Phase::Allocation, Duration::from_millis(98));
        p.add_time(Phase::CostCalculation, Duration::from_millis(1));
        p.add_time(Phase::GoodnessEvaluation, Duration::from_millis(1));
        let sum: f64 = Phase::ALL.iter().map(|&ph| p.time_fraction(ph)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(p.time_fraction(Phase::Allocation) > 0.9);
    }

    #[test]
    fn empty_report_has_zero_fractions() {
        let p = ProfileReport::new();
        for phase in Phase::ALL {
            assert_eq!(p.time_fraction(phase), 0.0);
            assert_eq!(p.work_fraction(phase), 0.0);
        }
        assert_eq!(p.total_time(), Duration::ZERO);
    }

    #[test]
    fn work_counts_accumulate_and_merge() {
        let mut a = ProfileReport::new();
        a.add_net_evals(Phase::Allocation, 1000);
        a.add_net_evals(Phase::CostCalculation, 10);
        a.trial_positions = 50;
        a.iterations = 1;
        let mut b = ProfileReport::new();
        b.add_net_evals(Phase::Allocation, 500);
        b.trial_positions = 25;
        b.iterations = 2;
        a.merge(&b);
        assert_eq!(a.net_evals(Phase::Allocation), 1500);
        assert_eq!(a.total_net_evals(), 1510);
        assert_eq!(a.trial_positions, 75);
        assert_eq!(a.iterations, 3);
        assert!(a.work_fraction(Phase::Allocation) > 0.99);
    }

    #[test]
    fn table_lists_every_phase() {
        let mut p = ProfileReport::new();
        p.add_time(Phase::Allocation, Duration::from_secs(1));
        let table = p.to_table();
        for phase in Phase::ALL {
            assert!(table.contains(phase.label()), "missing {}", phase.label());
        }
    }

    #[test]
    fn time_accessor_roundtrips() {
        let mut p = ProfileReport::new();
        p.add_time(Phase::Selection, Duration::from_micros(1234));
        assert_eq!(p.time(Phase::Selection), Duration::from_micros(1234));
        assert_eq!(p.time(Phase::Allocation), Duration::ZERO);
    }
}
