//! The SimE Selection operator.
//!
//! Selection partitions the solution into the selection set `S` (cells that
//! will be ripped up and re-allocated) and the partial solution `Φp` of the
//! remaining cells. Each cell is considered independently: following
//! Figure 1 of the paper, cell `i` is selected when
//! `Random > min(gᵢ + B, 1)`, so poorly placed cells (low goodness) are
//! selected with high probability while well-placed cells still have a small,
//! non-zero chance of being selected — the source of SimE's hill-climbing
//! ability.
//!
//! The paper uses the *biasless* selection function of Sait & Khan \[9\], which
//! removes the problem-dependent tuning of `B` by replacing it with the
//! negative deviation of the current average goodness from 1; both schemes
//! are provided here.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vlsi_netlist::CellId;

/// How the selection bias `B` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SelectionScheme {
    /// Classical SimE selection with a fixed bias `B` (may be negative).
    FixedBias(f64),
    /// Biasless selection \[9\]: the bias adapts each iteration to
    /// `B = −(1 − ḡ)` where `ḡ` is the current average goodness, so that the
    /// expected selection-set size tracks how far the solution is from
    /// convergence without manual tuning.
    #[default]
    Biasless,
}

impl SelectionScheme {
    /// The effective bias used for an iteration with average goodness
    /// `avg_goodness`.
    pub fn effective_bias(self, avg_goodness: f64) -> f64 {
        match self {
            SelectionScheme::FixedBias(b) => b,
            SelectionScheme::Biasless => -(1.0 - avg_goodness.clamp(0.0, 1.0)),
        }
    }
}

/// Runs the selection operator over all cells.
///
/// `goodness[i]` is the combined goodness of cell `i`. Returns the selection
/// set `S` in cell-id order. Cells listed in `frozen` (used by the Type II
/// row decomposition to exclude cells outside the local partition) are never
/// selected; pass an empty slice otherwise.
pub fn select<R: Rng + ?Sized>(
    goodness: &[f64],
    scheme: SelectionScheme,
    rng: &mut R,
    frozen: &[bool],
) -> Vec<CellId> {
    let avg = if goodness.is_empty() {
        0.0
    } else {
        goodness.iter().sum::<f64>() / goodness.len() as f64
    };
    let bias = scheme.effective_bias(avg);
    let mut selected = Vec::new();
    for (i, &g) in goodness.iter().enumerate() {
        if !frozen.is_empty() && frozen[i] {
            continue;
        }
        let threshold = (g + bias).clamp(0.0, 1.0);
        if rng.gen::<f64>() > threshold {
            selected.push(CellId::from(i));
        }
    }
    selected
}

/// Restricts selection to a subset of cells (by membership mask) — a
/// convenience wrapper used by the parallel strategies.
pub fn select_subset<R: Rng + ?Sized>(
    goodness: &[f64],
    scheme: SelectionScheme,
    rng: &mut R,
    in_subset: impl Fn(CellId) -> bool,
) -> Vec<CellId> {
    let frozen: Vec<bool> = (0..goodness.len())
        .map(|i| !in_subset(CellId::from(i)))
        .collect();
    select(goodness, scheme, rng, &frozen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn low_goodness_cells_are_selected_more_often() {
        let goodness = vec![0.05, 0.95];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            for c in select(&goodness, SelectionScheme::FixedBias(0.0), &mut rng, &[]) {
                counts[c.index()] += 1;
            }
        }
        assert!(
            counts[0] > counts[1] * 5,
            "bad cell selected {} times, good cell {} times",
            counts[0],
            counts[1]
        );
    }

    #[test]
    fn good_cells_still_have_nonzero_selection_probability() {
        let goodness = vec![0.9];
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut hits = 0;
        for _ in 0..5000 {
            hits += select(&goodness, SelectionScheme::FixedBias(0.0), &mut rng, &[]).len();
        }
        assert!(hits > 0, "non-determinism must allow escaping local minima");
        assert!(hits < 2500, "a well-placed cell must be selected rarely");
    }

    #[test]
    fn positive_bias_reduces_selection_size() {
        let goodness = vec![0.5; 200];
        let mut rng_a = ChaCha8Rng::seed_from_u64(3);
        let mut rng_b = ChaCha8Rng::seed_from_u64(3);
        let none = select(&goodness, SelectionScheme::FixedBias(0.0), &mut rng_a, &[]);
        let biased = select(&goodness, SelectionScheme::FixedBias(0.3), &mut rng_b, &[]);
        assert!(biased.len() < none.len());
    }

    #[test]
    fn biasless_bias_tracks_average_goodness() {
        assert_eq!(SelectionScheme::Biasless.effective_bias(1.0), 0.0);
        assert!((SelectionScheme::Biasless.effective_bias(0.6) + 0.4).abs() < 1e-12);
        assert_eq!(SelectionScheme::FixedBias(0.2).effective_bias(0.1), 0.2);
    }

    #[test]
    fn biasless_selects_more_aggressively_early() {
        // With low average goodness the biasless scheme lowers the threshold,
        // selecting more cells than the zero-bias scheme.
        let goodness = vec![0.3; 500];
        let mut rng_a = ChaCha8Rng::seed_from_u64(7);
        let mut rng_b = ChaCha8Rng::seed_from_u64(7);
        let biasless = select(&goodness, SelectionScheme::Biasless, &mut rng_a, &[]);
        let fixed = select(&goodness, SelectionScheme::FixedBias(0.0), &mut rng_b, &[]);
        assert!(biasless.len() > fixed.len());
    }

    #[test]
    fn frozen_cells_are_never_selected() {
        let goodness = vec![0.0; 100];
        let mut frozen = vec![false; 100];
        frozen[..50].fill(true);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let selected = select(
            &goodness,
            SelectionScheme::FixedBias(0.0),
            &mut rng,
            &frozen,
        );
        assert!(!selected.is_empty());
        assert!(selected.iter().all(|c| c.index() >= 50));
    }

    #[test]
    fn select_subset_matches_frozen_mask() {
        let goodness = vec![0.0; 60];
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(9);
        let via_mask = {
            let frozen: Vec<bool> = (0..60).map(|i| i % 2 == 0).collect();
            select(
                &goodness,
                SelectionScheme::FixedBias(0.0),
                &mut rng_a,
                &frozen,
            )
        };
        let via_subset = select_subset(
            &goodness,
            SelectionScheme::FixedBias(0.0),
            &mut rng_b,
            |c| c.index() % 2 == 1,
        );
        assert_eq!(via_mask, via_subset);
    }

    #[test]
    fn selection_is_deterministic_for_a_seed() {
        let goodness: Vec<f64> = (0..100).map(|i| (i as f64) / 100.0).collect();
        let a = select(
            &goodness,
            SelectionScheme::Biasless,
            &mut ChaCha8Rng::seed_from_u64(11),
            &[],
        );
        let b = select(
            &goodness,
            SelectionScheme::Biasless,
            &mut ChaCha8Rng::seed_from_u64(11),
            &[],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn results_are_sorted_by_cell_id() {
        let goodness = vec![0.2; 50];
        let selected = select(
            &goodness,
            SelectionScheme::FixedBias(0.0),
            &mut ChaCha8Rng::seed_from_u64(13),
            &[],
        );
        let mut sorted = selected.clone();
        sorted.sort_unstable();
        assert_eq!(selected, sorted);
    }
}
