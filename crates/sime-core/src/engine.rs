//! The SimE main loop (Figure 1 of the paper).

use crate::allocation::{allocate_all_on, AllocScratch, AllocationConfig, AllocationStats};
use crate::parallel::{chunk_ranges, EvalContext};
use crate::profile::{Phase, ProfileReport};
use crate::selection::{select, SelectionScheme};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;
use vlsi_netlist::{CellId, NetId, Netlist};
use vlsi_place::cost::{CostBreakdown, CostEvaluator, Objectives};
use vlsi_place::goodness::GoodnessEvaluator;
use vlsi_place::kernel::{NetLengthCache, TrialScorer};
use vlsi_place::layout::Placement;

/// Minimum number of dirty nets before the net-length refresh fans out over
/// the worker pool: a typical delta pass touches a handful of rows and is
/// cheaper serial, while the full refresh of a fresh placement (every net)
/// and the wide delta after an allocation pass parallelise well.
const PARALLEL_REFRESH_THRESHOLD: usize = 64;

/// Minimum number of invalidated cells before the incremental goodness
/// recompute fans out over the worker pool; below this the per-cell pass is
/// cheaper serial.
const PARALLEL_GOODNESS_THRESHOLD: usize = 64;

/// Per-worker mutable state of a SimE run: the allocation scratch buffers
/// (including the allocation-free [`vlsi_place::kernel::TrialScorer`]) and
/// the incremental [`NetLengthCache`].
///
/// The engine itself stays immutable and shareable (`&SimEEngine` is all the
/// parallel strategies hold); every thread of execution owns one
/// `SimEScratch` and passes it to [`SimEEngine::iterate`] /
/// [`SimEEngine::evaluate_with`]. The scratch never influences results —
/// every number produced through it is bitwise identical to the naive
/// [`SimEEngine::evaluate`] oracle — it only removes per-call allocations and
/// redundant net re-evaluations.
#[derive(Debug, Clone)]
pub struct SimEScratch {
    /// Allocation buffers + trial scorer.
    pub alloc: AllocScratch,
    /// Incremental per-net length cache (delta evaluation across iterations).
    pub cache: NetLengthCache,
    /// Reused per-cell goodness buffer.
    goodness: Vec<f64>,
    /// Per-chunk goodness output buffers of the intra-rank parallel
    /// Evaluation path ([`SimEEngine::evaluate_goodness_on`]): one buffer per
    /// chunk, reused across iterations so the chunked pass stays
    /// allocation-free after warm-up.
    chunk_goodness: Vec<Vec<f64>>,
    /// Per-chunk trial scorers for the parallel net-length refresh (each
    /// worker task needs its own pin/sort buffers).
    chunk_scorers: Vec<TrialScorer>,
    /// Per-chunk net-length output buffers of the parallel refresh.
    chunk_lengths: Vec<Vec<f64>>,
    /// Dirty-net plan buffer of the split refresh.
    dirty_nets: Vec<NetId>,
    /// Whether `goodness` holds the per-cell values for the cache's current
    /// net lengths, except for the cells listed in `pending_cells`. `false`
    /// forces the next Evaluation to rebuild the whole vector.
    goodness_valid: bool,
    /// Cells whose cached goodness is stale (some incident net or some
    /// critical path through them was re-priced since the vector was last
    /// completed). Deduplicated via `cell_stamp`; accumulates across
    /// refreshes until the next goodness pass consumes it.
    pending_cells: Vec<CellId>,
    /// Per-cell membership stamps for `pending_cells` (`== cell_stamp_cur`
    /// means already pending).
    cell_stamp: Vec<u64>,
    /// Current pending-set stamp; advanced whenever `pending_cells` is
    /// consumed or discarded, which empties the set in O(1).
    cell_stamp_cur: u64,
    /// Cells recomputed through the incremental goodness path (telemetry for
    /// differential tests; the full rebuilds are not counted).
    goodness_delta_recomputes: u64,
    /// Reused merge buffer for the caller's `frozen` mask and the engine's
    /// fixed-cell mask (mixed-size circuits only; stays empty otherwise).
    frozen_merge: Vec<bool>,
}

impl SimEScratch {
    /// Creates scratch space for an engine's evaluator.
    pub fn for_engine(engine: &SimEEngine) -> Self {
        SimEScratch {
            alloc: AllocScratch::for_evaluator(engine.evaluator()),
            cache: NetLengthCache::new(),
            goodness: Vec::new(),
            chunk_goodness: Vec::new(),
            chunk_scorers: Vec::new(),
            chunk_lengths: Vec::new(),
            dirty_nets: Vec::new(),
            goodness_valid: false,
            pending_cells: Vec::new(),
            cell_stamp: Vec::new(),
            cell_stamp_cur: 0,
            goodness_delta_recomputes: 0,
            frozen_merge: Vec::new(),
        }
    }

    /// Number of per-cell goodness values recomputed through the incremental
    /// (dirty-subset) path instead of a full rebuild. Pure telemetry — the
    /// values themselves are bitwise identical either way.
    pub fn goodness_delta_recomputes(&self) -> u64 {
        self.goodness_delta_recomputes
    }
}

/// When the SimE loop stops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingCriteria {
    /// Hard iteration limit.
    pub max_iterations: usize,
    /// Stop early when the best quality has not improved for this many
    /// consecutive iterations (`None` disables the check).
    pub stall_iterations: Option<usize>,
    /// Stop early when the average goodness reaches this value (`None`
    /// disables the check).
    pub target_avg_goodness: Option<f64>,
}

impl StoppingCriteria {
    /// Run for exactly `n` iterations (the schedule the paper uses for its
    /// tables, which fixes the iteration count per configuration).
    pub fn fixed(n: usize) -> Self {
        StoppingCriteria {
            max_iterations: n,
            stall_iterations: None,
            target_avg_goodness: None,
        }
    }
}

impl Default for StoppingCriteria {
    fn default() -> Self {
        StoppingCriteria {
            max_iterations: 1000,
            stall_iterations: Some(200),
            target_avg_goodness: None,
        }
    }
}

/// Configuration of a serial SimE run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimEConfig {
    /// Objectives of the cost function.
    pub objectives: Objectives,
    /// Number of placement rows.
    pub num_rows: usize,
    /// Selection scheme (biasless by default, as in the paper).
    pub selection: SelectionScheme,
    /// Allocation configuration (sorted individual best fit by default).
    pub allocation: AllocationConfig,
    /// Stopping criteria.
    pub stopping: StoppingCriteria,
    /// RNG seed for the run.
    pub seed: u64,
    /// Carry the per-cell goodness vector across iterations and recompute
    /// only the cells invalidated by re-priced nets (and re-priced critical
    /// paths). Per-cell goodness is a pure function of the net lengths the
    /// cell reads, so the incremental pass is bitwise identical to the full
    /// per-iteration rebuild; `false` forces the legacy full pass (the A/B
    /// baseline of the perf reports).
    pub incremental_goodness: bool,
}

impl SimEConfig {
    /// A configuration with the paper's defaults for the given objectives,
    /// row count and iteration budget.
    pub fn paper_defaults(objectives: Objectives, num_rows: usize, iterations: usize) -> Self {
        SimEConfig {
            objectives,
            num_rows,
            selection: SelectionScheme::Biasless,
            allocation: AllocationConfig::default(),
            stopping: StoppingCriteria::fixed(iterations),
            seed: 1,
            incremental_goodness: true,
        }
    }

    /// A small/fast configuration for tests: strided allocation and few
    /// iterations.
    pub fn fast(objectives: Objectives, num_rows: usize, iterations: usize) -> Self {
        SimEConfig {
            objectives,
            num_rows,
            selection: SelectionScheme::Biasless,
            allocation: AllocationConfig {
                trial_stride: 4,
                ..Default::default()
            },
            stopping: StoppingCriteria::fixed(iterations),
            seed: 1,
            incremental_goodness: true,
        }
    }
}

/// Statistics of one SimE iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Quality `µ(s)` of the solution after the iteration.
    pub mu: f64,
    /// Best quality seen so far in the run.
    pub best_mu: f64,
    /// Average combined goodness before the iteration's allocation.
    pub avg_goodness: f64,
    /// Size of the selection set.
    pub selected: usize,
    /// Cost breakdown after the iteration.
    pub cost: CostBreakdown,
    /// Allocation work performed in the iteration.
    pub allocation: AllocationStats,
}

/// Result of a SimE run.
#[derive(Debug, Clone)]
pub struct SimEResult {
    /// The best placement found.
    pub best_placement: Placement,
    /// Cost breakdown of the best placement.
    pub best_cost: CostBreakdown,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Per-iteration statistics.
    pub history: Vec<IterationStats>,
    /// Operator-level profile of the run.
    pub profile: ProfileReport,
}

impl SimEResult {
    /// Quality `µ(s)` of the best placement.
    pub fn best_mu(&self) -> f64 {
        self.best_cost.mu
    }
}

/// Serial Simulated Evolution engine.
///
/// The engine is deliberately stateless across iterations (the placement is
/// the only evolving state), so the parallel strategies can reuse
/// [`SimEEngine::evaluate`], [`SimEEngine::iterate`] and the operators
/// directly on their own placements.
#[derive(Debug, Clone)]
pub struct SimEEngine {
    evaluator: CostEvaluator,
    goodness: GoodnessEvaluator,
    config: SimEConfig,
    /// Total pin count, used as the goodness-evaluation work estimate.
    pins: u64,
    /// Per-cell fixed mask, `true` for pads and macros that Selection must
    /// never pick. Empty when the netlist has no fixed cells, so the
    /// fixed-free path (including its RNG stream) is bitwise unchanged.
    fixed_frozen: Vec<bool>,
    /// Warm-start placement: when set, [`SimEEngine::initial_placement`]
    /// returns a clone of it instead of drawing a random deal.
    initial: Option<Arc<Placement>>,
}

impl SimEEngine {
    /// Builds an engine (and its cost/goodness evaluators) for a netlist.
    ///
    /// The fuzzy goal multiples are calibrated to the circuit (see
    /// `calibrate_fuzzy`) so the quality measure `µ(s)` keeps discriminating
    /// on circuits whose achievable cost-to-lower-bound ratios exceed the
    /// defaults.
    pub fn new(netlist: Arc<Netlist>, config: SimEConfig) -> Self {
        let evaluator = CostEvaluator::new(netlist, config.objectives);
        let evaluator = Self::calibrate_fuzzy(evaluator, config.num_rows);
        Self::from_evaluator(evaluator, config)
    }

    /// Scales the fuzzy goal multiples to the circuit when the defaults are
    /// too tight for it.
    ///
    /// The per-net lower bounds assume every net packed contiguously in one
    /// row; how far real placements sit above them grows with circuit size,
    /// so a fixed goal multiple that discriminates well on the paper-sized
    /// circuits pins the memberships (and with them `µ(s)`) to the
    /// width-only floor on the larger extended-tier circuits. As a
    /// deterministic, placement-quality yardstick this uses the round-robin
    /// placement (`Φ_rr`, the same layout the interchange importer and the
    /// bounds tests use): per objective, with `r = cost(Φ_rr) / lower_bound`,
    /// when `2r ≥ goal_default` the goal becomes `2.5 r` — round-robin is a
    /// mediocre placement, SimE converges to roughly `r/2`…`r` of the bound,
    /// so `2.5 r` keeps converged placements inside the linear membership
    /// band — and otherwise the default stays, which keeps every paper-tier
    /// circuit (whose ratios sit far below the defaults) bitwise unchanged.
    fn calibrate_fuzzy(evaluator: CostEvaluator, num_rows: usize) -> CostEvaluator {
        let yardstick = Placement::round_robin(evaluator.netlist(), num_rows);
        let cost = evaluator.evaluate(&yardstick);
        let bounds = evaluator.bounds();
        let mut fuzzy = *evaluator.fuzzy();
        let calibrate = |goal: &mut f64, cost: f64, lower: f64| {
            if lower > 0.0 {
                let ratio = cost / lower;
                if ratio * 2.0 >= *goal {
                    *goal = ratio * 2.5;
                }
            }
        };
        calibrate(
            &mut fuzzy.goal_wirelength,
            cost.wirelength,
            bounds.wirelength_lower,
        );
        calibrate(&mut fuzzy.goal_power, cost.power, bounds.power_lower);
        if evaluator.objectives().includes_delay() {
            calibrate(&mut fuzzy.goal_delay, cost.delay, bounds.delay_lower);
        }
        evaluator.with_fuzzy(fuzzy)
    }

    /// Builds an engine on top of an existing cost evaluator (so several
    /// engines can share the extracted paths and bounds).
    pub fn from_evaluator(evaluator: CostEvaluator, config: SimEConfig) -> Self {
        let pins = evaluator.netlist().stats().pins as u64;
        let goodness = GoodnessEvaluator::new(evaluator.clone());
        let netlist = evaluator.netlist();
        let fixed_frozen = if netlist.has_fixed_cells() {
            netlist.cells().iter().map(|c| c.fixed).collect()
        } else {
            Vec::new()
        };
        SimEEngine {
            evaluator,
            goodness,
            config,
            pins,
            fixed_frozen,
            initial: None,
        }
    }

    /// Installs a warm-start placement: [`SimEEngine::initial_placement`]
    /// (and through it [`SimEEngine::run`] and every strategy driver) will
    /// start from a clone of `initial` instead of a random deal, without
    /// consuming any randomness for the initial placement.
    #[must_use]
    pub fn with_initial(mut self, initial: Arc<Placement>) -> Self {
        self.initial = Some(initial);
        self
    }

    /// The cost evaluator.
    pub fn evaluator(&self) -> &CostEvaluator {
        &self.evaluator
    }

    /// The goodness evaluator.
    pub fn goodness(&self) -> &GoodnessEvaluator {
        &self.goodness
    }

    /// The run configuration.
    pub fn config(&self) -> &SimEConfig {
        &self.config
    }

    /// Generates the initial placement `Φ_initial`: a clone of the installed
    /// warm-start placement when [`SimEEngine::with_initial`] was called
    /// (consuming no randomness), otherwise a random deal drawn from `rng`.
    pub fn initial_placement<R: Rng + ?Sized>(&self, rng: &mut R) -> Placement {
        match &self.initial {
            Some(p) => Placement::clone(p),
            None => Placement::random(self.evaluator.netlist(), self.config.num_rows, rng),
        }
    }

    /// Creates the per-worker scratch space used by [`SimEEngine::iterate`]
    /// and [`SimEEngine::evaluate_with`].
    pub fn new_scratch(&self) -> SimEScratch {
        SimEScratch::for_engine(self)
    }

    /// The Evaluation step: per-net lengths and per-cell goodness.
    ///
    /// Reference (oracle) implementation: recomputes every net length from
    /// scratch and allocates the result vectors. The engine loop itself runs
    /// on [`SimEEngine::evaluate_with`], which produces bitwise-identical
    /// values through the incremental kernel; this method is kept as the
    /// ground truth for differential tests and one-shot callers.
    ///
    /// Returns `(net_lengths, goodness)` and charges the cost-calculation and
    /// goodness-evaluation phases of `profile`.
    pub fn evaluate(
        &self,
        placement: &Placement,
        profile: &mut ProfileReport,
    ) -> (Vec<f64>, Vec<f64>) {
        let t0 = Instant::now();
        let net_lengths = self.evaluator.net_lengths(placement);
        profile.add_time(Phase::CostCalculation, t0.elapsed());
        profile.add_net_evals(Phase::CostCalculation, net_lengths.len() as u64);

        let t1 = Instant::now();
        let goodness = self.goodness.all_goodness_from_lengths(&net_lengths);
        profile.add_time(Phase::GoodnessEvaluation, t1.elapsed());
        profile.add_net_evals(Phase::GoodnessEvaluation, self.pins);

        self.profile_delay(&net_lengths, profile);

        (net_lengths, goodness)
    }

    /// The Evaluation step on the incremental kernel: refreshes the scratch's
    /// [`NetLengthCache`] (re-evaluating only nets dirtied since the last
    /// refresh) and fills the scratch goodness buffer. Bitwise identical to
    /// [`SimEEngine::evaluate`].
    ///
    /// The profile is charged the same *work counts* as the naive path — the
    /// counts model the algorithm's nominal workload, which is what the
    /// cluster simulation prices — so modeled runtimes are unaffected by the
    /// cache; only wall-clock time shrinks.
    pub fn evaluate_with<'s>(
        &self,
        placement: &Placement,
        scratch: &'s mut SimEScratch,
        profile: &mut ProfileReport,
    ) -> (&'s [f64], &'s [f64]) {
        self.evaluate_goodness_on(placement, scratch, profile, &EvalContext::serial())
    }

    /// The Evaluation step under an explicit [`EvalContext`]: the net-length
    /// refresh re-evaluates only dirty nets (fanning out when the delta is
    /// wide), and the per-cell goodness pass — the dominant Evaluation cost
    /// on the extended tier — is incremental when
    /// [`SimEConfig::incremental_goodness`] is on: the goodness vector is
    /// carried in the scratch across iterations and only the cells
    /// invalidated by the re-priced nets (and, under the delay objective,
    /// re-priced critical paths) are recomputed, chunking over the dirty
    /// subset when it is wide. Per-cell goodness is a pure function of the
    /// net lengths the cell reads, untouched cells kept bit-identical
    /// lengths, and every recomputed cell runs the exact serial per-cell
    /// arithmetic, so the resulting goodness vector is **bitwise identical**
    /// to [`SimEEngine::evaluate_with`] for every chunk count and to the full
    /// rebuild (the intra-rank extension of the DESIGN.md §4 determinism
    /// contract; invalidation rules in DESIGN.md §3a).
    ///
    /// Profile work counts are the nominal algorithmic counts either way;
    /// only wall-clock changes.
    pub fn evaluate_goodness_on<'s>(
        &self,
        placement: &Placement,
        scratch: &'s mut SimEScratch,
        profile: &mut ProfileReport,
        ctx: &EvalContext<'_>,
    ) -> (&'s [f64], &'s [f64]) {
        let t0 = Instant::now();
        self.refresh_on(placement, scratch, ctx);
        profile.add_time(Phase::CostCalculation, t0.elapsed());
        profile.add_net_evals(Phase::CostCalculation, scratch.cache.lengths().len() as u64);

        let t1 = Instant::now();
        let num_cells = self.evaluator.netlist().num_cells();
        let use_delta = self.config.incremental_goodness
            && scratch.goodness_valid
            && scratch.goodness.len() == num_cells;
        if use_delta {
            // Incremental path: only the cells invalidated since the vector
            // was last completed are recomputed, in place. Each cell's value
            // is the same pure function of the (already refreshed) net
            // lengths the full pass computes, and untouched cells kept nets
            // with bit-identical lengths, so the completed vector is bitwise
            // identical to a full rebuild.
            let pending = std::mem::take(&mut scratch.pending_cells);
            scratch.goodness_delta_recomputes += pending.len() as u64;
            let fan_out = match ctx.fan_out() {
                Some((pool, chunks))
                    if pending.len() >= PARALLEL_GOODNESS_THRESHOLD.max(2 * chunks) =>
                {
                    Some((pool, chunks))
                }
                _ => None,
            };
            if let Some((pool, chunks)) = fan_out {
                let ranges = chunk_ranges(pending.len(), chunks);
                if scratch.chunk_goodness.len() < ranges.len() {
                    scratch.chunk_goodness.resize_with(ranges.len(), Vec::new);
                }
                // Split borrows: the chunk tasks read the shared net lengths
                // and the pending list, each writing its own output buffer.
                let lengths: &[f64] = scratch.cache.lengths();
                let goodness = &self.goodness;
                let pending_ref: &[CellId] = &pending;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = scratch.chunk_goodness
                    [..ranges.len()]
                    .iter_mut()
                    .zip(ranges.iter().cloned())
                    .map(|(buf, range)| {
                        Box::new(move || {
                            buf.clear();
                            buf.extend(pending_ref[range].iter().map(|&cell| {
                                goodness.cell_goodness_from_lengths(cell, lengths).combined
                            }));
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                pool.run_scoped_tasks(tasks);
                for (buf, range) in scratch.chunk_goodness.iter().zip(ranges) {
                    for (&cell, &g) in pending[range].iter().zip(buf.iter()) {
                        scratch.goodness[cell.index()] = g;
                    }
                }
            } else {
                let lengths: &[f64] = scratch.cache.lengths();
                for &cell in &pending {
                    scratch.goodness[cell.index()] = self
                        .goodness
                        .cell_goodness_from_lengths(cell, lengths)
                        .combined;
                }
            }
            scratch.pending_cells = pending;
        } else {
            match ctx.fan_out() {
                None => {
                    self.goodness
                        .all_goodness_into(scratch.cache.lengths(), &mut scratch.goodness);
                }
                Some((pool, chunks)) => {
                    let ranges = chunk_ranges(num_cells, chunks);
                    if scratch.chunk_goodness.len() < ranges.len() {
                        scratch.chunk_goodness.resize_with(ranges.len(), Vec::new);
                    }
                    // Split borrows: the chunk tasks read the shared net
                    // lengths and each writes its own output buffer.
                    let lengths: &[f64] = scratch.cache.lengths();
                    let goodness = &self.goodness;
                    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = scratch.chunk_goodness
                        [..ranges.len()]
                        .iter_mut()
                        .zip(ranges)
                        .map(|(buf, range)| {
                            Box::new(move || goodness.goodness_range_into(lengths, range, buf))
                                as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    let chunks_used = tasks.len();
                    pool.run_scoped_tasks(tasks);
                    scratch.goodness.clear();
                    for buf in &scratch.chunk_goodness[..chunks_used] {
                        scratch.goodness.extend_from_slice(buf);
                    }
                }
            }
            scratch.goodness_valid = self.config.incremental_goodness;
        }
        // The vector is complete for the cache's current lengths: empty the
        // pending set (stamp advance keeps the dedup table consistent).
        scratch.pending_cells.clear();
        scratch.cell_stamp_cur = scratch.cell_stamp_cur.wrapping_add(1);
        profile.add_time(Phase::GoodnessEvaluation, t1.elapsed());
        profile.add_net_evals(Phase::GoodnessEvaluation, self.pins);

        self.profile_delay(scratch.cache.lengths(), profile);

        (scratch.cache.lengths(), &scratch.goodness)
    }

    /// Brings `scratch.cache` in sync with `placement` under an explicit
    /// [`EvalContext`]. The plan (which nets are dirty) is computed serially;
    /// when it is wide enough the per-net length computations — each a pure
    /// function of the placement — fan out over the context's worker pool in
    /// index-contiguous chunks, each chunk writing its own buffer, and the
    /// chunk-ordered scatter completes the cache. Bitwise identical to the
    /// monolithic serial [`NetLengthCache::refresh`] for every chunk count.
    fn refresh_on(&self, placement: &Placement, scratch: &mut SimEScratch, ctx: &EvalContext<'_>) {
        let mut dirty = std::mem::take(&mut scratch.dirty_nets);
        let full = scratch
            .cache
            .plan_refresh(&self.evaluator, placement, &mut dirty);
        if full {
            // Every net was re-priced (fresh scratch, placement swap, size
            // change): the carried goodness vector has no usable baseline.
            scratch.goodness_valid = false;
            scratch.pending_cells.clear();
            scratch.cell_stamp_cur = scratch.cell_stamp_cur.wrapping_add(1);
        } else if self.config.incremental_goodness && scratch.goodness_valid && !dirty.is_empty() {
            self.note_dirty_cells(scratch, &dirty);
        }
        let fan_out = match ctx.fan_out() {
            Some((pool, chunks)) if dirty.len() >= PARALLEL_REFRESH_THRESHOLD.max(2 * chunks) => {
                Some((pool, chunks))
            }
            _ => None,
        };
        if let Some((pool, chunks)) = fan_out {
            let ranges = chunk_ranges(dirty.len(), chunks);
            let mut scorers = std::mem::take(&mut scratch.chunk_scorers);
            let mut bufs = std::mem::take(&mut scratch.chunk_lengths);
            if scorers.len() < ranges.len() {
                scorers.resize_with(ranges.len(), || TrialScorer::for_evaluator(&self.evaluator));
            }
            if bufs.len() < ranges.len() {
                bufs.resize_with(ranges.len(), Vec::new);
            }
            {
                let evaluator = &self.evaluator;
                let dirty = &dirty;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = scorers
                    .iter_mut()
                    .zip(bufs.iter_mut())
                    .zip(ranges.iter().cloned())
                    .map(|((scorer, buf), range)| {
                        Box::new(move || {
                            buf.clear();
                            for &net in &dirty[range] {
                                buf.push(scorer.net_length(evaluator, placement, net));
                            }
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                pool.run_scoped_tasks(tasks);
            }
            for (buf, range) in bufs.iter().zip(ranges) {
                scratch.cache.store_lengths(&dirty[range], buf);
            }
            scratch.chunk_scorers = scorers;
            scratch.chunk_lengths = bufs;
        } else {
            for &net in &dirty {
                let length = scratch
                    .alloc
                    .scorer
                    .net_length(&self.evaluator, placement, net);
                scratch.cache.store_length(net, length);
            }
        }
        scratch.dirty_nets = dirty;
    }

    /// Marks every cell whose goodness may change when the `dirty` nets are
    /// re-priced: the cells incident to a dirty net, plus — under the delay
    /// objective — the cells of every stored critical path containing a dirty
    /// net (their delay goodness reads the path's total length). Cells are
    /// stamp-deduplicated into `scratch.pending_cells`, which accumulates
    /// across refreshes until the next goodness pass consumes it.
    fn note_dirty_cells(&self, scratch: &mut SimEScratch, dirty: &[NetId]) {
        let num_cells = self.evaluator.netlist().num_cells();
        if scratch.cell_stamp.len() != num_cells {
            scratch.cell_stamp.clear();
            scratch.cell_stamp.resize(num_cells, 0);
            // Stamp 0 is reserved as "never pending" for freshly zeroed slots.
            scratch.cell_stamp_cur = 1;
            scratch.pending_cells.clear();
        }
        let stamp = scratch.cell_stamp_cur;
        let include_paths = self.config.objectives.includes_delay();
        for &net in dirty {
            for &cell in self.evaluator.net_cells(net) {
                let i = cell.index();
                if scratch.cell_stamp[i] != stamp {
                    scratch.cell_stamp[i] = stamp;
                    scratch.pending_cells.push(cell);
                }
            }
            if include_paths {
                for &pi in self.evaluator.paths_through_net(net) {
                    for &cell in &self.evaluator.paths()[pi as usize].cells {
                        let i = cell.index();
                        if scratch.cell_stamp[i] != stamp {
                            scratch.cell_stamp[i] = stamp;
                            scratch.pending_cells.push(cell);
                        }
                    }
                }
            }
        }
    }

    /// Charges the delay-calculation phase (a full path sweep) when the delay
    /// objective is active; shared by both evaluation paths.
    fn profile_delay(&self, net_lengths: &[f64], profile: &mut ProfileReport) {
        if self.config.objectives.includes_delay() {
            let t2 = Instant::now();
            let _ = self.evaluator.delay_from_lengths(net_lengths);
            let path_nets: u64 = self
                .evaluator
                .paths()
                .iter()
                .map(|p| p.nets.len() as u64)
                .sum();
            profile.add_time(Phase::DelayCalculation, t2.elapsed());
            profile.add_net_evals(Phase::DelayCalculation, path_nets);
        }
    }

    /// Runs one full SimE iteration (Evaluation → Selection → Allocation) on
    /// `placement`.
    ///
    /// `frozen` marks cells that must not be selected and `allowed_rows`
    /// restricts allocation targets; both are empty for the serial algorithm
    /// and are used by the Type II row decomposition.
    pub fn iterate<R: Rng + ?Sized>(
        &self,
        placement: &mut Placement,
        scratch: &mut SimEScratch,
        rng: &mut R,
        profile: &mut ProfileReport,
        frozen: &[bool],
        allowed_rows: &[usize],
    ) -> (f64, usize, AllocationStats) {
        self.iterate_on(
            placement,
            scratch,
            rng,
            profile,
            frozen,
            allowed_rows,
            &EvalContext::serial(),
        )
    }

    /// [`SimEEngine::iterate`] under an explicit [`EvalContext`]: the
    /// goodness pass ([`SimEEngine::evaluate_goodness_on`]) and the
    /// allocation trial-scoring loop
    /// ([`crate::allocation::allocate_cell_on`]) fan out over the context's
    /// worker pool. Bitwise identical to the serial iteration for every chunk
    /// count — the RNG stream, the selection set, every chosen slot and all
    /// work counts are unchanged; only wall-clock differs.
    #[allow(clippy::too_many_arguments)]
    pub fn iterate_on<R: Rng + ?Sized>(
        &self,
        placement: &mut Placement,
        scratch: &mut SimEScratch,
        rng: &mut R,
        profile: &mut ProfileReport,
        frozen: &[bool],
        allowed_rows: &[usize],
        ctx: &EvalContext<'_>,
    ) -> (f64, usize, AllocationStats) {
        let (_net_lengths, goodness) = self.evaluate_goodness_on(placement, scratch, profile, ctx);
        let avg_goodness = goodness.iter().sum::<f64>() / goodness.len().max(1) as f64;
        let (selected, alloc_stats) = self.select_allocate_from_scratch(
            placement,
            scratch,
            rng,
            profile,
            frozen,
            allowed_rows,
            ctx,
        );
        (avg_goodness, selected, alloc_stats)
    }

    /// The Selection and Allocation steps of one iteration, driven by a
    /// caller-supplied combined-goodness vector instead of the engine's own
    /// Evaluation step.
    ///
    /// This is the master-side half of the Type I split: the slaves compute
    /// the partial goodness vectors, the master gathers them into `goodness`
    /// (one entry per cell, in cell-id order) and runs the unchanged serial
    /// Selection → Allocation pipeline. When `goodness` is bitwise identical
    /// to what [`SimEEngine::evaluate_with`] would produce — which the
    /// distributed evaluation guarantees, because both paths price every net
    /// with the same estimator — the resulting search trajectory is bitwise
    /// identical to [`SimEEngine::iterate`]'s.
    ///
    /// Consumes exactly the same RNG stream as the selection/allocation half
    /// of [`SimEEngine::iterate`]. Returns the selection-set size and the
    /// allocation work counts.
    #[allow(clippy::too_many_arguments)]
    pub fn select_and_allocate<R: Rng + ?Sized>(
        &self,
        placement: &mut Placement,
        scratch: &mut SimEScratch,
        goodness: &[f64],
        rng: &mut R,
        profile: &mut ProfileReport,
        frozen: &[bool],
        allowed_rows: &[usize],
    ) -> (usize, AllocationStats) {
        self.select_and_allocate_on(
            placement,
            scratch,
            goodness,
            rng,
            profile,
            frozen,
            allowed_rows,
            &EvalContext::serial(),
        )
    }

    /// [`SimEEngine::select_and_allocate`] under an explicit [`EvalContext`]
    /// (the Type I master consumes the gathered goodness vector and may still
    /// fan its allocation trial scoring out intra-rank). Bitwise identical to
    /// the serial variant for every chunk count.
    #[allow(clippy::too_many_arguments)]
    pub fn select_and_allocate_on<R: Rng + ?Sized>(
        &self,
        placement: &mut Placement,
        scratch: &mut SimEScratch,
        goodness: &[f64],
        rng: &mut R,
        profile: &mut ProfileReport,
        frozen: &[bool],
        allowed_rows: &[usize],
        ctx: &EvalContext<'_>,
    ) -> (usize, AllocationStats) {
        assert_eq!(
            goodness.len(),
            self.evaluator.netlist().num_cells(),
            "goodness vector must have one entry per cell"
        );
        scratch.goodness.clear();
        scratch.goodness.extend_from_slice(goodness);
        // The staged vector came from outside the engine's Evaluation step;
        // conservatively drop it as an incremental-goodness baseline (the
        // Type I master re-gathers a fresh vector every iteration anyway).
        scratch.goodness_valid = false;
        scratch.pending_cells.clear();
        scratch.cell_stamp_cur = scratch.cell_stamp_cur.wrapping_add(1);
        self.select_allocate_from_scratch(
            placement,
            scratch,
            rng,
            profile,
            frozen,
            allowed_rows,
            ctx,
        )
    }

    /// Shared Selection → Allocation tail of [`SimEEngine::iterate_on`] and
    /// [`SimEEngine::select_and_allocate_on`]; reads the goodness vector
    /// already staged in `scratch.goodness`.
    #[allow(clippy::too_many_arguments)]
    fn select_allocate_from_scratch<R: Rng + ?Sized>(
        &self,
        placement: &mut Placement,
        scratch: &mut SimEScratch,
        rng: &mut R,
        profile: &mut ProfileReport,
        frozen: &[bool],
        allowed_rows: &[usize],
        ctx: &EvalContext<'_>,
    ) -> (usize, AllocationStats) {
        let t0 = Instant::now();
        // Fixed cells (pads, macros) must never enter the selection set. The
        // mask is empty on fixed-free circuits, so that path — including its
        // RNG stream — is bitwise identical to the pre-mixed-size engine.
        let frozen = if self.fixed_frozen.is_empty() {
            frozen
        } else if frozen.is_empty() {
            &self.fixed_frozen
        } else {
            scratch.frozen_merge.clear();
            scratch
                .frozen_merge
                .extend(frozen.iter().zip(&self.fixed_frozen).map(|(&a, &b)| a || b));
            &scratch.frozen_merge
        };
        let mut selected = select(&scratch.goodness, self.config.selection, rng, frozen);
        profile.add_time(Phase::Selection, t0.elapsed());

        let t1 = Instant::now();
        let alloc_stats = allocate_all_on(
            &self.evaluator,
            &mut scratch.alloc,
            placement,
            &mut selected,
            &scratch.goodness,
            &self.config.allocation,
            allowed_rows,
            rng,
            ctx,
        );
        profile.add_time(Phase::Allocation, t1.elapsed());
        profile.add_net_evals(Phase::Allocation, alloc_stats.net_evaluations as u64);
        profile.trial_positions += alloc_stats.trial_positions as u64;
        profile.iterations += 1;

        (selected.len(), alloc_stats)
    }

    /// Runs the full SimE loop from a fresh random initial placement.
    pub fn run(&self) -> SimEResult {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let initial = self.initial_placement(&mut rng);
        self.run_from(initial, &mut rng)
    }

    /// Runs the full SimE loop from the given initial placement, drawing
    /// randomness from `rng`.
    pub fn run_from<R: Rng + ?Sized>(&self, initial: Placement, rng: &mut R) -> SimEResult {
        let mut placement = initial;
        let mut profile = ProfileReport::new();
        let mut history = Vec::new();
        let mut scratch = self.new_scratch();

        let mut best_placement = placement.clone();
        let mut best_cost = self.evaluator.evaluate(&placement);
        let mut stall = 0usize;

        let mut iterations = 0usize;
        for iteration in 0..self.config.stopping.max_iterations {
            let (avg_goodness, selected, alloc_stats) =
                self.iterate(&mut placement, &mut scratch, rng, &mut profile, &[], &[]);

            let cost = self.cost_with(&placement, &mut scratch);
            if cost.mu > best_cost.mu {
                best_cost = cost;
                best_placement = placement.clone();
                stall = 0;
            } else {
                stall += 1;
            }
            iterations = iteration + 1;

            history.push(IterationStats {
                iteration,
                mu: cost.mu,
                best_mu: best_cost.mu,
                avg_goodness,
                selected,
                cost,
                allocation: alloc_stats,
            });

            if let Some(limit) = self.config.stopping.stall_iterations {
                if stall >= limit {
                    break;
                }
            }
            if let Some(target) = self.config.stopping.target_avg_goodness {
                if avg_goodness >= target {
                    break;
                }
            }
        }

        SimEResult {
            best_placement,
            best_cost,
            iterations,
            history,
            profile,
        }
    }

    /// Full cost evaluation through the incremental kernel: refreshes the
    /// scratch's net-length cache (delta re-evaluation when the placement
    /// object is the one the cache is synchronised with) and aggregates the
    /// breakdown. Bitwise identical to `evaluator().evaluate(placement)`.
    pub fn cost_with(&self, placement: &Placement, scratch: &mut SimEScratch) -> CostBreakdown {
        self.cost_with_on(placement, scratch, &EvalContext::serial())
    }

    /// [`SimEEngine::cost_with`] under an explicit [`EvalContext`]: a wide
    /// refresh (the full pass over a fresh placement, or the broad delta
    /// after an allocation pass) fans its per-net length computations out
    /// over the context's worker pool. Bitwise identical to
    /// [`SimEEngine::cost_with`] — per-net length is a pure function of the
    /// placement and the aggregation stays serial.
    pub fn cost_with_on(
        &self,
        placement: &Placement,
        scratch: &mut SimEScratch,
        ctx: &EvalContext<'_>,
    ) -> CostBreakdown {
        self.refresh_on(placement, scratch, ctx);
        self.evaluator
            .evaluate_from_lengths(placement, scratch.cache.lengths())
    }

    /// Convenience: the frozen-cell mask for "only these cells are mine",
    /// used by the Type II decomposition.
    pub fn frozen_mask_from_owned(&self, owned: &[CellId]) -> Vec<bool> {
        let mut frozen = vec![true; self.evaluator.netlist().num_cells()];
        for &c in owned {
            frozen[c.index()] = false;
        }
        frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};

    fn netlist(cells: usize, seed: u64) -> Arc<Netlist> {
        Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("engine_test", cells, seed)).generate(),
        )
    }

    #[test]
    fn run_improves_quality() {
        let nl = netlist(150, 5);
        let config = SimEConfig::fast(Objectives::WirelengthPower, 8, 30);
        let engine = SimEEngine::new(nl, config);
        let result = engine.run();
        assert!(!result.history.is_empty());
        let initial_mu = result.history[0].mu;
        assert!(
            result.best_mu() >= initial_mu,
            "best mu {} must be >= first-iteration mu {}",
            result.best_mu(),
            initial_mu
        );
        // wirelength of the best-quality placement should not be meaningfully
        // above the first-iteration wirelength (the objectives are strongly
        // correlated, so a small tolerance covers trade-offs against power)
        let first_wl = result.history[0].cost.wirelength;
        assert!(result.best_cost.wirelength <= first_wl * 1.05);
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let nl = netlist(120, 6);
        let config = SimEConfig::fast(Objectives::WirelengthPower, 6, 10);
        let a = SimEEngine::new(Arc::clone(&nl), config).run();
        let b = SimEEngine::new(nl, config).run();
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.best_cost.wirelength, b.best_cost.wirelength);
        assert_eq!(a.best_cost.mu, b.best_cost.mu);
    }

    #[test]
    fn best_placement_is_legal_and_matches_reported_cost() {
        let nl = netlist(130, 7);
        let config = SimEConfig::fast(Objectives::WirelengthPowerDelay, 7, 15);
        let engine = SimEEngine::new(Arc::clone(&nl), config);
        let result = engine.run();
        result.best_placement.validate(&nl).unwrap();
        let re = engine.evaluator().evaluate(&result.best_placement);
        assert!((re.mu - result.best_cost.mu).abs() < 1e-12);
    }

    #[test]
    fn fixed_iteration_schedule_runs_exactly_n_iterations() {
        let nl = netlist(100, 8);
        let config = SimEConfig::fast(Objectives::WirelengthPower, 6, 12);
        let result = SimEEngine::new(nl, config).run();
        assert_eq!(result.iterations, 12);
        assert_eq!(result.history.len(), 12);
        assert_eq!(result.profile.iterations, 12);
    }

    #[test]
    fn stall_criterion_stops_early() {
        let nl = netlist(100, 9);
        let mut config = SimEConfig::fast(Objectives::WirelengthPower, 6, 500);
        config.stopping.stall_iterations = Some(3);
        let result = SimEEngine::new(nl, config).run();
        assert!(result.iterations < 500);
    }

    #[test]
    fn allocation_dominates_the_work_profile() {
        // Reproduces the Section 4 observation in terms of work counts, which
        // are deterministic (wall-clock fractions depend on the machine).
        let nl = netlist(200, 10);
        let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, 8, 5);
        let result = SimEEngine::new(nl, config).run();
        let alloc = result.profile.work_fraction(Phase::Allocation);
        assert!(
            alloc > 0.85,
            "allocation should dominate the work profile, got {alloc}"
        );
    }

    #[test]
    fn history_best_mu_is_monotone() {
        let nl = netlist(120, 11);
        let config = SimEConfig::fast(Objectives::WirelengthPower, 6, 25);
        let result = SimEEngine::new(nl, config).run();
        let mut last = 0.0;
        for h in &result.history {
            assert!(h.best_mu + 1e-12 >= last);
            last = h.best_mu;
        }
    }

    #[test]
    fn target_goodness_stops_early() {
        let nl = netlist(100, 12);
        let mut config = SimEConfig::fast(Objectives::WirelengthPower, 6, 500);
        config.stopping.target_avg_goodness = Some(0.0); // trivially satisfied
        let result = SimEEngine::new(nl, config).run();
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn kernel_evaluation_matches_oracle_bitwise() {
        // The engine loop runs on evaluate_with/cost_with; they must agree
        // with the naive evaluate oracle to the bit across iterations.
        let nl = netlist(140, 21);
        let config = SimEConfig::fast(Objectives::WirelengthPowerDelay, 7, 1);
        let engine = SimEEngine::new(nl, config);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut placement = engine.initial_placement(&mut rng);
        let mut scratch = engine.new_scratch();
        for _ in 0..5 {
            let mut p1 = ProfileReport::new();
            let (naive_lengths, naive_goodness) = engine.evaluate(&placement, &mut p1);
            let mut p2 = ProfileReport::new();
            let (lengths, goodness) = engine.evaluate_with(&placement, &mut scratch, &mut p2);
            assert_eq!(naive_lengths.len(), lengths.len());
            for (a, b) in naive_lengths.iter().zip(lengths.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in naive_goodness.iter().zip(goodness.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let naive_cost = engine.evaluator().evaluate(&placement);
            let cost = engine.cost_with(&placement, &mut scratch);
            assert_eq!(naive_cost.mu.to_bits(), cost.mu.to_bits());
            assert_eq!(naive_cost.wirelength.to_bits(), cost.wirelength.to_bits());
            // Mutate and go around again so the delta path is exercised.
            engine.iterate(&mut placement, &mut scratch, &mut rng, &mut p2, &[], &[]);
        }
        assert_eq!(
            scratch.cache.full_refreshes(),
            1,
            "in-place mutation must stay on the delta path"
        );
    }

    #[test]
    fn fuzzy_calibration_keeps_defaults_on_small_circuits() {
        // Paper-tier-sized circuits sit far below the default goal multiples;
        // the calibration must leave them bitwise untouched.
        use vlsi_place::fuzzy::FuzzyConfig;
        let nl = netlist(150, 43);
        let engine = SimEEngine::new(nl, SimEConfig::fast(Objectives::WirelengthPowerDelay, 7, 1));
        assert_eq!(*engine.evaluator().fuzzy(), FuzzyConfig::default());
    }

    #[test]
    fn fuzzy_calibration_scales_goals_on_large_ratio_circuits() {
        // On a circuit whose round-robin cost-to-bound ratio crosses half the
        // default goal, the goal must become exactly 2.5x that ratio.
        use vlsi_netlist::bench_suite::{ExtendedCircuit, SuiteCircuit};
        use vlsi_place::fuzzy::FuzzyConfig;
        let circuit = SuiteCircuit::Extended(ExtendedCircuit::S9234);
        let nl = Arc::new(circuit.generate());
        let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 1);
        let engine = SimEEngine::new(Arc::clone(&nl), config);
        let fuzzy = *engine.evaluator().fuzzy();
        let defaults = FuzzyConfig::default();
        assert!(fuzzy.goal_wirelength > defaults.goal_wirelength);
        assert!(fuzzy.goal_power > defaults.goal_power);
        // Delay is not an active objective here: its goal stays the default.
        assert_eq!(fuzzy.goal_delay.to_bits(), defaults.goal_delay.to_bits());
        // The scaled goals are exactly 2.5x the measured round-robin ratio.
        let yardstick = Placement::round_robin(&nl, circuit.num_rows());
        let cost = engine.evaluator().evaluate(&yardstick);
        let bounds = engine.evaluator().bounds();
        let expect_wl = cost.wirelength / bounds.wirelength_lower * 2.5;
        let expect_pw = cost.power / bounds.power_lower * 2.5;
        assert_eq!(fuzzy.goal_wirelength.to_bits(), expect_wl.to_bits());
        assert_eq!(fuzzy.goal_power.to_bits(), expect_pw.to_bits());
    }

    #[test]
    fn incremental_goodness_matches_full_rebuild_bitwise() {
        // The carried goodness vector must reproduce the full per-iteration
        // rebuild exactly: same selection sizes, same goodness averages, same
        // cost bits, iteration by iteration.
        let nl = netlist(150, 41);
        let on = SimEConfig::fast(Objectives::WirelengthPowerDelay, 7, 12);
        assert!(on.incremental_goodness, "cache must be the default");
        let mut off = on;
        off.incremental_goodness = false;
        let a = SimEEngine::new(Arc::clone(&nl), on).run();
        let b = SimEEngine::new(nl, off).run();
        assert_eq!(a.iterations, b.iterations);
        for (ha, hb) in a.history.iter().zip(&b.history) {
            assert_eq!(ha.mu.to_bits(), hb.mu.to_bits());
            assert_eq!(ha.avg_goodness.to_bits(), hb.avg_goodness.to_bits());
            assert_eq!(ha.selected, hb.selected);
            assert_eq!(ha.cost.wirelength.to_bits(), hb.cost.wirelength.to_bits());
            assert_eq!(ha.cost.power.to_bits(), hb.cost.power.to_bits());
            assert_eq!(ha.cost.delay.to_bits(), hb.cost.delay.to_bits());
        }
    }

    #[test]
    fn incremental_goodness_recomputes_only_dirty_cells() {
        // The delta path must actually fire on steady-state iterations (the
        // scratch survives the interleaved cost refreshes of the run loop)
        // and must not degenerate into a full rebuild every iteration.
        let nl = netlist(140, 42);
        let config = SimEConfig::fast(Objectives::WirelengthPowerDelay, 7, 1);
        let engine = SimEEngine::new(nl, config);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut placement = engine.initial_placement(&mut rng);
        let mut scratch = engine.new_scratch();
        let mut profile = ProfileReport::new();
        let iters = 6u64;
        for _ in 0..iters {
            engine.iterate(
                &mut placement,
                &mut scratch,
                &mut rng,
                &mut profile,
                &[],
                &[],
            );
            engine.cost_with(&placement, &mut scratch);
        }
        let num_cells = engine.evaluator().netlist().num_cells() as u64;
        let delta = scratch.goodness_delta_recomputes();
        assert!(delta > 0, "the incremental goodness path never fired");
        assert!(
            delta < num_cells * iters,
            "the incremental path recomputed as much as full rebuilds would ({delta})"
        );
    }

    #[test]
    fn chunked_iteration_is_bitwise_serial() {
        // The intra-rank context must not change a single bit of the search:
        // run the same seeded multi-iteration trajectory serially and at
        // several chunk counts and compare costs per iteration.
        use cluster_sim::comm::WorkerPool;
        let nl = netlist(160, 31);
        let config = SimEConfig::fast(Objectives::WirelengthPowerDelay, 8, 1);
        let engine = SimEEngine::new(nl, config);
        let pool = WorkerPool::new(2);

        let run = |ctx: &EvalContext<'_>| -> Vec<u64> {
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let mut placement = engine.initial_placement(&mut rng);
            let mut scratch = engine.new_scratch();
            let mut profile = ProfileReport::new();
            let mut trace = Vec::new();
            for _ in 0..6 {
                let (avg, selected, stats) = engine.iterate_on(
                    &mut placement,
                    &mut scratch,
                    &mut rng,
                    &mut profile,
                    &[],
                    &[],
                    ctx,
                );
                let cost = engine.cost_with(&placement, &mut scratch);
                trace.push(avg.to_bits());
                trace.push(selected as u64);
                trace.push(stats.net_evaluations as u64);
                trace.push(cost.mu.to_bits());
                trace.push(cost.wirelength.to_bits());
            }
            trace
        };

        let serial = run(&EvalContext::serial());
        for chunks in [2usize, 3, 4] {
            let chunked = run(&EvalContext::chunked(&pool, chunks));
            assert_eq!(serial, chunked, "chunks={chunks}");
        }
    }

    #[test]
    fn chunked_cost_refresh_is_bitwise_serial() {
        // `cost_with_on` fans the wide refreshes (full pass on a fresh
        // scratch, broad delta after an iteration) out over the pool; both
        // the breakdown and the cache's per-net lengths must equal the serial
        // path bitwise for every chunk count.
        use cluster_sim::comm::WorkerPool;
        let nl = netlist(200, 37);
        let config = SimEConfig::fast(Objectives::WirelengthPower, 8, 1);
        let engine = SimEEngine::new(nl, config);
        let pool = WorkerPool::new(2);

        let run = |ctx: &EvalContext<'_>| -> (Vec<u64>, Vec<u64>) {
            let mut rng = ChaCha8Rng::seed_from_u64(23);
            let mut placement = engine.initial_placement(&mut rng);
            let mut scratch = engine.new_scratch();
            let mut profile = ProfileReport::new();
            // Fresh scratch: the first cost is a full (every-net) refresh.
            let full = engine.cost_with_on(&placement, &mut scratch, ctx);
            // One iteration later the refresh is a wide delta.
            engine.iterate_on(
                &mut placement,
                &mut scratch,
                &mut rng,
                &mut profile,
                &[],
                &[],
                ctx,
            );
            let delta = engine.cost_with_on(&placement, &mut scratch, ctx);
            let costs = vec![
                full.mu.to_bits(),
                full.wirelength.to_bits(),
                delta.mu.to_bits(),
                delta.wirelength.to_bits(),
            ];
            let lengths = scratch
                .cache
                .lengths()
                .iter()
                .map(|l| l.to_bits())
                .collect();
            (costs, lengths)
        };

        let serial = run(&EvalContext::serial());
        for chunks in [2usize, 3, 5] {
            let chunked = run(&EvalContext::chunked(&pool, chunks));
            assert_eq!(serial, chunked, "chunks={chunks}");
        }
    }

    #[test]
    fn scratch_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimEScratch>();
    }

    #[test]
    fn engine_is_send_and_sync() {
        // The threaded execution backend shares one engine across OS worker
        // threads (`Arc<SimEEngine>`) and hands each worker its own scratch;
        // both bounds are load-bearing for `sime_parallel::exec`.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimEEngine>();
        fn assert_send<T: Send>() {}
        assert_send::<Placement>();
        assert_send::<ChaCha8Rng>();
    }

    #[test]
    fn select_and_allocate_matches_iterate_bitwise() {
        // Driving Selection → Allocation from an externally supplied goodness
        // vector (the Type I master path) must reproduce `iterate` exactly
        // when that vector equals the evaluation's output.
        let nl = netlist(150, 22);
        let config = SimEConfig::fast(Objectives::WirelengthPower, 7, 1);
        let engine = SimEEngine::new(nl, config);

        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(9);
        let mut placement_a = engine.initial_placement(&mut rng_a);
        let mut placement_b = engine.initial_placement(&mut rng_b);
        let mut scratch_a = engine.new_scratch();
        let mut scratch_b = engine.new_scratch();

        for _ in 0..4 {
            let mut profile_a = ProfileReport::new();
            let (_avg, sel_a, stats_a) = engine.iterate(
                &mut placement_a,
                &mut scratch_a,
                &mut rng_a,
                &mut profile_a,
                &[],
                &[],
            );

            // Reproduce the evaluation outside the engine, then hand the
            // goodness vector in through the split API.
            let mut profile_b = ProfileReport::new();
            let goodness: Vec<f64> = {
                let (_lengths, g) =
                    engine.evaluate_with(&placement_b, &mut scratch_b, &mut profile_b);
                g.to_vec()
            };
            let (sel_b, stats_b) = engine.select_and_allocate(
                &mut placement_b,
                &mut scratch_b,
                &goodness,
                &mut rng_b,
                &mut profile_b,
                &[],
                &[],
            );

            assert_eq!(sel_a, sel_b);
            assert_eq!(stats_a.net_evaluations, stats_b.net_evaluations);
            let cost_a = engine.cost_with(&placement_a, &mut scratch_a);
            let cost_b = engine.cost_with(&placement_b, &mut scratch_b);
            assert_eq!(cost_a.mu.to_bits(), cost_b.mu.to_bits());
            assert_eq!(cost_a.wirelength.to_bits(), cost_b.wirelength.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "one entry per cell")]
    fn select_and_allocate_rejects_mismatched_goodness() {
        let nl = netlist(80, 23);
        let engine = SimEEngine::new(nl, SimEConfig::fast(Objectives::WirelengthPower, 5, 1));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut placement = engine.initial_placement(&mut rng);
        let mut scratch = engine.new_scratch();
        let mut profile = ProfileReport::new();
        engine.select_and_allocate(
            &mut placement,
            &mut scratch,
            &[0.5; 3],
            &mut rng,
            &mut profile,
            &[],
            &[],
        );
    }

    #[test]
    fn frozen_mask_marks_everything_but_owned() {
        let nl = netlist(80, 13);
        let engine = SimEEngine::new(nl, SimEConfig::fast(Objectives::WirelengthPower, 5, 1));
        let owned = vec![CellId(0), CellId(5)];
        let mask = engine.frozen_mask_from_owned(&owned);
        assert!(!mask[0] && !mask[5]);
        assert!(mask[1] && mask[79]);
    }

    #[test]
    fn iterate_respects_frozen_and_allowed_rows() {
        let nl = netlist(100, 14);
        let config = SimEConfig::fast(Objectives::WirelengthPower, 6, 1);
        let engine = SimEEngine::new(Arc::clone(&nl), config);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut placement = engine.initial_placement(&mut rng);
        let before_rows: Vec<usize> = nl.cell_ids().map(|c| placement.row_of(c)).collect();

        // Freeze every cell except those currently in row 0; allocation may
        // only target rows 0 and 1.
        let owned: Vec<CellId> = nl
            .cell_ids()
            .filter(|&c| placement.row_of(c) == 0)
            .collect();
        let frozen = engine.frozen_mask_from_owned(&owned);
        let mut profile = ProfileReport::new();
        let mut scratch = engine.new_scratch();
        engine.iterate(
            &mut placement,
            &mut scratch,
            &mut rng,
            &mut profile,
            &frozen,
            &[0, 1],
        );
        placement.validate(&nl).unwrap();
        for c in nl.cell_ids() {
            if frozen[c.index()] {
                assert_eq!(
                    placement.row_of(c),
                    before_rows[c.index()],
                    "frozen cell {c} moved"
                );
            } else {
                assert!(placement.row_of(c) <= 1, "owned cell {c} left allowed rows");
            }
        }
    }
}
