//! Intra-rank evaluation parallelism: the execution context threaded through
//! the engine's Evaluation and Allocation hot paths.
//!
//! The parallel strategies of `sime-parallel` fan work out *across* simulated
//! ranks; this module is about the orthogonal axis *inside* one rank: the
//! per-cell goodness pass and the allocation trial-scoring loop both consist
//! of many independent read-only computations over shared engine state, so
//! they can be chunked across the OS worker threads of a
//! [`cluster_sim::comm::WorkerPool`] without changing a single bit of output.
//!
//! # Determinism contract (DESIGN.md §4, intra-rank extension)
//!
//! * **Chunk boundaries are fixed by index.** [`chunk_ranges`] partitions
//!   `0..n` into contiguous ranges that depend only on `(n, chunks)` — never
//!   on worker count, scheduling, or timing.
//! * **Chunks are merged in chunk order.** Every consumer concatenates (or
//!   reduces) the per-chunk results in ascending chunk index, reproducing the
//!   serial left-to-right order exactly.
//! * **Chunk bodies are bitwise-pure.** Each chunk computes exactly the
//!   values the serial loop computes for its index range, from the same
//!   shared inputs, with no cross-chunk accumulation — so the merged output
//!   is bitwise identical to the serial pass for *any* chunk count.
//!
//! [`EvalContext::serial`] (and any context with fewer than two chunks) runs
//! the original serial code path, byte for byte.

use cluster_sim::comm::WorkerPool;

/// How the engine executes its intra-iteration hot loops: serially on the
/// calling thread, or chunked across a shared [`WorkerPool`].
///
/// The context only ever changes *where* the per-cell/per-slot computations
/// run; the values they produce, the RNG streams, the profile work counts and
/// the resulting placement trajectory are bitwise identical across every
/// variant (see the [module docs](self)).
#[derive(Debug, Clone, Copy)]
pub struct EvalContext<'a> {
    pool: Option<&'a WorkerPool>,
    chunks: usize,
}

impl<'a> EvalContext<'a> {
    /// The serial context: every loop runs inline on the calling thread.
    pub fn serial() -> Self {
        EvalContext {
            pool: None,
            chunks: 1,
        }
    }

    /// A context that fans the evaluation loops out over `pool` in `chunks`
    /// index-contiguous chunks. `chunks <= 1` is equivalent to
    /// [`EvalContext::serial`].
    pub fn chunked(pool: &'a WorkerPool, chunks: usize) -> Self {
        EvalContext {
            pool: Some(pool),
            chunks: chunks.max(1),
        }
    }

    /// The context for an optional pool handle: chunked when a pool is
    /// available and more than one chunk was asked for, serial otherwise.
    /// This is the one constructor the strategy drivers use inside their
    /// rank tasks, so the gating rule lives in exactly one place.
    pub fn from_pool(pool: Option<&'a WorkerPool>, chunks: usize) -> Self {
        match pool {
            Some(pool) if chunks > 1 => EvalContext::chunked(pool, chunks),
            _ => EvalContext::serial(),
        }
    }

    /// The pool and chunk count when this context actually parallelises
    /// (`None` for the serial path).
    pub fn fan_out(&self) -> Option<(&'a WorkerPool, usize)> {
        match self.pool {
            Some(pool) if self.chunks > 1 => Some((pool, self.chunks)),
            _ => None,
        }
    }

    /// The effective intra-rank parallelism: the chunk count when fan-out is
    /// active, 1 otherwise. This is what [`StrategyOutcome::eval_chunks`]
    /// reports.
    ///
    /// [`StrategyOutcome::eval_chunks`]: ../../sime_parallel/report/struct.StrategyOutcome.html#structfield.eval_chunks
    pub fn effective_chunks(&self) -> usize {
        self.fan_out().map_or(1, |(_, c)| c)
    }
}

/// Partitions `0..n` into at most `chunks` contiguous index ranges of
/// near-equal size (the leading ranges are one longer when `chunks` does not
/// divide `n`). Empty ranges are omitted, so fewer than `chunks` ranges come
/// back when `n < chunks`.
///
/// The boundaries depend only on `(n, chunks)` — this is what pins the
/// intra-rank determinism contract's "chunk boundaries are fixed by cell
/// index" clause.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.max(1);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks.min(n));
    let mut start = 0usize;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_index_space_in_order() {
        for n in [0usize, 1, 2, 7, 64, 1001] {
            for chunks in [1usize, 2, 3, 4, 8, 2000] {
                let ranges = chunk_ranges(n, chunks);
                let mut expect = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expect, "n={n} chunks={chunks}");
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, n, "n={n} chunks={chunks}: ranges must cover 0..n");
                assert!(ranges.len() <= chunks.max(1).min(n.max(1)));
            }
        }
    }

    #[test]
    fn ranges_are_balanced() {
        let ranges = chunk_ranges(10, 4);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn ranges_depend_only_on_n_and_chunks() {
        assert_eq!(chunk_ranges(100, 4), chunk_ranges(100, 4));
        assert_eq!(chunk_ranges(5, 8).len(), 5);
        assert_eq!(chunk_ranges(0, 3), Vec::<std::ops::Range<usize>>::new());
    }

    #[test]
    fn serial_context_never_fans_out() {
        assert!(EvalContext::serial().fan_out().is_none());
        assert_eq!(EvalContext::serial().effective_chunks(), 1);
        let pool = WorkerPool::new(1);
        assert!(EvalContext::chunked(&pool, 1).fan_out().is_none());
        assert_eq!(EvalContext::chunked(&pool, 3).effective_chunks(), 3);
    }

    #[test]
    fn from_pool_gates_on_pool_and_chunk_count() {
        assert!(EvalContext::from_pool(None, 8).fan_out().is_none());
        let pool = WorkerPool::new(1);
        assert!(EvalContext::from_pool(Some(&pool), 1).fan_out().is_none());
        assert_eq!(EvalContext::from_pool(Some(&pool), 4).effective_chunks(), 4);
    }
}
