//! Property-based tests for the SimE operators and engine.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sime_core::allocation::{allocate_all, AllocationConfig, AllocationStrategy};
use sime_core::engine::{SimEConfig, SimEEngine};
use sime_core::profile::ProfileReport;
use sime_core::selection::{select, SelectionScheme};
use std::collections::HashSet;
use std::sync::Arc;
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
use vlsi_netlist::{CellId, Netlist};
use vlsi_place::cost::{CostEvaluator, Objectives};
use vlsi_place::goodness::GoodnessEvaluator;
use vlsi_place::layout::Placement;

fn arb_netlist() -> impl Strategy<Value = Arc<Netlist>> {
    (70usize..220, any::<u64>()).prop_map(|(cells, seed)| {
        Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized(
                format!("sime_prop_{seed}"),
                cells,
                seed,
            ))
            .generate(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Selection always returns a subset of the cells, never selects frozen
    /// cells, and together with the complement forms a partition (every cell
    /// is either selected or not — no duplicates).
    #[test]
    fn selection_partitions_the_solution(
        goodness in prop::collection::vec(0.0f64..1.0, 10..400),
        scheme_fixed in proptest::bool::ANY,
        bias in -0.3f64..0.3,
        seed in any::<u64>(),
    ) {
        let scheme = if scheme_fixed {
            SelectionScheme::FixedBias(bias)
        } else {
            SelectionScheme::Biasless
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let frozen: Vec<bool> = (0..goodness.len()).map(|i| i % 3 == 0).collect();
        let selected = select(&goodness, scheme, &mut rng, &frozen);
        let unique: HashSet<_> = selected.iter().collect();
        prop_assert_eq!(unique.len(), selected.len(), "no duplicates in S");
        for c in &selected {
            prop_assert!(c.index() < goodness.len());
            prop_assert!(!frozen[c.index()], "frozen cell selected");
        }
    }

    /// Allocation, with any strategy, always returns a legal placement that
    /// still contains every cell exactly once, and never moves unselected
    /// cells to another row.
    #[test]
    fn allocation_preserves_legality_and_unselected_rows(
        netlist in arb_netlist(),
        rows in 4usize..10,
        strategy_pick in 0u8..3,
        stride in 1usize..5,
        seed in any::<u64>(),
    ) {
        let strategy = match strategy_pick {
            0 => AllocationStrategy::SortedBestFit,
            1 => AllocationStrategy::FirstFit,
            _ => AllocationStrategy::RandomWindow,
        };
        let evaluator = CostEvaluator::new(Arc::clone(&netlist), Objectives::WirelengthPower);
        let ge = GoodnessEvaluator::new(evaluator.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut placement = Placement::random(&netlist, rows, &mut rng);
        let goodness = ge.all_goodness(&placement);

        let mut selected: Vec<CellId> = netlist
            .cell_ids()
            .filter(|c| c.index() % 4 == 0)
            .collect();
        let selected_set: HashSet<CellId> = selected.iter().copied().collect();
        let rows_before: Vec<usize> = netlist.cell_ids().map(|c| placement.row_of(c)).collect();

        allocate_all(
            &evaluator,
            &mut sime_core::allocation::AllocScratch::for_evaluator(&evaluator),
            &mut placement,
            &mut selected,
            &goodness,
            &AllocationConfig {
                strategy,
                trial_stride: stride,
                random_window: 16,
                ..Default::default()
            },
            &[],
            &mut rng,
        );
        placement.validate(&netlist).unwrap();
        for c in netlist.cell_ids() {
            if !selected_set.contains(&c) {
                prop_assert_eq!(placement.row_of(c), rows_before[c.index()]);
            }
        }
    }

    /// A SimE run never returns a best quality below the quality of its first
    /// iteration, the best placement is legal, and the reported best cost is
    /// reproducible from the returned placement.
    #[test]
    fn engine_run_invariants(netlist in arb_netlist(), seed in any::<u64>()) {
        let mut config = SimEConfig::fast(Objectives::WirelengthPower, 6, 8);
        config.seed = seed;
        let engine = SimEEngine::new(Arc::clone(&netlist), config);
        let result = engine.run();
        prop_assert!(!result.history.is_empty());
        prop_assert!(result.best_mu() + 1e-12 >= result.history[0].mu);
        result.best_placement.validate(&netlist).unwrap();
        let re = engine.evaluator().evaluate(&result.best_placement);
        prop_assert!((re.mu - result.best_cost.mu).abs() < 1e-9);
        // Work profile is dominated by allocation (Section 4 of the paper).
        prop_assert!(result.profile.work_fraction(sime_core::Phase::Allocation) > 0.5);
    }

    /// Running the same configuration twice gives identical results
    /// (determinism is what makes the table harnesses reproducible).
    #[test]
    fn engine_is_deterministic(netlist in arb_netlist(), seed in any::<u64>()) {
        let mut config = SimEConfig::fast(Objectives::WirelengthPower, 5, 5);
        config.seed = seed;
        let a = SimEEngine::new(Arc::clone(&netlist), config).run();
        let b = SimEEngine::new(Arc::clone(&netlist), config).run();
        prop_assert_eq!(a.best_cost.wirelength, b.best_cost.wirelength);
        prop_assert_eq!(a.best_cost.mu, b.best_cost.mu);
        prop_assert_eq!(a.history.len(), b.history.len());
    }

    /// Bound-pruned trial scoring is pure strength reduction: a full run with
    /// pruning enabled walks the exhaustive-scan run's trajectory bit for
    /// bit — same µ, same selection sizes, same nominal work counts — for
    /// random circuits, seeds and both objective sets.
    #[test]
    fn pruned_trial_scoring_matches_exhaustive_bitwise(
        netlist in arb_netlist(),
        seed in any::<u64>(),
        delay in proptest::bool::ANY,
    ) {
        let objectives = if delay {
            Objectives::WirelengthPowerDelay
        } else {
            Objectives::WirelengthPower
        };
        let mut config = SimEConfig::fast(objectives, 6, 6);
        config.seed = seed;
        prop_assert!(config.allocation.bound_pruning, "pruning must be the default");
        let mut legacy = config;
        legacy.allocation.bound_pruning = false;
        let a = SimEEngine::new(Arc::clone(&netlist), config).run();
        let b = SimEEngine::new(Arc::clone(&netlist), legacy).run();
        prop_assert_eq!(a.history.len(), b.history.len());
        for (ha, hb) in a.history.iter().zip(&b.history) {
            prop_assert_eq!(ha.mu.to_bits(), hb.mu.to_bits());
            prop_assert_eq!(ha.avg_goodness.to_bits(), hb.avg_goodness.to_bits());
            prop_assert_eq!(ha.selected, hb.selected);
            prop_assert_eq!(ha.allocation.trial_positions, hb.allocation.trial_positions);
            prop_assert_eq!(ha.allocation.net_evaluations, hb.allocation.net_evaluations);
            prop_assert_eq!(ha.cost.wirelength.to_bits(), hb.cost.wirelength.to_bits());
            prop_assert_eq!(ha.cost.power.to_bits(), hb.cost.power.to_bits());
        }
    }

    /// The carried goodness vector tracks the from-scratch oracle bit for bit
    /// through random interleavings of iterations, cost refreshes and
    /// evaluations — each op invalidates a different random net subset — and
    /// the incremental path actually fires.
    #[test]
    fn incremental_goodness_matches_oracle_through_random_sequences(
        netlist in arb_netlist(),
        seed in any::<u64>(),
        ops in prop::collection::vec(0u8..3, 3..12),
    ) {
        let config = SimEConfig::fast(Objectives::WirelengthPowerDelay, 6, 1);
        let engine = SimEEngine::new(Arc::clone(&netlist), config);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut placement = engine.initial_placement(&mut rng);
        let mut scratch = engine.new_scratch();
        let mut profile = ProfileReport::new();
        // Two unconditional iterations guarantee at least one post-mutation
        // delta pass before the random interleaving starts.
        for _ in 0..2 {
            engine.iterate(&mut placement, &mut scratch, &mut rng, &mut profile, &[], &[]);
        }
        for &op in &ops {
            match op {
                0 => {
                    engine.iterate(&mut placement, &mut scratch, &mut rng, &mut profile, &[], &[]);
                }
                1 => {
                    let cached = engine.cost_with(&placement, &mut scratch);
                    let oracle = engine.evaluator().evaluate(&placement);
                    prop_assert_eq!(cached.mu.to_bits(), oracle.mu.to_bits());
                    prop_assert_eq!(cached.wirelength.to_bits(), oracle.wirelength.to_bits());
                }
                _ => {
                    let (naive_lengths, naive_goodness) =
                        engine.evaluate(&placement, &mut ProfileReport::new());
                    let (lengths, goodness) =
                        engine.evaluate_with(&placement, &mut scratch, &mut profile);
                    prop_assert_eq!(naive_lengths.len(), lengths.len());
                    prop_assert_eq!(naive_goodness.len(), goodness.len());
                    for (a, b) in naive_lengths.iter().zip(lengths.iter()) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                    for (a, b) in naive_goodness.iter().zip(goodness.iter()) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
        }
        let (_, naive_goodness) = engine.evaluate(&placement, &mut ProfileReport::new());
        let (_, goodness) = engine.evaluate_with(&placement, &mut scratch, &mut profile);
        for (a, b) in naive_goodness.iter().zip(goodness.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert!(
            scratch.goodness_delta_recomputes() > 0,
            "the incremental goodness path never fired"
        );
    }

    /// Iterating with a frozen mask never moves frozen cells between rows.
    #[test]
    fn frozen_cells_never_change_rows(netlist in arb_netlist(), seed in any::<u64>()) {
        let config = SimEConfig::fast(Objectives::WirelengthPower, 6, 1);
        let engine = SimEEngine::new(Arc::clone(&netlist), config);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut placement = engine.initial_placement(&mut rng);
        let owned: Vec<CellId> = netlist.cell_ids().filter(|c| c.index() % 2 == 0).collect();
        let frozen = engine.frozen_mask_from_owned(&owned);
        let rows_before: Vec<usize> = netlist.cell_ids().map(|c| placement.row_of(c)).collect();
        let mut profile = ProfileReport::new();
        let mut scratch = engine.new_scratch();
        engine.iterate(&mut placement, &mut scratch, &mut rng, &mut profile, &frozen, &[]);
        placement.validate(&netlist).unwrap();
        for c in netlist.cell_ids() {
            if frozen[c.index()] {
                prop_assert_eq!(placement.row_of(c), rows_before[c.index()]);
            }
        }
    }
}
