//! Operator-level invariants of the baseline placers — the first integration
//! test surface of the `metaheuristics` crate.
//!
//! Three families, one per heuristic:
//!
//! * **GA** — the OX1 crossover always yields a permutation of the full
//!   cell set and preserves the cut slice from parent A; swap mutation
//!   preserves permutation-ness and multiset equality.
//! * **SA** — the Metropolis acceptance probability is 1 for downhill
//!   moves, in `(0, 1)` for uphill moves, monotone non-decreasing in
//!   temperature and monotone non-increasing in the energy delta.
//! * **TS** — tabu-list membership follows admission, expiry is strict FIFO
//!   once the tenure is exceeded, and aspiration-free membership checks see
//!   every cell of a multi-cell move.

use metaheuristics::sa::acceptance_probability;
use metaheuristics::tabu::TabuList;
use metaheuristics::{GaConfig, GeneticPlacer};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
use vlsi_netlist::CellId;
use vlsi_place::cost::{CostEvaluator, Objectives};

fn small_placer(num_cells: usize, seed: u64) -> GeneticPlacer {
    let nl = Arc::new(
        CircuitGenerator::new(GeneratorConfig::sized("invariants", num_cells, seed)).generate(),
    );
    let eval = CostEvaluator::new(nl, Objectives::WirelengthPower);
    GeneticPlacer::new(eval, GaConfig::fast(6, seed))
}

/// Sorted copy — the canonical permutation check baseline.
fn sorted(ids: &[CellId]) -> Vec<CellId> {
    let mut v = ids.to_vec();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// OX1 always produces a permutation of the full cell set, whatever the
    /// parents and cut points.
    #[test]
    fn ga_crossover_yields_a_permutation(seed in any::<u64>(), cells in 60usize..160) {
        let placer = small_placer(cells, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Vec<CellId> = (0..cells as u32).map(CellId).collect();
        let mut b = a.clone();
        b.shuffle(&mut rng);
        let child = placer.crossover(&a, &b, &mut rng);
        prop_assert_eq!(child.len(), a.len());
        prop_assert_eq!(sorted(&child), a);
    }

    /// Crossing two identical parents is the identity: with every gene
    /// already placed by the cut-slice copy or the same-order fill, the
    /// child must equal the parents.
    #[test]
    fn ga_crossover_of_identical_parents_is_identity(seed in any::<u64>()) {
        let placer = small_placer(90, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut a: Vec<CellId> = (0..90u32).map(CellId).collect();
        a.shuffle(&mut rng);
        let child = placer.crossover(&a, &a, &mut rng);
        prop_assert_eq!(child, a);
    }

    /// The GA's swap-mutation operator preserves the multiset of genes:
    /// however often it fires, the order is still a permutation of the same
    /// cells, and when it does not fire the order is untouched.
    #[test]
    fn ga_swap_mutation_preserves_the_permutation(
        seed in any::<u64>(),
        rounds in 1usize..30,
    ) {
        let placer = small_placer(80, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<CellId> = (0..80u32).map(CellId).collect();
        order.shuffle(&mut rng);
        let reference = sorted(&order);
        for _ in 0..rounds {
            let before = order.clone();
            placer.mutate(&mut order, &mut rng);
            prop_assert_eq!(sorted(&order), reference.clone());
            // A single swap changes zero or exactly two positions.
            let changed = order.iter().zip(&before).filter(|(a, b)| a != b).count();
            prop_assert!(changed == 0 || changed == 2, "changed {} positions", changed);
        }
    }

    /// Metropolis acceptance: certain for downhill, in (0,1) for uphill,
    /// monotone non-decreasing in T and non-increasing in delta.
    #[test]
    fn sa_acceptance_is_monotone_in_temperature_and_delta(
        delta in 0.0001f64..0.5,
        temp_lo in 0.001f64..0.2,
        temp_step in 0.0f64..0.5,
        delta_step in 0.0f64..0.5,
    ) {
        // Downhill and sideways moves are always accepted.
        prop_assert_eq!(acceptance_probability(-delta, temp_lo), 1.0);
        prop_assert_eq!(acceptance_probability(0.0, temp_lo), 1.0);

        // Uphill: a genuine probability, strictly below certainty.
        let p = acceptance_probability(delta, temp_lo);
        prop_assert!(p > 0.0 && p < 1.0, "p = {}", p);

        // Hotter never accepts less...
        let hotter = acceptance_probability(delta, temp_lo + temp_step);
        prop_assert!(hotter >= p, "hotter {} < colder {}", hotter, p);

        // ...and a worse move is never likelier.
        let worse = acceptance_probability(delta + delta_step, temp_lo);
        prop_assert!(worse <= p, "worse {} > better {}", worse, p);
    }

    /// Tabu expiry is strict FIFO: admitting cells one at a time past the
    /// tenure always evicts the oldest, so exactly the last `tenure` cells
    /// are held.
    #[test]
    fn tabu_expiry_is_fifo(tenure in 1usize..12, admissions in 1usize..40) {
        let mut tabu = TabuList::new(tenure);
        for k in 0..admissions {
            tabu.admit(&[CellId(k as u32)]);
        }
        prop_assert_eq!(tabu.len(), admissions.min(tenure));
        for k in 0..admissions {
            let held = tabu.contains(CellId(k as u32));
            let expected = k + tenure >= admissions;
            prop_assert_eq!(held, expected, "cell {} after {} admissions", k, admissions);
        }
    }
}

#[test]
fn sa_acceptance_survives_a_zero_temperature() {
    // The run loop clamps T to ε; even at T = 0 the rule must stay a
    // probability, not a NaN.
    let p = acceptance_probability(0.1, 0.0);
    assert!((0.0..1.0).contains(&p));
    assert_eq!(acceptance_probability(-0.1, 0.0), 1.0);
}

#[test]
fn tabu_membership_covers_every_cell_of_a_move() {
    let mut tabu = TabuList::new(4);
    assert!(tabu.is_empty());
    tabu.admit(&[CellId(1), CellId(2)]);
    assert!(tabu.is_tabu(&[CellId(1)]));
    assert!(
        tabu.is_tabu(&[CellId(9), CellId(2)]),
        "any tabu cell taints the move"
    );
    assert!(!tabu.is_tabu(&[CellId(9), CellId(8)]));

    // A multi-cell admission that overflows the tenure evicts the oldest.
    tabu.admit(&[CellId(3), CellId(4), CellId(5)]);
    assert_eq!(tabu.len(), 4);
    assert!(!tabu.contains(CellId(1)), "oldest entry must expire first");
    for c in [2u32, 3, 4, 5] {
        assert!(tabu.contains(CellId(c)));
    }
}

#[test]
fn ga_crossover_preserves_the_cut_slice_from_parent_a() {
    // Run the operator many times; whenever the child differs from parent B
    // in a contiguous window matching parent A, that window must be a copy
    // of A's genes (OX1's defining property). Verified structurally: every
    // gene of the child that equals A's gene at the same position forms at
    // least one non-empty run, because some cut [i, j] was copied verbatim.
    let placer = small_placer(70, 9);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let a: Vec<CellId> = (0..70u32).map(CellId).collect();
    let mut b = a.clone();
    b.shuffle(&mut rng);
    for _ in 0..50 {
        let child = placer.crossover(&a, &b, &mut rng);
        let aligned_with_a = child.iter().zip(&a).filter(|(c, p)| c == p).count();
        assert!(
            aligned_with_a >= 1,
            "OX1 must copy a non-empty slice of parent A in place"
        );
    }
}
