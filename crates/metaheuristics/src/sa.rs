//! Simulated Annealing baseline placer.
//!
//! A classical geometric-cooling SA over the swap/relocate move set, accepting
//! uphill moves with probability `exp(−Δ/T)` where the energy is `1 − µ(s)`
//! (so maximising the fuzzy quality). This mirrors the authors' serial SA
//! implementation lineage \[11\] closely enough for the qualitative comparison
//! of experiment E5.

use crate::common::{apply_move, neighbour_move, HeuristicResult};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use vlsi_place::cost::CostEvaluator;
use vlsi_place::layout::Placement;

/// Simulated Annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Initial temperature (in units of the energy `1 − µ`).
    pub initial_temperature: f64,
    /// Geometric cooling factor per temperature step, in (0, 1).
    pub cooling: f64,
    /// Moves attempted at each temperature.
    pub moves_per_temperature: usize,
    /// Number of temperature steps.
    pub temperature_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            initial_temperature: 0.05,
            cooling: 0.95,
            moves_per_temperature: 200,
            temperature_steps: 60,
            seed: 1,
        }
    }
}

impl SaConfig {
    /// A small configuration for tests.
    pub fn fast(seed: u64) -> Self {
        SaConfig {
            moves_per_temperature: 40,
            temperature_steps: 15,
            seed,
            ..Default::default()
        }
    }

    /// Checks the annealing-schedule invariants: the initial temperature must
    /// be strictly positive and the geometric cooling factor must lie in the
    /// open interval (0, 1). A configuration violating either would not
    /// anneal at all — `exp(−Δ/T)` degenerates and the walk is near-pure
    /// greedy — so it is rejected here instead of silently masked by the
    /// ε-clamp in [`acceptance_probability`] (which exists only for the
    /// legitimate T→0 tail of a *valid* schedule).
    pub fn validate(&self) -> Result<(), String> {
        // `is_finite` first so NaN (which fails every comparison) is
        // rejected too, without tripping over partial-order negation.
        if !self.initial_temperature.is_finite() || self.initial_temperature <= 0.0 {
            return Err(format!(
                "SaConfig: initial_temperature must be > 0, got {}",
                self.initial_temperature
            ));
        }
        if !self.cooling.is_finite() || self.cooling <= 0.0 || self.cooling >= 1.0 {
            return Err(format!(
                "SaConfig: cooling must lie in (0, 1), got {}",
                self.cooling
            ));
        }
        Ok(())
    }
}

/// The Metropolis acceptance probability for an energy change `delta` at
/// `temperature`: 1 for downhill or sideways moves (`delta <= 0`), else
/// `exp(−delta / max(T, ε))`. This is the exact rule the placer's run loop
/// draws against; it is exposed so the acceptance behaviour (monotone
/// non-decreasing in `T`, monotone non-increasing in `delta`) can be tested
/// directly.
pub fn acceptance_probability(delta: f64, temperature: f64) -> f64 {
    if delta <= 0.0 {
        1.0
    } else {
        (-delta / temperature.max(1e-12)).exp()
    }
}

/// Simulated Annealing placer over a shared [`CostEvaluator`].
#[derive(Debug, Clone)]
pub struct SimulatedAnnealingPlacer {
    evaluator: CostEvaluator,
    config: SaConfig,
}

impl SimulatedAnnealingPlacer {
    /// Creates a placer.
    ///
    /// # Panics
    ///
    /// Panics if the annealing schedule is invalid (see
    /// [`SaConfig::validate`]): `initial_temperature ≤ 0` or
    /// `cooling ∉ (0, 1)`.
    pub fn new(evaluator: CostEvaluator, config: SaConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("{msg}");
        }
        SimulatedAnnealingPlacer { evaluator, config }
    }

    /// Runs SA from the given initial placement.
    pub fn run(&self, initial: Placement) -> HeuristicResult {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut placement = initial;
        let mut current = self.evaluator.evaluate(&placement);
        let mut best = current;
        let mut best_placement = placement.clone();
        let mut evaluations = 1usize;
        let mut mu_history = Vec::with_capacity(self.config.temperature_steps);

        let mut temperature = self.config.initial_temperature;
        for _ in 0..self.config.temperature_steps {
            for _ in 0..self.config.moves_per_temperature {
                let mv = neighbour_move(&placement, &mut rng);
                let undo = apply_move(&mut placement, mv);
                let candidate = self.evaluator.evaluate(&placement);
                evaluations += 1;
                let delta = (1.0 - candidate.mu) - (1.0 - current.mu);
                // Short-circuit keeps the RNG stream identical to the
                // pre-refactor placer: no variate is drawn for a downhill move.
                let accept =
                    delta <= 0.0 || rng.gen::<f64>() < acceptance_probability(delta, temperature);
                if accept {
                    current = candidate;
                    if current.mu > best.mu {
                        best = current;
                        best_placement = placement.clone();
                    }
                } else {
                    apply_move(&mut placement, undo);
                }
            }
            mu_history.push(best.mu);
            temperature *= self.config.cooling;
        }

        HeuristicResult {
            best_placement,
            best_cost: best,
            evaluations,
            mu_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn setup() -> (CostEvaluator, Placement) {
        let nl =
            Arc::new(CircuitGenerator::new(GeneratorConfig::sized("sa_test", 110, 5)).generate());
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let p = Placement::round_robin(&nl, 6);
        (eval, p)
    }

    #[test]
    fn sa_improves_or_preserves_quality() {
        let (eval, p) = setup();
        let initial_mu = eval.mu(&p);
        let placer = SimulatedAnnealingPlacer::new(eval.clone(), SaConfig::fast(3));
        let result = placer.run(p);
        assert!(result.best_mu() + 1e-12 >= initial_mu);
        result.best_placement.validate(eval.netlist()).unwrap();
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let (eval, p) = setup();
        let a = SimulatedAnnealingPlacer::new(eval.clone(), SaConfig::fast(7)).run(p.clone());
        let b = SimulatedAnnealingPlacer::new(eval, SaConfig::fast(7)).run(p);
        assert_eq!(a.best_cost.mu, b.best_cost.mu);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn best_mu_history_is_monotone() {
        let (eval, p) = setup();
        let result = SimulatedAnnealingPlacer::new(eval, SaConfig::fast(9)).run(p);
        let mut last = 0.0;
        for &mu in &result.mu_history {
            assert!(mu + 1e-12 >= last);
            last = mu;
        }
        assert_eq!(result.mu_history.len(), SaConfig::fast(9).temperature_steps);
    }

    #[test]
    #[should_panic(expected = "initial_temperature must be > 0")]
    fn rejects_non_positive_initial_temperature() {
        let (eval, _) = setup();
        let cfg = SaConfig {
            initial_temperature: 0.0,
            ..SaConfig::fast(1)
        };
        let _ = SimulatedAnnealingPlacer::new(eval, cfg);
    }

    #[test]
    #[should_panic(expected = "cooling must lie in (0, 1)")]
    fn rejects_cooling_outside_the_open_unit_interval() {
        let (eval, _) = setup();
        let cfg = SaConfig {
            cooling: 1.0,
            ..SaConfig::fast(1)
        };
        let _ = SimulatedAnnealingPlacer::new(eval, cfg);
    }

    #[test]
    fn validate_covers_both_rejection_paths_and_accepts_defaults() {
        assert!(SaConfig::default().validate().is_ok());
        for bad_t in [0.0, -1.0, f64::NAN] {
            let cfg = SaConfig {
                initial_temperature: bad_t,
                ..SaConfig::default()
            };
            assert!(cfg.validate().unwrap_err().contains("initial_temperature"));
        }
        for bad_c in [0.0, 1.0, 1.5, -0.2, f64::NAN] {
            let cfg = SaConfig {
                cooling: bad_c,
                ..SaConfig::default()
            };
            assert!(cfg.validate().unwrap_err().contains("cooling"));
        }
        // The ε-clamp stays: a valid schedule's T→0 tail never divides by 0.
        assert!(acceptance_probability(0.1, 0.0).is_finite());
        assert_eq!(acceptance_probability(-0.1, 0.0), 1.0);
    }

    #[test]
    fn reported_best_cost_matches_best_placement() {
        let (eval, p) = setup();
        let result = SimulatedAnnealingPlacer::new(eval.clone(), SaConfig::fast(11)).run(p);
        let re = eval.evaluate(&result.best_placement);
        assert!((re.mu - result.best_cost.mu).abs() < 1e-12);
    }
}
