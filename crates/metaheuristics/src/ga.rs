//! Genetic Algorithm baseline placer.
//!
//! A steady-state GA over placements encoded as cell permutations (dealt into
//! rows the same way initial placements are built): tournament selection,
//! order crossover (OX1), swap mutation and elitist replacement. Mirrors the
//! serial level of the authors' distributed GA work \[8\].

use crate::common::HeuristicResult;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use vlsi_netlist::CellId;
use vlsi_place::cost::CostEvaluator;
use vlsi_place::layout::Placement;

/// Genetic Algorithm parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-offspring probability of an additional swap mutation.
    pub mutation_rate: f64,
    /// Number of placement rows used when decoding a permutation.
    pub num_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 24,
            generations: 120,
            tournament: 3,
            mutation_rate: 0.3,
            num_rows: 8,
            seed: 1,
        }
    }
}

impl GaConfig {
    /// A small configuration for tests.
    pub fn fast(num_rows: usize, seed: u64) -> Self {
        GaConfig {
            population: 10,
            generations: 20,
            num_rows,
            seed,
            ..Default::default()
        }
    }
}

/// An individual: a permutation of all cells plus its decoded fitness.
#[derive(Debug, Clone)]
struct Individual {
    order: Vec<CellId>,
    mu: f64,
}

/// Genetic Algorithm placer over a shared [`CostEvaluator`].
#[derive(Debug, Clone)]
pub struct GeneticPlacer {
    evaluator: CostEvaluator,
    config: GaConfig,
}

impl GeneticPlacer {
    /// Creates a placer.
    pub fn new(evaluator: CostEvaluator, config: GaConfig) -> Self {
        GeneticPlacer { evaluator, config }
    }

    fn decode(&self, order: &[CellId]) -> Placement {
        Placement::from_order(self.evaluator.netlist(), self.config.num_rows, order)
    }

    fn fitness(&self, order: &[CellId]) -> f64 {
        self.evaluator.mu(&self.decode(order))
    }

    /// Order crossover (OX1) of two parent permutations.
    ///
    /// Copies a random slice `[i, j]` of parent `a` into the child, then
    /// fills the remaining slots with the cells of parent `b` in the order
    /// they appear after position `j`, wrapping around. Public so the
    /// operator's invariants (the child is always a permutation; genes
    /// inside the cut come from `a`) can be tested directly.
    pub fn crossover<R: Rng + ?Sized>(
        &self,
        a: &[CellId],
        b: &[CellId],
        rng: &mut R,
    ) -> Vec<CellId> {
        let n = a.len();
        if n < 2 {
            return a.to_vec();
        }
        let mut i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let mut child: Vec<Option<CellId>> = vec![None; n];
        let mut used = vec![false; n];
        for k in i..=j {
            child[k] = Some(a[k]);
            used[a[k].index()] = true;
        }
        let mut fill = (j + 1) % n;
        for offset in 0..n {
            let candidate = b[(j + 1 + offset) % n];
            if !used[candidate.index()] {
                child[fill] = Some(candidate);
                used[candidate.index()] = true;
                fill = (fill + 1) % n;
            }
        }
        child
            .into_iter()
            .map(|c| c.expect("OX1 fills every slot"))
            .collect()
    }

    /// Swap mutation: with probability `mutation_rate`, swaps two uniformly
    /// chosen positions of `order` (a no-op on permutations shorter than
    /// two). The probability variate is always drawn, so the RNG stream is
    /// independent of whether the mutation fires. Public so the operator's
    /// invariant (the order stays a permutation of the same cells) can be
    /// tested directly.
    pub fn mutate<R: Rng + ?Sized>(&self, order: &mut [CellId], rng: &mut R) {
        if rng.gen::<f64>() < self.config.mutation_rate && order.len() >= 2 {
            let i = rng.gen_range(0..order.len());
            let j = rng.gen_range(0..order.len());
            order.swap(i, j);
        }
    }

    /// Runs the GA. The initial population is built from random permutations
    /// (the `initial` placement seeds one individual so results are
    /// comparable with the other heuristics).
    pub fn run(&self, initial: Placement) -> HeuristicResult {
        let netlist = self.evaluator.netlist().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut evaluations = 0usize;

        // Seed individual from the provided placement: row-major order.
        let seed_order: Vec<CellId> = (0..initial.num_rows())
            .flat_map(|r| initial.row(r).to_vec())
            .collect();

        let mut population: Vec<Individual> = Vec::with_capacity(self.config.population);
        population.push(Individual {
            mu: self.fitness(&seed_order),
            order: seed_order,
        });
        evaluations += 1;
        while population.len() < self.config.population {
            let mut order: Vec<CellId> = netlist.cell_ids().collect();
            order.shuffle(&mut rng);
            let mu = self.fitness(&order);
            evaluations += 1;
            population.push(Individual { order, mu });
        }

        let mut mu_history = Vec::with_capacity(self.config.generations);
        for _ in 0..self.config.generations {
            // Tournament selection of two parents.
            let pick = |rng: &mut ChaCha8Rng, population: &[Individual]| -> usize {
                let mut best = rng.gen_range(0..population.len());
                for _ in 1..self.config.tournament.max(1) {
                    let c = rng.gen_range(0..population.len());
                    if population[c].mu > population[best].mu {
                        best = c;
                    }
                }
                best
            };
            let pa = pick(&mut rng, &population);
            let pb = pick(&mut rng, &population);
            let mut child = self.crossover(&population[pa].order, &population[pb].order, &mut rng);
            self.mutate(&mut child, &mut rng);
            let mu = self.fitness(&child);
            evaluations += 1;

            // Elitist steady-state replacement: replace the worst individual
            // if the child is better.
            let worst = population
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.mu.partial_cmp(&b.1.mu).expect("finite"))
                .map(|(i, _)| i)
                .expect("population is non-empty");
            if mu > population[worst].mu {
                population[worst] = Individual { order: child, mu };
            }

            let best_mu = population
                .iter()
                .map(|i| i.mu)
                .fold(f64::NEG_INFINITY, f64::max);
            mu_history.push(best_mu);
        }

        let best = population
            .iter()
            .max_by(|a, b| a.mu.partial_cmp(&b.mu).expect("finite"))
            .expect("population is non-empty");
        let best_placement = self.decode(&best.order);
        let best_cost = self.evaluator.evaluate(&best_placement);

        HeuristicResult {
            best_placement,
            best_cost,
            evaluations,
            mu_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn setup() -> (CostEvaluator, Placement) {
        let nl =
            Arc::new(CircuitGenerator::new(GeneratorConfig::sized("ga_test", 90, 5)).generate());
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let p = Placement::round_robin(&nl, 6);
        (eval, p)
    }

    #[test]
    fn crossover_produces_a_valid_permutation() {
        let (eval, p) = setup();
        let placer = GeneticPlacer::new(eval.clone(), GaConfig::fast(6, 1));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a: Vec<CellId> = eval.netlist().cell_ids().collect();
        let mut b = a.clone();
        b.shuffle(&mut rng);
        let child = placer.crossover(&a, &b, &mut rng);
        let mut sorted = child.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, a, "child must be a permutation of all cells");
        let _ = p;
    }

    #[test]
    fn ga_improves_or_preserves_quality() {
        // The GA decodes permutations with the width-balancing `from_order`
        // constructor, so the reference is the decoded seed individual (the
        // row-major order of the provided placement), which elitist
        // replacement guarantees is never lost.
        let (eval, p) = setup();
        let seed_order: Vec<CellId> = (0..p.num_rows()).flat_map(|r| p.row(r).to_vec()).collect();
        let seed_mu = eval.mu(&Placement::from_order(eval.netlist(), 6, &seed_order));
        let result = GeneticPlacer::new(eval.clone(), GaConfig::fast(6, 3)).run(p);
        assert!(result.best_mu() + 1e-12 >= seed_mu);
        result.best_placement.validate(eval.netlist()).unwrap();
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let (eval, p) = setup();
        let a = GeneticPlacer::new(eval.clone(), GaConfig::fast(6, 9)).run(p.clone());
        let b = GeneticPlacer::new(eval, GaConfig::fast(6, 9)).run(p);
        assert_eq!(a.best_cost.mu, b.best_cost.mu);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn history_tracks_the_population_best_monotonically() {
        let (eval, p) = setup();
        let cfg = GaConfig::fast(6, 11);
        let result = GeneticPlacer::new(eval, cfg).run(p);
        assert_eq!(result.mu_history.len(), cfg.generations);
        let mut last = 0.0;
        for &mu in &result.mu_history {
            assert!(mu + 1e-12 >= last);
            last = mu;
        }
    }
}
