//! Shared move set and result type for the baseline heuristics.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vlsi_netlist::CellId;
use vlsi_place::cost::CostBreakdown;
use vlsi_place::layout::{Placement, Slot};

/// The two classical standard-cell placement moves used by SA, GA mutation
/// and TS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MoveKind {
    /// Swap the slots of two cells.
    Swap(CellId, CellId),
    /// Move one cell to a new slot.
    Relocate(CellId, Slot),
}

/// Draws a random neighbourhood move for `placement`.
pub fn neighbour_move<R: Rng + ?Sized>(placement: &Placement, rng: &mut R) -> MoveKind {
    let n = placement.num_cells();
    let a = CellId::from(rng.gen_range(0..n));
    if rng.gen_bool(0.5) {
        let mut b = CellId::from(rng.gen_range(0..n));
        while b == a && n > 1 {
            b = CellId::from(rng.gen_range(0..n));
        }
        MoveKind::Swap(a, b)
    } else {
        let row = rng.gen_range(0..placement.num_rows());
        let index = rng.gen_range(0..placement.slots_in_row(row));
        MoveKind::Relocate(a, Slot { row, index })
    }
}

/// Applies `mv` to `placement`, returning an undo move that restores the
/// previous state when applied.
pub fn apply_move(placement: &mut Placement, mv: MoveKind) -> MoveKind {
    match mv {
        MoveKind::Swap(a, b) => {
            placement.swap_cells(a, b);
            MoveKind::Swap(a, b)
        }
        MoveKind::Relocate(cell, slot) => {
            let undo = MoveKind::Relocate(cell, placement.slot_of(cell));
            placement.move_cell(cell, slot);
            undo
        }
    }
}

/// Result of running one of the baseline heuristics.
#[derive(Debug, Clone)]
pub struct HeuristicResult {
    /// The best placement found.
    pub best_placement: Placement,
    /// Cost breakdown of the best placement.
    pub best_cost: CostBreakdown,
    /// Number of cost evaluations performed (the classical effort measure
    /// for move-based heuristics).
    pub evaluations: usize,
    /// Best quality after every iteration / generation.
    pub mu_history: Vec<f64>,
}

impl HeuristicResult {
    /// Best quality reached.
    pub fn best_mu(&self) -> f64 {
        self.best_cost.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};

    fn placement() -> (vlsi_netlist::Netlist, Placement) {
        let nl = CircuitGenerator::new(GeneratorConfig::sized("mh_common", 100, 3)).generate();
        let p = Placement::round_robin(&nl, 6);
        (nl, p)
    }

    #[test]
    fn moves_preserve_legality() {
        let (nl, mut p) = placement();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let mv = neighbour_move(&p, &mut rng);
            apply_move(&mut p, mv);
            p.validate(&nl).unwrap();
        }
    }

    #[test]
    fn relocate_undo_restores_the_slot() {
        let (nl, mut p) = placement();
        let cell = CellId(5);
        let before = p.slot_of(cell);
        let undo = apply_move(&mut p, MoveKind::Relocate(cell, Slot { row: 3, index: 0 }));
        assert_eq!(p.row_of(cell), 3);
        apply_move(&mut p, undo);
        p.validate(&nl).unwrap();
        assert_eq!(p.slot_of(cell).row, before.row);
    }

    #[test]
    fn swap_undo_is_the_same_swap() {
        let (nl, mut p) = placement();
        let (a, b) = (CellId(1), CellId(60));
        let rows_before = (p.row_of(a), p.row_of(b));
        let undo = apply_move(&mut p, MoveKind::Swap(a, b));
        apply_move(&mut p, undo);
        p.validate(&nl).unwrap();
        assert_eq!((p.row_of(a), p.row_of(b)), rows_before);
    }

    #[test]
    fn random_moves_cover_both_kinds() {
        let (_nl, p) = placement();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut swaps = 0;
        let mut relocs = 0;
        for _ in 0..300 {
            match neighbour_move(&p, &mut rng) {
                MoveKind::Swap(..) => swaps += 1,
                MoveKind::Relocate(..) => relocs += 1,
            }
        }
        assert!(swaps > 50 && relocs > 50);
    }
}
