//! Tabu Search baseline placer.
//!
//! A straightforward best-of-neighbourhood TS with a recency-based tabu list
//! over moved cells and an aspiration criterion (a tabu move is allowed when
//! it improves on the best solution found so far). Mirrors the structure of
//! the authors' parallel TS work \[6\] at the serial level.

use crate::common::{apply_move, neighbour_move, HeuristicResult, MoveKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vlsi_netlist::CellId;
use vlsi_place::cost::CostEvaluator;
use vlsi_place::layout::Placement;

/// Tabu Search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TabuConfig {
    /// Number of candidate moves examined per iteration.
    pub candidates_per_iteration: usize,
    /// Tabu tenure: number of iterations a moved cell stays tabu.
    pub tenure: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig {
            candidates_per_iteration: 40,
            tenure: 12,
            iterations: 400,
            seed: 1,
        }
    }
}

impl TabuConfig {
    /// A small configuration for tests.
    pub fn fast(seed: u64) -> Self {
        TabuConfig {
            candidates_per_iteration: 15,
            tenure: 6,
            iterations: 60,
            seed,
        }
    }
}

/// Recency-based tabu list over moved cells.
///
/// A bounded FIFO: [`TabuList::admit`] records the cells of an accepted
/// move, and once more than `tenure` cells are held the oldest entries
/// expire (so a cell stays tabu for roughly `tenure / cells-per-move`
/// iterations). Extracted from the placer loop so membership and expiry
/// semantics are directly testable.
#[derive(Debug, Clone)]
pub struct TabuList {
    entries: VecDeque<CellId>,
    tenure: usize,
}

impl TabuList {
    /// An empty list holding at most `tenure` recently moved cells.
    pub fn new(tenure: usize) -> Self {
        TabuList {
            entries: VecDeque::with_capacity(tenure + 1),
            tenure,
        }
    }

    /// `true` while `cell` is held by the list.
    pub fn contains(&self, cell: CellId) -> bool {
        self.entries.contains(&cell)
    }

    /// `true` if any cell of the move is currently tabu.
    pub fn is_tabu(&self, moved_cells: &[CellId]) -> bool {
        moved_cells.iter().any(|&c| self.contains(c))
    }

    /// Records an accepted move's cells, expiring the oldest entries beyond
    /// the tenure.
    pub fn admit(&mut self, moved_cells: &[CellId]) {
        for &c in moved_cells {
            self.entries.push_back(c);
        }
        while self.entries.len() > self.tenure {
            self.entries.pop_front();
        }
    }

    /// Number of cells currently held (≤ tenure).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no cell is tabu.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Tabu Search placer over a shared [`CostEvaluator`].
#[derive(Debug, Clone)]
pub struct TabuSearchPlacer {
    evaluator: CostEvaluator,
    config: TabuConfig,
}

impl TabuSearchPlacer {
    /// Creates a placer.
    pub fn new(evaluator: CostEvaluator, config: TabuConfig) -> Self {
        TabuSearchPlacer { evaluator, config }
    }

    /// Runs TS from the given initial placement.
    pub fn run(&self, initial: Placement) -> HeuristicResult {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut placement = initial;
        let mut current = self.evaluator.evaluate(&placement);
        let mut best = current;
        let mut best_placement = placement.clone();
        let mut evaluations = 1usize;
        let mut mu_history = Vec::with_capacity(self.config.iterations);

        let mut tabu = TabuList::new(self.config.tenure);

        for _ in 0..self.config.iterations {
            let mut best_candidate: Option<(MoveKind, f64)> = None;
            for _ in 0..self.config.candidates_per_iteration {
                let mv = neighbour_move(&placement, &mut rng);
                let moved_cells: Vec<CellId> = match mv {
                    MoveKind::Swap(a, b) => vec![a, b],
                    MoveKind::Relocate(c, _) => vec![c],
                };
                let undo = apply_move(&mut placement, mv);
                let candidate = self.evaluator.evaluate(&placement);
                evaluations += 1;
                apply_move(&mut placement, undo);

                let aspires = candidate.mu > best.mu;
                if tabu.is_tabu(&moved_cells) && !aspires {
                    continue;
                }
                if best_candidate.is_none_or(|(_, mu)| candidate.mu > mu) {
                    best_candidate = Some((mv, candidate.mu));
                }
            }

            if let Some((mv, _)) = best_candidate {
                let moved_cells: Vec<CellId> = match mv {
                    MoveKind::Swap(a, b) => vec![a, b],
                    MoveKind::Relocate(c, _) => vec![c],
                };
                apply_move(&mut placement, mv);
                current = self.evaluator.evaluate(&placement);
                evaluations += 1;
                tabu.admit(&moved_cells);
                if current.mu > best.mu {
                    best = current;
                    best_placement = placement.clone();
                }
            }
            mu_history.push(best.mu);
        }

        HeuristicResult {
            best_placement,
            best_cost: best,
            evaluations,
            mu_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn setup() -> (CostEvaluator, Placement) {
        let nl =
            Arc::new(CircuitGenerator::new(GeneratorConfig::sized("tabu_test", 100, 5)).generate());
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let p = Placement::round_robin(&nl, 6);
        (eval, p)
    }

    #[test]
    fn tabu_improves_or_preserves_quality() {
        let (eval, p) = setup();
        let initial_mu = eval.mu(&p);
        let result = TabuSearchPlacer::new(eval.clone(), TabuConfig::fast(3)).run(p);
        assert!(result.best_mu() + 1e-12 >= initial_mu);
        result.best_placement.validate(eval.netlist()).unwrap();
    }

    #[test]
    fn tabu_is_deterministic_per_seed() {
        let (eval, p) = setup();
        let a = TabuSearchPlacer::new(eval.clone(), TabuConfig::fast(5)).run(p.clone());
        let b = TabuSearchPlacer::new(eval, TabuConfig::fast(5)).run(p);
        assert_eq!(a.best_cost.mu, b.best_cost.mu);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn history_has_one_entry_per_iteration_and_is_monotone() {
        let (eval, p) = setup();
        let cfg = TabuConfig::fast(7);
        let result = TabuSearchPlacer::new(eval, cfg).run(p);
        assert_eq!(result.mu_history.len(), cfg.iterations);
        let mut last = 0.0;
        for &mu in &result.mu_history {
            assert!(mu + 1e-12 >= last);
            last = mu;
        }
    }

    #[test]
    fn reported_best_matches_placement() {
        let (eval, p) = setup();
        let result = TabuSearchPlacer::new(eval.clone(), TabuConfig::fast(9)).run(p);
        let re = eval.evaluate(&result.best_placement);
        assert!((re.mu - result.best_cost.mu).abs() < 1e-12);
    }
}
