//! Epoch-stepped adapters over the baseline placers.
//!
//! The one-shot [`crate::sa::SimulatedAnnealingPlacer::run`] /
//! [`crate::ga::GeneticPlacer::run`] / [`crate::tabu::TabuSearchPlacer::run`]
//! entry points own their whole search loop, which makes them unusable as
//! *islands* of a bulk-synchronous portfolio: an island must advance one
//! epoch at a time, hand its best solution out at migration barriers, and
//! adopt migrants between epochs. The [`Optimizer`] trait is that step-able
//! surface, and [`SaIsland`] / [`GaIsland`] / [`TabuIsland`] implement it by
//! hoisting each placer's loop state (RNG stream, working placement,
//! population, tabu list, temperature) into a persistent value.
//!
//! The adapters preserve the placers' exact decision sequences: stepping an
//! island `N` times (with no migrants) is bitwise identical to a one-shot
//! run configured for `N` temperature steps / generations / iterations —
//! same RNG stream, same accept/reject decisions, same best solution. Every
//! island is `Send` and draws only from state it owns, so islands can run as
//! fan-out tasks on any execution backend without breaking determinism.
//!
//! One **epoch** is the placer's natural outer unit: a full temperature step
//! for SA, one generation for GA, one best-of-neighbourhood iteration for
//! TS. [`Optimizer::step`] reports the work the epoch performed as an
//! [`EpochWork`] so a driver can price it on a modeled machine.

use crate::common::{apply_move, neighbour_move, MoveKind};
use crate::ga::{GaConfig, GeneticPlacer};
use crate::sa::{acceptance_probability, SaConfig, SimulatedAnnealingPlacer};
use crate::tabu::{TabuConfig, TabuList, TabuSearchPlacer};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vlsi_netlist::CellId;
use vlsi_place::cost::{CostBreakdown, CostEvaluator};
use vlsi_place::layout::Placement;

/// Work one epoch performed, in the workload currency of the simulated
/// cluster: net-length evaluations (every full cost evaluation estimates all
/// nets once) plus per-move bookkeeping operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochWork {
    /// Net-length estimations performed this epoch.
    pub net_evaluations: u64,
    /// Miscellaneous bookkeeping operations (move generation, accept tests).
    pub misc_operations: u64,
}

/// A step-able optimizer island. See the [module docs](self) for the epoch
/// semantics and the determinism contract the adapters uphold.
pub trait Optimizer: Send {
    /// Short stable label of the algorithm (`"sa"`, `"ga"`, `"tabu"`, …).
    fn name(&self) -> &'static str;

    /// Advances the search by one epoch and reports the work performed.
    fn step(&mut self) -> EpochWork;

    /// The best placement found so far.
    fn best_placement(&self) -> &Placement;

    /// Cost of the best placement found so far.
    fn best_cost(&self) -> CostBreakdown;

    /// Offers a migrant solution at a migration barrier. The island adopts
    /// it into its working state iff it improves on the island's own current
    /// solution; its best-so-far bookkeeping updates accordingly. Receiving
    /// never draws from the island's RNG stream, so the subsequent epochs'
    /// random decisions are independent of whether a migrant arrived.
    fn receive(&mut self, migrant: &Placement, cost: CostBreakdown);

    /// Total full cost evaluations performed so far (the classical effort
    /// measure, comparable with [`crate::common::HeuristicResult::evaluations`]).
    fn evaluations(&self) -> usize;
}

/// Simulated Annealing island: one epoch = one temperature step
/// (`moves_per_temperature` moves, then geometric cooling).
pub struct SaIsland {
    evaluator: CostEvaluator,
    config: SaConfig,
    rng: ChaCha8Rng,
    placement: Placement,
    current: CostBreakdown,
    best: CostBreakdown,
    best_placement: Placement,
    temperature: f64,
    evaluations: usize,
}

impl SaIsland {
    /// An island starting from `initial`, with the same validation as
    /// [`SimulatedAnnealingPlacer::new`].
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SaConfig::validate`].
    pub fn new(evaluator: CostEvaluator, config: SaConfig, initial: Placement) -> Self {
        // Route through the placer so the config validation lives once.
        let _ = SimulatedAnnealingPlacer::new(evaluator.clone(), config);
        let current = evaluator.evaluate(&initial);
        SaIsland {
            evaluator,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            best_placement: initial.clone(),
            placement: initial,
            current,
            best: current,
            temperature: config.initial_temperature,
            evaluations: 1,
            config,
        }
    }
}

impl Optimizer for SaIsland {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn step(&mut self) -> EpochWork {
        // Mirrors the inner loop of `SimulatedAnnealingPlacer::run` exactly,
        // including the no-variate-on-downhill short-circuit.
        let mut evals_this_epoch = 0u64;
        for _ in 0..self.config.moves_per_temperature {
            let mv = neighbour_move(&self.placement, &mut self.rng);
            let undo = apply_move(&mut self.placement, mv);
            let candidate = self.evaluator.evaluate(&self.placement);
            self.evaluations += 1;
            evals_this_epoch += 1;
            let delta = (1.0 - candidate.mu) - (1.0 - self.current.mu);
            let accept = delta <= 0.0
                || self.rng.gen::<f64>() < acceptance_probability(delta, self.temperature);
            if accept {
                self.current = candidate;
                if self.current.mu > self.best.mu {
                    self.best = self.current;
                    self.best_placement = self.placement.clone();
                }
            } else {
                apply_move(&mut self.placement, undo);
            }
        }
        self.temperature *= self.config.cooling;
        EpochWork {
            net_evaluations: evals_this_epoch * self.evaluator.netlist().num_nets() as u64,
            misc_operations: evals_this_epoch * 4,
        }
    }

    fn best_placement(&self) -> &Placement {
        &self.best_placement
    }

    fn best_cost(&self) -> CostBreakdown {
        self.best
    }

    fn receive(&mut self, migrant: &Placement, cost: CostBreakdown) {
        if cost.mu > self.current.mu {
            self.placement = migrant.clone();
            self.current = cost;
            if cost.mu > self.best.mu {
                self.best = cost;
                self.best_placement = migrant.clone();
            }
        }
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// GA individual: a permutation of all cells plus its decoded fitness.
struct GaIndividual {
    order: Vec<CellId>,
    mu: f64,
}

/// Genetic Algorithm island: one epoch = one steady-state generation
/// (tournament selection, OX1 crossover, swap mutation, elitist
/// replacement).
pub struct GaIsland {
    placer: GeneticPlacer,
    evaluator: CostEvaluator,
    config: GaConfig,
    rng: ChaCha8Rng,
    population: Vec<GaIndividual>,
    best: CostBreakdown,
    best_placement: Placement,
    evaluations: usize,
}

impl GaIsland {
    /// An island whose population is seeded exactly like
    /// [`GeneticPlacer::run`]: one individual decodes `initial` (row-major
    /// order), the rest are random permutations from the island's own RNG
    /// stream.
    pub fn new(evaluator: CostEvaluator, config: GaConfig, initial: Placement) -> Self {
        let placer = GeneticPlacer::new(evaluator.clone(), config);
        let netlist = evaluator.netlist().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut evaluations = 0usize;

        let decode = |order: &[CellId]| Placement::from_order(&netlist, config.num_rows, order);
        let seed_order: Vec<CellId> = (0..initial.num_rows())
            .flat_map(|r| initial.row(r).to_vec())
            .collect();
        let mut population = Vec::with_capacity(config.population);
        population.push(GaIndividual {
            mu: evaluator.mu(&decode(&seed_order)),
            order: seed_order,
        });
        evaluations += 1;
        while population.len() < config.population {
            let mut order: Vec<CellId> = netlist.cell_ids().collect();
            order.shuffle(&mut rng);
            let mu = evaluator.mu(&decode(&order));
            evaluations += 1;
            population.push(GaIndividual { order, mu });
        }

        let best_ix = population
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.mu.partial_cmp(&b.1.mu).expect("finite"))
            .map(|(i, _)| i)
            .expect("population is non-empty");
        let best_placement = decode(&population[best_ix].order);
        let best = evaluator.evaluate(&best_placement);
        GaIsland {
            placer,
            evaluator,
            config,
            rng,
            population,
            best,
            best_placement,
            evaluations,
        }
    }

    fn decode(&self, order: &[CellId]) -> Placement {
        Placement::from_order(self.evaluator.netlist(), self.config.num_rows, order)
    }

    /// Refreshes the cached best if `order`/`mu` beats it.
    fn consider_best(&mut self, order: &[CellId], mu: f64) {
        if mu > self.best.mu {
            self.best_placement = self.decode(order);
            self.best = self.evaluator.evaluate(&self.best_placement);
        }
    }
}

impl Optimizer for GaIsland {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn step(&mut self) -> EpochWork {
        // Mirrors one generation of `GeneticPlacer::run` exactly.
        let pick = |rng: &mut ChaCha8Rng, population: &[GaIndividual]| -> usize {
            let mut best = rng.gen_range(0..population.len());
            for _ in 1..self.config.tournament.max(1) {
                let c = rng.gen_range(0..population.len());
                if population[c].mu > population[best].mu {
                    best = c;
                }
            }
            best
        };
        let pa = pick(&mut self.rng, &self.population);
        let pb = pick(&mut self.rng, &self.population);
        let mut child = self.placer.crossover(
            &self.population[pa].order,
            &self.population[pb].order,
            &mut self.rng,
        );
        self.placer.mutate(&mut child, &mut self.rng);
        let mu = self.evaluator.mu(&self.decode(&child));
        self.evaluations += 1;

        let worst = self
            .population
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.mu.partial_cmp(&b.1.mu).expect("finite"))
            .map(|(i, _)| i)
            .expect("population is non-empty");
        if mu > self.population[worst].mu {
            self.population[worst] = GaIndividual {
                order: child.clone(),
                mu,
            };
            self.consider_best(&child, mu);
        }
        EpochWork {
            net_evaluations: self.evaluator.netlist().num_nets() as u64,
            misc_operations: self.population.len() as u64 * 2,
        }
    }

    fn best_placement(&self) -> &Placement {
        &self.best_placement
    }

    fn best_cost(&self) -> CostBreakdown {
        self.best
    }

    fn receive(&mut self, migrant: &Placement, cost: CostBreakdown) {
        // A migrant joins the population as a row-major order, replacing the
        // worst individual iff it improves on it. Its fitness is the decoded
        // fitness (decoding may re-balance rows), not the incoming cost.
        let order: Vec<CellId> = (0..migrant.num_rows())
            .flat_map(|r| migrant.row(r).to_vec())
            .collect();
        let mu = self.evaluator.mu(&self.decode(&order));
        let worst = self
            .population
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.mu.partial_cmp(&b.1.mu).expect("finite"))
            .map(|(i, _)| i)
            .expect("population is non-empty");
        if mu > self.population[worst].mu {
            self.population[worst] = GaIndividual {
                order: order.clone(),
                mu,
            };
            self.consider_best(&order, mu);
        }
        let _ = cost;
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// Tabu Search island: one epoch = one best-of-neighbourhood iteration
/// (`candidates_per_iteration` probed moves, tabu filtering with aspiration,
/// apply the winner).
pub struct TabuIsland {
    evaluator: CostEvaluator,
    config: TabuConfig,
    rng: ChaCha8Rng,
    placement: Placement,
    current: CostBreakdown,
    best: CostBreakdown,
    best_placement: Placement,
    tabu: TabuList,
    evaluations: usize,
}

impl TabuIsland {
    /// An island starting from `initial`, with the same initial evaluation
    /// as [`TabuSearchPlacer::run`].
    pub fn new(evaluator: CostEvaluator, config: TabuConfig, initial: Placement) -> Self {
        let _ = TabuSearchPlacer::new(evaluator.clone(), config);
        let current = evaluator.evaluate(&initial);
        TabuIsland {
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            best_placement: initial.clone(),
            placement: initial,
            current,
            best: current,
            tabu: TabuList::new(config.tenure),
            evaluations: 1,
            evaluator,
            config,
        }
    }
}

impl Optimizer for TabuIsland {
    fn name(&self) -> &'static str {
        "tabu"
    }

    fn step(&mut self) -> EpochWork {
        // Mirrors one iteration of `TabuSearchPlacer::run` exactly.
        let mut evals_this_epoch = 0u64;
        let mut best_candidate: Option<(MoveKind, f64)> = None;
        for _ in 0..self.config.candidates_per_iteration {
            let mv = neighbour_move(&self.placement, &mut self.rng);
            let moved_cells: Vec<CellId> = match mv {
                MoveKind::Swap(a, b) => vec![a, b],
                MoveKind::Relocate(c, _) => vec![c],
            };
            let undo = apply_move(&mut self.placement, mv);
            let candidate = self.evaluator.evaluate(&self.placement);
            self.evaluations += 1;
            evals_this_epoch += 1;
            apply_move(&mut self.placement, undo);

            let aspires = candidate.mu > self.best.mu;
            if self.tabu.is_tabu(&moved_cells) && !aspires {
                continue;
            }
            if best_candidate.is_none_or(|(_, mu)| candidate.mu > mu) {
                best_candidate = Some((mv, candidate.mu));
            }
        }
        if let Some((mv, _)) = best_candidate {
            let moved_cells: Vec<CellId> = match mv {
                MoveKind::Swap(a, b) => vec![a, b],
                MoveKind::Relocate(c, _) => vec![c],
            };
            apply_move(&mut self.placement, mv);
            self.current = self.evaluator.evaluate(&self.placement);
            self.evaluations += 1;
            evals_this_epoch += 1;
            self.tabu.admit(&moved_cells);
            if self.current.mu > self.best.mu {
                self.best = self.current;
                self.best_placement = self.placement.clone();
            }
        }
        EpochWork {
            net_evaluations: evals_this_epoch * self.evaluator.netlist().num_nets() as u64,
            misc_operations: evals_this_epoch * 4,
        }
    }

    fn best_placement(&self) -> &Placement {
        &self.best_placement
    }

    fn best_cost(&self) -> CostBreakdown {
        self.best
    }

    fn receive(&mut self, migrant: &Placement, cost: CostBreakdown) {
        if cost.mu > self.current.mu {
            self.placement = migrant.clone();
            self.current = cost;
            if cost.mu > self.best.mu {
                self.best = cost;
                self.best_placement = migrant.clone();
            }
        }
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::HeuristicResult;
    use std::sync::Arc;
    use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
    use vlsi_place::cost::Objectives;

    fn setup() -> (CostEvaluator, Placement) {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("island_test", 100, 5)).generate(),
        );
        let eval = CostEvaluator::new(Arc::clone(&nl), Objectives::WirelengthPower);
        let p = Placement::round_robin(&nl, 6);
        (eval, p)
    }

    fn assert_matches_one_shot(stepped: &dyn Optimizer, one_shot: &HeuristicResult) {
        assert_eq!(
            stepped.best_cost().mu.to_bits(),
            one_shot.best_cost.mu.to_bits(),
            "{}: stepping must replay the one-shot decision sequence",
            stepped.name()
        );
        assert_eq!(
            stepped.evaluations(),
            one_shot.evaluations,
            "{}",
            stepped.name()
        );
        for row in 0..one_shot.best_placement.num_rows() {
            assert_eq!(
                stepped.best_placement().row(row),
                one_shot.best_placement.row(row),
                "{}: best placement differs in row {row}",
                stepped.name()
            );
        }
    }

    #[test]
    fn sa_island_steps_replay_the_one_shot_run() {
        let (eval, p) = setup();
        let cfg = SaConfig {
            temperature_steps: 7,
            ..SaConfig::fast(5)
        };
        let one_shot = SimulatedAnnealingPlacer::new(eval.clone(), cfg).run(p.clone());
        let mut island = SaIsland::new(eval, cfg, p);
        for _ in 0..cfg.temperature_steps {
            island.step();
        }
        assert_matches_one_shot(&island, &one_shot);
    }

    #[test]
    fn ga_island_steps_replay_the_one_shot_run() {
        let (eval, p) = setup();
        let cfg = GaConfig {
            generations: 9,
            ..GaConfig::fast(6, 5)
        };
        let one_shot = GeneticPlacer::new(eval.clone(), cfg).run(p.clone());
        let mut island = GaIsland::new(eval, cfg, p);
        for _ in 0..cfg.generations {
            island.step();
        }
        assert_matches_one_shot(&island, &one_shot);
    }

    #[test]
    fn tabu_island_steps_replay_the_one_shot_run() {
        let (eval, p) = setup();
        let cfg = TabuConfig {
            iterations: 8,
            ..TabuConfig::fast(5)
        };
        let one_shot = TabuSearchPlacer::new(eval.clone(), cfg).run(p.clone());
        let mut island = TabuIsland::new(eval, cfg, p);
        for _ in 0..cfg.iterations {
            island.step();
        }
        assert_matches_one_shot(&island, &one_shot);
    }

    #[test]
    fn islands_adopt_better_migrants_and_ignore_worse_ones() {
        let (eval, _) = setup();
        // Start from a deliberately poor random placement and manufacture a
        // strictly better migrant by running SA for a while.
        let p = Placement::random(eval.netlist(), 6, &mut ChaCha8Rng::seed_from_u64(99));
        let better = SimulatedAnnealingPlacer::new(eval.clone(), SaConfig::fast(11)).run(p.clone());
        let better_cost = better.best_cost;
        let initial_cost = eval.evaluate(&p);
        assert!(better_cost.mu > initial_cost.mu, "SA must improve here");

        let islands: Vec<Box<dyn Optimizer>> = vec![
            Box::new(SaIsland::new(eval.clone(), SaConfig::fast(1), p.clone())),
            Box::new(GaIsland::new(eval.clone(), GaConfig::fast(6, 1), p.clone())),
            Box::new(TabuIsland::new(
                eval.clone(),
                TabuConfig::fast(1),
                p.clone(),
            )),
        ];
        for mut island in islands {
            let before = island.best_cost().mu;
            // A migrant equal to the island's own start must change nothing.
            island.receive(&p, initial_cost);
            assert_eq!(island.best_cost().mu.to_bits(), before.to_bits());
            // A strictly better migrant must raise the island's best.
            island.receive(&better.best_placement, better_cost);
            assert!(
                island.best_cost().mu >= better_cost.mu - 1e-9,
                "{}: migrant not adopted",
                island.name()
            );
        }
    }

    #[test]
    fn receiving_does_not_touch_the_rng_stream() {
        let (eval, p) = setup();
        let mut plain = TabuIsland::new(eval.clone(), TabuConfig::fast(3), p.clone());
        let mut fed = TabuIsland::new(eval, TabuConfig::fast(3), p);
        plain.step();
        fed.step();
        // Feeding a *worse* migrant (rejected) must leave the subsequent
        // trajectory bitwise identical: receive draws no variates.
        let worse_cost = CostBreakdown {
            mu: 0.0,
            ..fed.best_cost()
        };
        fed.receive(plain.best_placement(), worse_cost);
        for _ in 0..3 {
            plain.step();
            fed.step();
        }
        assert_eq!(plain.best_cost().mu.to_bits(), fed.best_cost().mu.to_bits());
        assert_eq!(plain.evaluations(), fed.evaluations());
    }

    #[test]
    fn islands_are_deterministic_per_seed() {
        let (eval, p) = setup();
        let mut a = GaIsland::new(eval.clone(), GaConfig::fast(6, 9), p.clone());
        let mut b = GaIsland::new(eval, GaConfig::fast(6, 9), p);
        for _ in 0..5 {
            a.step();
            b.step();
        }
        assert_eq!(a.best_cost().mu.to_bits(), b.best_cost().mu.to_bits());
    }
}
