//! # metaheuristics
//!
//! Baseline stochastic placers over the same multiobjective cost model as the
//! SimE engine: Simulated Annealing, a Genetic Algorithm and Tabu Search.
//!
//! Section 7 of the paper compares the parallelization behaviour of SimE with
//! the authors' parallel SA \[11\], GA \[8\] and TS \[6\] implementations for the
//! same placement problem, observing that cooperative parallel searches suit
//! SA and GA while a Type I (move-evaluation) parallelization suits TS. This
//! crate provides serial implementations of those baselines so that the
//! workspace can (a) sanity-check the SimE quality against well-understood
//! heuristics and (b) reproduce the qualitative comparison in experiment E5
//! of `DESIGN.md`.
//!
//! All three heuristics share the move set of [`common::neighbour_move`]
//! (swap two cells or move one cell to another slot) and report the same
//! fuzzy quality `µ(s)` as the SimE engine, so results are directly
//! comparable.

#![warn(missing_docs)]

pub mod common;
pub mod ga;
pub mod optimizer;
pub mod sa;
pub mod tabu;

pub use common::{HeuristicResult, MoveKind};
pub use ga::{GaConfig, GeneticPlacer};
pub use optimizer::{EpochWork, GaIsland, Optimizer, SaIsland, TabuIsland};
pub use sa::{acceptance_probability, SaConfig, SimulatedAnnealingPlacer};
pub use tabu::{TabuConfig, TabuList, TabuSearchPlacer};

/// Convenience prelude bringing the baseline placers into scope.
pub mod prelude {
    pub use crate::common::HeuristicResult;
    pub use crate::ga::{GaConfig, GeneticPlacer};
    pub use crate::optimizer::{EpochWork, GaIsland, Optimizer, SaIsland, TabuIsland};
    pub use crate::sa::{SaConfig, SimulatedAnnealingPlacer};
    pub use crate::tabu::{TabuConfig, TabuSearchPlacer};
}
