//! Experiment E8 — host wall-clock scaling of the `Threaded` execution
//! backend versus the `Modeled` (inline) backend, at 1/2/4 OS workers.
//!
//! This measures *real* shared-memory parallelism, not the virtual-time
//! model: the modeled cluster runtimes of the reproduced tables are identical
//! across backends by the determinism contract (`DESIGN.md` §4); what the
//! threaded backend buys is wall-clock, and only on hosts with enough cores.
//! Type III is the headline workload (its `p − 1` full SimE iterations per
//! generation are embarrassingly parallel); Type II adds a domain-decomposed
//! workload whose tasks are ~1/p of an iteration each.
//!
//! `perf_report` runs the same matrix at reduced scale and emits
//! `BENCH_PR3.json` with the measured speedups plus the host's available
//! parallelism, so CI archives the scaling trajectory per run.
//!
//! The matrix also carries an **intra-rank axis** (`threaded_w4_ev{2,4}`):
//! the same runs with the `EvalParallelism` knob chunking each rank's
//! goodness pass and trial scoring across the shared pool. On the paper tier
//! the per-chunk work is small, so this axis mostly measures the fan-out
//! overhead floor; the extended-tier numbers where the knob pays off live in
//! `BENCH_PR5.json` (`perf_report --only pr5`).

use cluster_sim::timeline::ClusterConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use sime_core::engine::{SimEConfig, SimEEngine};
use sime_parallel::exec::{ExecBackend, Modeled, Threaded};
use sime_parallel::type2::{run_type2_on, RowPattern, Type2Config};
use sime_parallel::type3::{run_type3_on, Type3Config};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use vlsi_netlist::bench_suite::{paper_circuit, PaperCircuit};
use vlsi_place::cost::Objectives;

const ITERATIONS: usize = 8;

fn scaling(c: &mut Criterion) {
    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let config =
        SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), ITERATIONS);
    let engine = SimEEngine::new(netlist, config);

    let mut group = c.benchmark_group("parallel_scaling_s1196");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);

    let backends: Vec<(&str, Box<dyn ExecBackend>)> = vec![
        ("modeled", Box::new(Modeled)),
        ("threaded_w1", Box::new(Threaded::new(1))),
        ("threaded_w2", Box::new(Threaded::new(2))),
        ("threaded_w4", Box::new(Threaded::new(4))),
        (
            "threaded_w4_ev2",
            Box::new(Threaded::new(4).with_eval_chunks(2)),
        ),
        (
            "threaded_w4_ev4",
            Box::new(Threaded::new(4).with_eval_chunks(4)),
        ),
    ];

    for (label, backend) in &backends {
        group.bench_function(format!("type3_p5/{label}"), |b| {
            b.iter(|| {
                black_box(run_type3_on(
                    &engine,
                    ClusterConfig::paper_cluster(5),
                    Type3Config {
                        ranks: 5,
                        iterations: ITERATIONS,
                        retry_threshold: 5,
                    },
                    backend.as_ref(),
                ))
            })
        });
    }

    for (label, backend) in &backends {
        group.bench_function(format!("type2_random_p4/{label}"), |b| {
            b.iter(|| {
                black_box(run_type2_on(
                    &engine,
                    ClusterConfig::paper_cluster(4),
                    Type2Config {
                        ranks: 4,
                        iterations: ITERATIONS,
                        pattern: RowPattern::Random,
                    },
                    backend.as_ref(),
                ))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
