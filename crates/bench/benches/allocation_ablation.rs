//! Criterion ablation of the allocation strategies (experiment E6): windowed
//! best fit (the default, matching the paper's cost structure), exhaustive
//! best fit, first fit and the random-window variant.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sime_core::allocation::{allocate_all, AllocScratch, AllocationConfig, AllocationStrategy};
use sime_core::engine::{SimEConfig, SimEEngine};
use sime_core::profile::ProfileReport;
use sime_core::selection::{select, SelectionScheme};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use vlsi_netlist::bench_suite::{paper_circuit, PaperCircuit};
use vlsi_place::cost::Objectives;

fn allocation_ablation(c: &mut Criterion) {
    let circuit = PaperCircuit::S1238;
    let netlist = Arc::new(paper_circuit(circuit));
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 1);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let placement = engine.initial_placement(&mut rng);
    let mut profile = ProfileReport::new();
    let (_lengths, goodness) = engine.evaluate(&placement, &mut profile);

    let strategies = [
        ("windowed_best_fit", AllocationStrategy::WindowedBestFit),
        ("exhaustive_best_fit", AllocationStrategy::SortedBestFit),
        ("first_fit", AllocationStrategy::FirstFit),
        ("random_window", AllocationStrategy::RandomWindow),
    ];

    let mut group = c.benchmark_group("allocation_strategies_s1238");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(15);
    for (name, strategy) in strategies {
        let alloc_config = AllocationConfig {
            strategy,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut r = ChaCha8Rng::seed_from_u64(11);
                    let selected = select(&goodness, SelectionScheme::Biasless, &mut r, &[]);
                    let scratch = AllocScratch::for_evaluator(engine.evaluator());
                    (placement.clone(), selected, r, scratch)
                },
                |(mut p, mut selected, mut r, mut scratch)| {
                    black_box(allocate_all(
                        engine.evaluator(),
                        &mut scratch,
                        &mut p,
                        &mut selected,
                        &goodness,
                        &alloc_config,
                        &[],
                        &mut r,
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, allocation_ablation);
criterion_main!(benches);
