//! Criterion microbenchmarks of the cost-model kernels: the per-net
//! wirelength estimators, full-placement evaluation and per-cell goodness.
//! These are the kernels whose relative costs drive the Section 4 profile.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use vlsi_netlist::bench_suite::{paper_circuit, PaperCircuit};
use vlsi_netlist::CellId;
use vlsi_place::cost::{CostEvaluator, Objectives};
use vlsi_place::goodness::GoodnessEvaluator;
use vlsi_place::kernel::{NetLengthCache, TrialScorer};
use vlsi_place::layout::{Placement, Slot};
use vlsi_place::wirelength::{hpwl, single_trunk_steiner};

fn bench_estimators(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let pins: Vec<(f64, f64)> = (0..8)
        .map(|_| {
            (
                rand::Rng::gen_range(&mut rng, 0.0..500.0),
                rand::Rng::gen_range(&mut rng, 0.0..120.0),
            )
        })
        .collect();
    let mut group = c.benchmark_group("wirelength_estimators");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(50);
    group.bench_function("single_trunk_steiner_8pin", |b| {
        b.iter(|| black_box(single_trunk_steiner(black_box(&pins))))
    });
    group.bench_function("hpwl_8pin", |b| {
        b.iter(|| black_box(hpwl(black_box(&pins))))
    });
    group.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let netlist = Arc::new(paper_circuit(PaperCircuit::S1196));
    let mut group = c.benchmark_group("full_evaluation_s1196");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    for objectives in [
        Objectives::WirelengthPower,
        Objectives::WirelengthPowerDelay,
    ] {
        let evaluator = CostEvaluator::new(Arc::clone(&netlist), objectives);
        let placement = Placement::round_robin(&netlist, PaperCircuit::S1196.num_rows());
        group.bench_function(objectives.label(), |b| {
            b.iter(|| black_box(evaluator.evaluate(black_box(&placement))))
        });
    }
    group.finish();
}

fn bench_goodness(c: &mut Criterion) {
    let netlist = Arc::new(paper_circuit(PaperCircuit::S1196));
    let evaluator = CostEvaluator::new(Arc::clone(&netlist), Objectives::WirelengthPowerDelay);
    let goodness = GoodnessEvaluator::new(evaluator.clone());
    let placement = Placement::round_robin(&netlist, PaperCircuit::S1196.num_rows());
    let mut group = c.benchmark_group("goodness_s1196");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    group.bench_function("all_cells", |b| {
        b.iter_batched(
            || evaluator.net_lengths(&placement),
            |lengths| black_box(goodness.all_goodness_from_lengths(&lengths)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Naive-vs-kernel head-to-head (the PR 2 speedup claim, reproducible with
/// `cargo bench -p bench --bench cost_kernels -- naive_vs_kernel`):
/// trial scoring of one cell over a window of slots, a full net-length
/// evaluation, and a delta re-evaluation after k cell moves.
fn bench_naive_vs_kernel(c: &mut Criterion) {
    let netlist = Arc::new(paper_circuit(PaperCircuit::S1196));
    let evaluator = CostEvaluator::new(Arc::clone(&netlist), Objectives::WirelengthPower);
    let rows = PaperCircuit::S1196.num_rows();
    let placement = Placement::round_robin(&netlist, rows);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let cell = netlist
        .cell_ids()
        .max_by_key(|&c| netlist.nets_of_cell(c).len())
        .unwrap();
    let slots: Vec<Slot> = (0..48)
        .map(|_| {
            let row = rng.gen_range(0..rows);
            Slot {
                row,
                index: rng.gen_range(0..placement.row(row).len() + 1),
            }
        })
        .collect();

    let mut group = c.benchmark_group("naive_vs_kernel_s1196");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);

    // -- Trial scoring: one ripped-up cell scored at 48 candidate slots.
    let mut ripped = placement.clone();
    ripped.remove_cell(cell);
    group.bench_function("trial_scoring_48slots/naive", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &slot in &slots {
                let pos = ripped.trial_position(cell, slot);
                acc += evaluator.cell_cost_at(&ripped, cell, pos).wirelength;
            }
            black_box(acc)
        })
    });
    group.bench_function("trial_scoring_48slots/kernel", |b| {
        let mut scorer = TrialScorer::for_evaluator(&evaluator);
        b.iter(|| {
            let mut acc = 0.0;
            scorer.prepare_cell(&evaluator, &ripped, cell);
            for &slot in &slots {
                let pos = ripped.trial_position(cell, slot);
                acc += scorer.prepared_cost_at(pos).wirelength;
            }
            black_box(acc)
        })
    });

    // -- Full evaluation of every net length.
    group.bench_function("full_net_lengths/naive", |b| {
        b.iter(|| black_box(evaluator.net_lengths(black_box(&placement))))
    });
    group.bench_function("full_net_lengths/kernel", |b| {
        let mut scorer = TrialScorer::for_evaluator(&evaluator);
        b.iter_batched(
            NetLengthCache::new,
            |mut cache| {
                cache.refresh(&evaluator, &mut scorer, &placement);
                black_box(cache.lengths().len())
            },
            BatchSize::SmallInput,
        )
    });

    // -- Delta evaluation: k = 8 cell moves, then re-evaluate all lengths.
    let moves: Vec<(CellId, Slot)> = (0..8)
        .map(|i| {
            let c = CellId((i * 37) % netlist.num_cells() as u32);
            let row = (i as usize * 3) % rows;
            (c, Slot { row, index: 0 })
        })
        .collect();
    group.bench_function("delta_after_8_moves/naive", |b| {
        b.iter_batched(
            || placement.clone(),
            |mut p| {
                for &(c, s) in &moves {
                    p.move_cell(c, s);
                }
                black_box(evaluator.net_lengths(&p))
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("delta_after_8_moves/kernel", |b| {
        b.iter_batched(
            || {
                // Untimed: sync a cache with a fresh clone of the placement.
                let p = placement.clone();
                let mut scorer = TrialScorer::for_evaluator(&evaluator);
                let mut cache = NetLengthCache::new();
                cache.refresh(&evaluator, &mut scorer, &p);
                (p, cache, scorer)
            },
            |(mut p, mut cache, mut scorer)| {
                for &(c, s) in &moves {
                    p.move_cell(c, s);
                }
                cache.refresh(&evaluator, &mut scorer, &p);
                black_box(cache.lengths().len())
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_estimators,
    bench_full_evaluation,
    bench_goodness,
    bench_naive_vs_kernel
);
criterion_main!(benches);
