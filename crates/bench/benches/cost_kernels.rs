//! Criterion microbenchmarks of the cost-model kernels: the per-net
//! wirelength estimators, full-placement evaluation and per-cell goodness.
//! These are the kernels whose relative costs drive the Section 4 profile.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use vlsi_netlist::bench_suite::{paper_circuit, PaperCircuit};
use vlsi_place::cost::{CostEvaluator, Objectives};
use vlsi_place::goodness::GoodnessEvaluator;
use vlsi_place::layout::Placement;
use vlsi_place::wirelength::{hpwl, single_trunk_steiner};

fn bench_estimators(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let pins: Vec<(f64, f64)> = (0..8)
        .map(|_| {
            (
                rand::Rng::gen_range(&mut rng, 0.0..500.0),
                rand::Rng::gen_range(&mut rng, 0.0..120.0),
            )
        })
        .collect();
    let mut group = c.benchmark_group("wirelength_estimators");
    group.measurement_time(Duration::from_secs(2)).sample_size(50);
    group.bench_function("single_trunk_steiner_8pin", |b| {
        b.iter(|| black_box(single_trunk_steiner(black_box(&pins))))
    });
    group.bench_function("hpwl_8pin", |b| {
        b.iter(|| black_box(hpwl(black_box(&pins))))
    });
    group.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let netlist = Arc::new(paper_circuit(PaperCircuit::S1196));
    let mut group = c.benchmark_group("full_evaluation_s1196");
    group.measurement_time(Duration::from_secs(3)).sample_size(30);
    for objectives in [
        Objectives::WirelengthPower,
        Objectives::WirelengthPowerDelay,
    ] {
        let evaluator = CostEvaluator::new(Arc::clone(&netlist), objectives);
        let placement = Placement::round_robin(&netlist, PaperCircuit::S1196.num_rows());
        group.bench_function(objectives.label(), |b| {
            b.iter(|| black_box(evaluator.evaluate(black_box(&placement))))
        });
    }
    group.finish();
}

fn bench_goodness(c: &mut Criterion) {
    let netlist = Arc::new(paper_circuit(PaperCircuit::S1196));
    let evaluator = CostEvaluator::new(Arc::clone(&netlist), Objectives::WirelengthPowerDelay);
    let goodness = GoodnessEvaluator::new(evaluator.clone());
    let placement = Placement::round_robin(&netlist, PaperCircuit::S1196.num_rows());
    let mut group = c.benchmark_group("goodness_s1196");
    group.measurement_time(Duration::from_secs(3)).sample_size(30);
    group.bench_function("all_cells", |b| {
        b.iter_batched(
            || evaluator.net_lengths(&placement),
            |lengths| black_box(goodness.all_goodness_from_lengths(&lengths)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_full_evaluation, bench_goodness);
criterion_main!(benches);
