//! Criterion benchmarks of the three SimE operators on a paper-sized circuit
//! (experiment E0 in wall-clock form): evaluation, selection and allocation of
//! one iteration. Allocation is expected to dominate by one to two orders of
//! magnitude, mirroring the Section 4 gprof profile.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sime_core::allocation::{allocate_all, AllocScratch, AllocationConfig};
use sime_core::engine::{SimEConfig, SimEEngine};
use sime_core::profile::ProfileReport;
use sime_core::selection::{select, SelectionScheme};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use vlsi_netlist::bench_suite::{paper_circuit, PaperCircuit};
use vlsi_place::cost::Objectives;

fn operators(c: &mut Criterion) {
    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 1);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let placement = engine.initial_placement(&mut rng);
    let mut profile = ProfileReport::new();
    let (net_lengths, goodness) = engine.evaluate(&placement, &mut profile);

    let mut group = c.benchmark_group("sime_operators_s1196");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);

    group.bench_function("evaluation", |b| {
        b.iter(|| {
            let mut p = ProfileReport::new();
            black_box(engine.evaluate(black_box(&placement), &mut p))
        })
    });

    group.bench_function("selection", |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(7),
            |mut r| black_box(select(&goodness, SelectionScheme::Biasless, &mut r, &[])),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("allocation", |b| {
        b.iter_batched(
            || {
                let mut r = ChaCha8Rng::seed_from_u64(7);
                let selected = select(&goodness, SelectionScheme::Biasless, &mut r, &[]);
                (
                    placement.clone(),
                    selected,
                    r,
                    AllocScratch::for_evaluator(engine.evaluator()),
                )
            },
            |(mut p, mut selected, mut r, mut scratch)| {
                black_box(allocate_all(
                    engine.evaluator(),
                    &mut scratch,
                    &mut p,
                    &mut selected,
                    &goodness,
                    &AllocationConfig::default(),
                    &[],
                    &mut r,
                ))
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("full_iteration", |b| {
        b.iter_batched(
            || {
                (
                    placement.clone(),
                    ChaCha8Rng::seed_from_u64(9),
                    engine.new_scratch(),
                )
            },
            |(mut p, mut r, mut scratch)| {
                let mut prof = ProfileReport::new();
                black_box(engine.iterate(&mut p, &mut scratch, &mut r, &mut prof, &[], &[]))
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
    let _ = net_lengths;
}

criterion_group!(benches, operators);
criterion_main!(benches);
