//! Criterion benchmarks of the three parallel strategies (wall-clock cost of
//! a short run of each, plus the serial engine for reference). These measure
//! the *host* execution cost of the strategy simulations — the reproduced
//! cluster runtimes come from the virtual-time model and are reported by the
//! table binaries instead.

use cluster_sim::timeline::ClusterConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use sime_core::engine::{SimEConfig, SimEEngine};
use sime_parallel::type1::{run_type1, Type1Config};
use sime_parallel::type2::{run_type2, RowPattern, Type2Config};
use sime_parallel::type3::{run_type3, Type3Config};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
use vlsi_place::cost::Objectives;

const ITERATIONS: usize = 10;

fn strategies(c: &mut Criterion) {
    let netlist = Arc::new(
        CircuitGenerator::new(GeneratorConfig::sized("bench_parallel", 200, 21)).generate(),
    );
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, 10, ITERATIONS);
    let engine = SimEEngine::new(netlist, config);

    let mut group = c.benchmark_group("parallel_strategies_200cells_10iter");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);

    group.bench_function("serial", |b| b.iter(|| black_box(engine.run())));

    group.bench_function("type1_p4", |b| {
        b.iter(|| {
            black_box(run_type1(
                &engine,
                ClusterConfig::paper_cluster(4),
                Type1Config {
                    ranks: 4,
                    iterations: ITERATIONS,
                },
            ))
        })
    });

    group.bench_function("type2_random_p4", |b| {
        b.iter(|| {
            black_box(run_type2(
                &engine,
                ClusterConfig::paper_cluster(4),
                Type2Config {
                    ranks: 4,
                    iterations: ITERATIONS,
                    pattern: RowPattern::Random,
                },
            ))
        })
    });

    group.bench_function("type3_p4_retry5", |b| {
        b.iter(|| {
            black_box(run_type3(
                &engine,
                ClusterConfig::paper_cluster(4),
                Type3Config {
                    ranks: 4,
                    iterations: ITERATIONS,
                    retry_threshold: 5,
                },
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, strategies);
criterion_main!(benches);
