//! Minimal JSON reader for the perf-guardrail tooling.
//!
//! The workspace's vendored `serde` is a no-op shim (the container has no
//! crates.io access), and the bench reports are hand-rolled JSON writers, so
//! this module provides the matching reader: a small recursive-descent parser
//! into a [`Json`] value tree plus dotted-path accessors
//! ([`Json::get`], [`Json::number`]). It covers the full JSON grammar the
//! reports use — objects, arrays, strings with the common escapes, numbers,
//! booleans, null — which is all `perf_guard` needs to compare a fresh
//! `BENCH_PR2.json` against the checked-in `BENCH_BASELINE.json`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the bench
    /// reports emit).
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep no duplicate entries (last wins, as in
    /// `JSON.parse`).
    Object(BTreeMap<String, Json>),
}

/// A parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl fmt::Display for Json {
    /// Renders the value back to JSON text. `parse(render(v))` reproduces `v`
    /// exactly: strings re-escape, numbers use Rust's shortest round-tripping
    /// `f64` format, object keys stay sorted (the `BTreeMap` order).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => write!(f, "{n}"),
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{0008}' => f.write_str("\\b")?,
            '\u{000C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON document"));
        }
        Ok(value)
    }

    /// Parses a JSON document from raw bytes, rejecting non-UTF-8 input with
    /// the offset of the first invalid byte. Bench artifacts travel through
    /// CI upload/download; this is the entry point for files read as bytes.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, JsonError> {
        let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
            offset: e.valid_up_to(),
            message: "invalid UTF-8 in JSON document".to_string(),
        })?;
        Json::parse(text)
    }

    /// Walks a dotted path of object keys (`"head_to_head.goodness_pass.ns"`).
    /// Array indexing uses numeric segments (`"runs.0.wall_ns"`). Returns
    /// `None` when any segment is missing or of the wrong shape.
    pub fn get(&self, path: &str) -> Option<&Json> {
        let mut node = self;
        for segment in path.split('.') {
            node = match node {
                Json::Object(map) => map.get(segment)?,
                Json::Array(items) => items.get(segment.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(node)
    }

    /// The number at a dotted path, if present.
    pub fn number(&self, path: &str) -> Option<f64> {
        match self.get(path)? {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string at a dotted path, if present.
    pub fn string(&self, path: &str) -> Option<&str> {
        match self.get(path)? {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{literal}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by any report
                            // this reader targets; map lone surrogates to the
                            // replacement character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_report_shapes() {
        let doc = r#"{
            "schema_version": 1,
            "report": "BENCH_PR2",
            "head_to_head": {
                "trial_scoring_48slots": {"reps": 200, "naive_ns": 123456, "speedup": 6.78},
                "full_net_lengths": {"speedup": 2.5}
            },
            "runs": [{"wall_ns": 100}, {"wall_ns": 50, "null_field": null, "flag": true}]
        }"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.number("schema_version"), Some(1.0));
        assert_eq!(json.string("report"), Some("BENCH_PR2"));
        assert_eq!(
            json.number("head_to_head.trial_scoring_48slots.speedup"),
            Some(6.78)
        );
        assert_eq!(json.number("runs.1.wall_ns"), Some(50.0));
        assert_eq!(json.get("runs.1.null_field"), Some(&Json::Null));
        assert_eq!(json.get("runs.1.flag"), Some(&Json::Bool(true)));
        assert_eq!(json.number("head_to_head.missing"), None);
        assert_eq!(json.number("report"), None, "strings are not numbers");
    }

    #[test]
    fn parses_numbers_in_every_report_format() {
        for (text, value) in [
            ("0", 0.0),
            ("-3", -3.0),
            ("6.25", 6.25),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
        ] {
            assert_eq!(Json::parse(text).unwrap(), Json::Number(value), "{text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let json = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(json, Json::String("a\"b\\c\ndA".to_string()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn render_parse_round_trips() {
        // parse(render(parse(x))) == parse(x) for a document exercising every
        // value kind, nested containers, escapes and number formats.
        let doc = r#"{
            "empty_obj": {}, "empty_arr": [],
            "nested": {"deep": [{"k": [1, 2.5, -3e2]}, null, true, false]},
            "strings": ["plain", "esc \" \\ \n \r \t \b \f /", "unicode µ≥"],
            "numbers": [0, -0.125, 1e3, 6.78]
        }"#;
        let first = Json::parse(doc).unwrap();
        let rendered = first.to_string();
        let second = Json::parse(&rendered).unwrap();
        assert_eq!(first, second, "rendered form was: {rendered}");
        // Rendering is a fixed point after one round.
        assert_eq!(rendered, second.to_string());
    }

    #[test]
    fn truncated_object_reports_the_cut() {
        for bad in [
            r#"{"a": 1, "#,
            r#"{"a": {"b": 2}"#,
            r#"{"a": [1, 2"#,
            r#"{"a""#,
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(
                err.offset <= bad.len(),
                "offset {} beyond input for `{bad}`",
                err.offset
            );
        }
    }

    #[test]
    fn bad_escapes_are_rejected() {
        for bad in [r#""\x""#, r#""\u12""#, r#""\uZZZZ""#, r#""tail\"#] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let json = Json::parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap();
        assert_eq!(json.number("a"), Some(3.0), "JSON.parse semantics");
        assert_eq!(json.number("b"), Some(2.0));
        match json {
            Json::Object(ref map) => assert_eq!(map.len(), 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_bytes_rejects_non_utf8() {
        let mut bytes = br#"{"a": ""#.to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        bytes.extend_from_slice(br#""}"#);
        let err = Json::parse_bytes(&bytes).unwrap_err();
        assert!(
            err.message.contains("UTF-8"),
            "unexpected message: {}",
            err.message
        );
        assert_eq!(err.offset, 7, "offset of the first invalid byte");

        // Valid UTF-8 bytes parse exactly like the &str entry point.
        let ok = Json::parse_bytes("{\"µ\": 1}".as_bytes()).unwrap();
        assert_eq!(ok.number("µ"), Some(1.0));
    }

    #[test]
    fn the_checked_in_reports_parse() {
        // Guard the guard: the real artifacts this parser exists for must
        // stay within its grammar.
        for path in ["../../BENCH_PR2.json", "../../BENCH_PR3.json"] {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let json = Json::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
            assert_eq!(json.number("schema_version"), Some(1.0), "{path}");
        }
    }
}
