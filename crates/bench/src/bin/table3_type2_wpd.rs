//! Experiment E3 — reproduces Table 3: Type II (domain decomposition) for the
//! wirelength + power + delay objectives, fixed vs random row patterns.
//!
//! The serial baseline runs the paper's 5000 iterations; the parallel runs
//! add 1000 iterations per additional processor. Entries that fail to reach
//! the serial quality show the achieved percentage in brackets.
//!
//! Usage: `cargo run --release -p bench --bin table3_type2_wpd [--full]`

use bench::{
    fmt_parallel_entry, fmt_seconds, iteration_scale, paper_engine, print_header, scaled_iterations,
};
use cluster_sim::timeline::ClusterConfig;
use sime_parallel::report::run_serial_baseline;
use sime_parallel::type2::{run_type2, RowPattern, Type2Config};
use vlsi_netlist::bench_suite::PaperCircuit;
use vlsi_place::cost::Objectives;

fn main() {
    let scale = iteration_scale();
    print_header(
        "Table 3 — Type II parallel SimE, wirelength + power + delay, fixed vs random row pattern",
        scale,
    );

    println!(
        "\n{:<8} {:>7} {:>8} | {:>26} | {:>26}",
        "Ckt", "mu(s)", "Seq.", "fixed p=2..5", "random p=2..5"
    );
    for circuit in PaperCircuit::ALL {
        let serial_iterations = scaled_iterations(5000, scale);
        let engine = paper_engine(circuit, Objectives::WirelengthPowerDelay, serial_iterations);
        let compute = ClusterConfig::paper_cluster(2).compute;
        let baseline = run_serial_baseline(&engine, &compute);
        let serial_mu = baseline.best_mu();

        let mut row = format!(
            "{:<8} {:>7.3} {:>8}",
            circuit.name(),
            serial_mu,
            fmt_seconds(baseline.modeled_seconds)
        );
        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            row.push_str(" |");
            for ranks in 2..=5usize {
                let iterations = scaled_iterations(5000 + 1000 * (ranks - 1), scale);
                let outcome = run_type2(
                    &engine,
                    ClusterConfig::paper_cluster(ranks),
                    Type2Config {
                        ranks,
                        iterations,
                        pattern,
                    },
                );
                row.push_str(&format!(
                    " {:>8}",
                    fmt_parallel_entry(
                        outcome.modeled_seconds,
                        outcome.quality_fraction_of(serial_mu)
                    )
                ));
            }
        }
        println!("{row}");
    }
    println!("\nexpected shape: as Table 2, with larger absolute runtimes (the delay objective");
    println!("adds path evaluation work) and somewhat lower quality fractions — the delay");
    println!("objective is the hardest to recover under restricted cell mobility.");
    println!(
        "paper reference (s3330): seq 13007 s; fixed 4676(90)...1336(80); random 3171...1031(86)"
    );
}
